"""Tests for hdf5lite hyperslab selection algebra."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.hdf5lite.hyperslab import (
    Hyperslab,
    contiguous_runs,
    intersect,
    normalize_selection,
    selection_shape,
)


def runs_to_array(shape, hs, source):
    """Materialise a hyperslab via contiguous_runs against a flat array."""
    flat = source.reshape(-1)
    parts = [flat[off : off + n] for off, n in contiguous_runs(hs, shape)]
    return np.concatenate(parts).reshape(hs.count) if parts else np.empty(hs.count)


class TestHyperslab:
    def test_full(self):
        hs = Hyperslab.full((3, 4))
        assert hs.start == (0, 0)
        assert hs.count == (3, 4)
        assert hs.size == 12

    def test_end(self):
        hs = Hyperslab((1, 2), (3, 2), (2, 3))
        assert hs.end() == (1 + 2 * 2 + 1, 2 + 1 * 3 + 1)

    def test_within(self):
        assert Hyperslab((0,), (5,), (1,)).within((5,))
        assert not Hyperslab((1,), (5,), (1,)).within((5,))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SelectionError):
            Hyperslab((0,), (1, 2), (1,))

    def test_negative_rejected(self):
        with pytest.raises(SelectionError):
            Hyperslab((-1,), (1,), (1,))
        with pytest.raises(SelectionError):
            Hyperslab((0,), (1,), (0,))

    def test_indices(self):
        hs = Hyperslab((2,), (3,), (4,))
        assert list(hs.indices(0)) == [2, 6, 10]


class TestNormalizeSelection:
    def test_single_int(self):
        hs, squeeze = normalize_selection(3, (10,))
        assert hs == Hyperslab((3,), (1,), (1,))
        assert squeeze == (0,)

    def test_negative_int(self):
        hs, _ = normalize_selection(-1, (10,))
        assert hs.start == (9,)

    def test_out_of_bounds_int(self):
        with pytest.raises(SelectionError):
            normalize_selection(10, (10,))

    def test_full_slice(self):
        hs, squeeze = normalize_selection(slice(None), (7,))
        assert hs == Hyperslab.full((7,))
        assert squeeze == ()

    def test_strided_slice(self):
        hs, _ = normalize_selection(slice(1, 9, 3), (10,))
        assert hs == Hyperslab((1,), (3,), (3,))

    def test_ellipsis(self):
        hs, squeeze = normalize_selection((Ellipsis, 2), (4, 5, 6))
        assert hs.start == (0, 0, 2)
        assert hs.count == (4, 5, 1)
        assert squeeze == (2,)

    def test_double_ellipsis_rejected(self):
        with pytest.raises(SelectionError):
            normalize_selection((Ellipsis, Ellipsis), (4, 5))

    def test_too_many_indices(self):
        with pytest.raises(SelectionError):
            normalize_selection((1, 2, 3), (4, 5))

    def test_missing_dims_filled(self):
        hs, _ = normalize_selection(2, (4, 5))
        assert hs.count == (1, 5)

    def test_bool_rejected(self):
        with pytest.raises(SelectionError):
            normalize_selection(True, (4,))

    def test_negative_step_rejected(self):
        with pytest.raises(SelectionError):
            normalize_selection(slice(None, None, -1), (4,))

    def test_selection_shape_squeezes(self):
        hs, squeeze = normalize_selection((2, slice(0, 4)), (5, 6))
        assert selection_shape(hs, squeeze) == (4,)

    @pytest.mark.parametrize(
        "sel",
        [
            (slice(1, 4), slice(2, 8, 2)),
            (0, slice(None)),
            slice(None),
            (Ellipsis,),
            (slice(3, 3),),
        ],
    )
    def test_matches_numpy(self, sel):
        arr = np.arange(6 * 9).reshape(6, 9)
        hs, squeeze = normalize_selection(sel, arr.shape)
        got = runs_to_array(arr.shape, hs, arr).reshape(selection_shape(hs, squeeze))
        expected = arr[sel]
        np.testing.assert_array_equal(got, expected)


class TestContiguousRuns:
    def test_full_array_single_run(self):
        hs = Hyperslab.full((8, 8))
        runs = list(contiguous_runs(hs, (8, 8)))
        assert runs == [(0, 64)]

    def test_row_subset_coalesces_adjacent_rows(self):
        # Selecting full-width rows 2..4 of an 8-col array is one run.
        hs = Hyperslab((2, 0), (3, 8), (1, 1))
        runs = list(contiguous_runs(hs, (8, 8)))
        assert runs == [(16, 24)]

    def test_column_subset_one_run_per_row(self):
        hs = Hyperslab((0, 2), (4, 3), (1, 1))
        runs = list(contiguous_runs(hs, (4, 8)))
        assert runs == [(2, 3), (10, 3), (18, 3), (26, 3)]

    def test_strided_inner_dim_per_element(self):
        hs = Hyperslab((0,), (3,), (4,))
        runs = list(contiguous_runs(hs, (12,)))
        assert runs == [(0, 1), (4, 1), (8, 1)]

    def test_empty_selection(self):
        hs = Hyperslab((0,), (0,), (1,))
        assert list(contiguous_runs(hs, (5,))) == []

    def test_out_of_bounds_rejected(self):
        with pytest.raises(SelectionError):
            list(contiguous_runs(Hyperslab((0,), (6,), (1,)), (5,)))

    def test_3d_selection(self):
        arr = np.arange(3 * 4 * 5).reshape(3, 4, 5)
        hs = Hyperslab((1, 1, 1), (2, 2, 3), (1, 1, 1))
        got = runs_to_array(arr.shape, hs, arr)
        np.testing.assert_array_equal(got, arr[1:3, 1:3, 1:4])

    def test_runs_cover_selection_size(self):
        hs = Hyperslab((1, 2), (5, 3), (2, 2))
        total = sum(n for _, n in contiguous_runs(hs, (12, 10)))
        assert total == hs.size


class TestIntersect:
    def test_overlapping(self):
        a = Hyperslab((0, 0), (4, 4), (1, 1))
        b = Hyperslab((2, 2), (4, 4), (1, 1))
        out = intersect(a, b)
        assert out == Hyperslab((2, 2), (2, 2), (1, 1))

    def test_disjoint(self):
        a = Hyperslab((0,), (2,), (1,))
        b = Hyperslab((5,), (2,), (1,))
        assert intersect(a, b) is None

    def test_touching_is_disjoint(self):
        a = Hyperslab((0,), (2,), (1,))
        b = Hyperslab((2,), (2,), (1,))
        assert intersect(a, b) is None

    def test_contained(self):
        a = Hyperslab((0,), (10,), (1,))
        b = Hyperslab((3,), (2,), (1,))
        assert intersect(a, b) == b

    def test_strided_rejected(self):
        a = Hyperslab((0,), (5,), (2,))
        with pytest.raises(SelectionError):
            intersect(a, a)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SelectionError):
            intersect(Hyperslab.full((3,)), Hyperslab.full((3, 3)))
