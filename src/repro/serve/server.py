"""The read-serving layer: sessions answering window/preview/event queries.

A :class:`DataServer` owns one VCA archive and the shared machinery every
request rides on — a :class:`~repro.hdf5lite.cache.FilePool` (handles stay
open) fronted by a :class:`~repro.hdf5lite.cache.BlockCache` (hot pages
stay resident), a degraded-read source (lost minutes become NaN spans plus
:class:`~repro.storage.gaps.GapMap` entries, never errors), the pyramid
levels, and the :class:`~repro.serve.admission.AdmissionController`.
Tenants get :class:`ServeSession` handles; every call admits *before* any
backend byte moves and records its end-to-end latency into the tenant's
reservoir.

Request lowering is the PR 7 planner end to end: a ``read_window`` becomes
``Query.scan → select_channels → decimate`` over a
:class:`~repro.storage.chunks.WindowSource`, so channel selection and the
sample stride are pushed into strided backend reads — the session never
materialises more than the answer.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import Query
from repro.core.operators import DecimateOp
from repro.core.optimizer import execute, optimize
from repro.errors import ConfigError, ServeError
from repro.hdf5lite.cache import BlockCache, CacheConfig, FilePool
from repro.hdf5lite.pyramid import PyramidLevel, pyramid_levels
from repro.rt.events import EventSink, SeamEvent
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.pyramid import level_slice, select_level
from repro.storage.chunks import WindowSource, open_stream
from repro.storage.gaps import GapSpan
from repro.utils.iostats import IOStats

__all__ = [
    "ServeConfig",
    "WindowResult",
    "Preview",
    "DataServer",
    "ServeSession",
]


@dataclass(frozen=True)
class ServeConfig:
    """Server-wide knobs.

    ``on_error="mask"`` is the serving default: a viewer scrubbing
    through a damaged archive should see NaN spans (rendered as gaps),
    not 500s.  ``isolation_p95_bound`` is the published multi-tenant
    promise — with one tenant saturating its quota, another tenant's p95
    latency stays within this multiple of its solo p95 (asserted by
    ``benchmarks/bench_serve.py``).
    """

    cache_bytes: int = 64 << 20
    pool_handles: int = 64
    on_error: str = "mask"
    fill_value: float = float("nan")
    chunk_samples: int | None = None
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    admit_timeout: float | None = None
    isolation_p95_bound: float = 3.0


@dataclass(frozen=True)
class WindowResult:
    """One answered window read.

    ``data[r, j]`` is raw channel ``channel_lo + r`` at raw sample
    ``t0 + j * step`` — bit-exact to slicing the raw record
    (``raw[channel_lo:channel_hi, t0:t1][:, ::step]``).  ``gaps`` lists
    the degraded spans overlapping ``[t0, t1)`` in raw coordinates.
    """

    data: np.ndarray
    t0: int
    t1: int
    step: int
    channel_lo: int
    channel_hi: int
    gaps: list[GapSpan]
    waited_s: float


@dataclass(frozen=True)
class Preview:
    """One answered preview (decimated rendering of a window).

    ``data[r, j]`` is channel ``channel_lo + r`` at raw sample
    ``(j0 + j) * factor`` where ``j0 = ceil(t0 / factor)``; ``mask`` is
    True where the pixel is non-finite — degraded (NaN-masked) raw spans
    propagate through the decimation FIR into masked pixels.  ``level``
    names the pyramid level that served it (``None`` = computed from
    raw).
    """

    data: np.ndarray
    mask: np.ndarray
    t0: int
    t1: int
    factor: int
    level: int | None
    channel_lo: int
    channel_hi: int
    waited_s: float


class DataServer:
    """Shared serving state for one archive; hand out sessions per tenant.

    Safe for concurrent sessions: backend reads serialize on the
    per-file I/O lock under the pool, the block cache and admission
    controller carry their own locks, and the per-request planner state
    is session-local.
    """

    def __init__(
        self,
        archive: str | os.PathLike,
        config: ServeConfig | None = None,
        events_path: str | os.PathLike | None = None,
        iostats: IOStats | None = None,
    ):
        self.archive = os.fspath(archive)
        self.config = config if config is not None else ServeConfig()
        self.iostats = iostats if iostats is not None else IOStats()
        self.pool = FilePool(
            max_handles=self.config.pool_handles,
            iostats=self.iostats,
            cache=BlockCache(
                CacheConfig(byte_budget=self.config.cache_bytes), self.iostats
            ),
        )
        self.source = open_stream(
            self.archive,
            iostats=self.iostats,
            pool=self.pool,
            on_error=self.config.on_error,
            fill_value=self.config.fill_value,
        )
        self.levels: list[PyramidLevel] = pyramid_levels(
            self.pool.acquire(self.archive)
        )
        self.admission = AdmissionController(
            default=self.config.default_quota, quotas=self.config.quotas
        )
        self._events_path = os.fspath(events_path) if events_path else None
        self._events_lock = threading.Lock()
        # (st_mtime, st_size) of the last load — guarded-by: _events_lock
        self._events_sig: tuple[float, int] | None = None
        self._events: list[SeamEvent] = []  # guarded-by: _events_lock
        self._closed = False

    # -- geometry -----------------------------------------------------------
    @property
    def n_channels(self) -> int:
        return self.source.n_channels

    @property
    def n_samples(self) -> int:
        return self.source.n_samples

    @property
    def fs(self) -> float:
        return self.source.fs

    # -- lifecycle ----------------------------------------------------------
    def session(self, tenant: str) -> "ServeSession":
        if self._closed:
            raise ServeError("server is closed")
        return ServeSession(self, str(tenant))

    def close(self) -> None:
        self._closed = True
        self.source.close()
        self.pool.close_all()

    def __enter__(self) -> "DataServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------
    def pyramid_data(self, level: PyramidLevel):
        """The stored dataset behind ``level`` (through the pool/cache)."""
        return self.pool.acquire(self.archive)[level.path]

    def load_events(self) -> list[SeamEvent]:
        """The event catalog, re-read only when the sink file changed.

        Freshness is keyed on ``(mtime, size)``, not mtime alone: mtimes
        have finite granularity, so two appends inside one tick leave the
        mtime unchanged — the same staleness race the storage catalog's
        ``>=`` fix closed.  An append always grows the JSONL, so the size
        breaks the tie.
        """
        if self._events_path is None:
            return []
        try:
            stat = os.stat(self._events_path)
        except OSError:
            return []
        signature = (stat.st_mtime, stat.st_size)
        with self._events_lock:
            if self._events_sig != signature:
                self._events = EventSink(self._events_path).load()
                self._events_sig = signature
            return list(self._events)

    def window_gaps(self, t0: int, t1: int) -> list[GapSpan]:
        """Degraded spans recorded so far that overlap ``[t0, t1)``,
        clipped to the window (raw coordinates)."""
        gaps = getattr(self.source, "gaps", None)
        if not gaps:
            return []
        return [
            GapSpan(s.source, max(s.t0, t0), min(s.t1, t1), s.reason)
            for s in gaps
            if s.overlaps(t0, t1)
        ]


class ServeSession:
    """One tenant's request interface (cheap; create per viewer)."""

    def __init__(self, server: DataServer, tenant: str):
        self.server = server
        self.tenant = tenant

    # -- helpers ------------------------------------------------------------
    def _channels(self, channels: tuple[int, int] | None) -> tuple[int, int]:
        if channels is None:
            return 0, self.server.n_channels
        lo, hi = int(channels[0]), int(channels[1])
        if not (0 <= lo < hi <= self.server.n_channels):
            raise ServeError(
                f"channel range [{lo}, {hi}) outside "
                f"{self.server.n_channels} channels"
            )
        return lo, hi

    def _window(self, t0: int, t1: int) -> tuple[int, int]:
        t0, t1 = int(t0), int(t1)
        if not (0 <= t0 < t1 <= self.server.n_samples):
            raise ServeError(
                f"window [{t0}, {t1}) outside {self.server.n_samples} samples"
            )
        return t0, t1

    def _admit(self, nbytes: int, wait: bool):
        return self.server.admission.admit(
            self.tenant,
            nbytes,
            wait=wait,
            timeout=self.server.config.admit_timeout,
        )

    # -- requests -----------------------------------------------------------
    def read_window(
        self,
        t0: int,
        t1: int,
        channels: tuple[int, int] | None = None,
        step: int = 1,
        wait: bool = True,
    ) -> WindowResult:
        """Rows ``[lo, hi)``, every ``step``-th raw sample of ``[t0, t1)``.

        Bit-exact to ``raw[lo:hi, t0:t1][:, ::step]`` — the request
        lowers through the planner onto a
        :class:`~repro.storage.chunks.WindowSource`, so the stride
        lattice anchors at the window start and only the lattice's bytes
        are read.
        """
        t0, t1 = self._window(t0, t1)
        lo, hi = self._channels(channels)
        step = int(step)
        if step < 1:
            raise ServeError("step must be >= 1")
        out_samples = -(-(t1 - t0) // step)
        started = time.perf_counter()
        admission = self._admit((hi - lo) * out_samples * 8, wait)
        # Byte-accurate accounting: the admitted charge is an output-size
        # estimate; measure what the backend actually read and settle the
        # difference against the tenant's byte bucket afterwards.  (The
        # IOStats delta attributes concurrent tenants' reads to whoever
        # reconciles first — best-effort under concurrency, exact solo.)
        read_before = self.server.iostats.snapshot()["bytes_read"]
        window = WindowSource(self.server.source, t0, t1)
        query = Query.scan(None)
        if (lo, hi) != (0, self.server.n_channels):
            query = query.select_channels(lo, hi)
        if step > 1:
            query = query.decimate(step)
        plan = optimize(
            query,
            chunk_samples=self.server.config.chunk_samples,
            verify=False,
        )
        (result,) = execute(plan, source=window, iostats=self.server.iostats)
        self.server.admission.reconcile(
            admission,
            self.server.iostats.snapshot()["bytes_read"] - read_before,
        )
        self.server.admission.record_latency(
            self.tenant, time.perf_counter() - started
        )
        return WindowResult(
            data=result.output,
            t0=t0,
            t1=t1,
            step=step,
            channel_lo=lo,
            channel_hi=hi,
            gaps=self.server.window_gaps(t0, t1),
            waited_s=admission.waited_s,
        )

    def preview(
        self,
        t0: int,
        t1: int,
        width: int,
        channels: tuple[int, int] | None = None,
        use_pyramid: bool = True,
        wait: bool = True,
    ) -> Preview:
        """An anti-aliased rendering of ``[t0, t1)`` at about ``width``
        pixels per channel.

        Picks the coarsest pyramid level still finer than the pixel
        pitch and slices it — O(output pixels) backend bytes — falling
        back to streaming :class:`~repro.core.operators.DecimateOp` over
        the raw window when no stored level fits (or
        ``use_pyramid=False``, the benchmark's raw-cost reference).
        Both paths emit pixels on the absolute lattice ``j * factor``
        (the raw window is snapped to the next lattice point), so a
        whole-record preview at a stored level's factor is *identical*
        pixel-for-pixel between them; partial windows may differ in the
        last FIR taps near the window edges, where the streamed path has
        less context than the whole-record pyramid build had.
        """
        t0, t1 = self._window(t0, t1)
        lo, hi = self._channels(channels)
        if int(width) < 1:
            raise ServeError("width must be >= 1")
        span = t1 - t0
        level = (
            select_level(self.server.levels, span, int(width))
            if use_pyramid
            else None
        )
        started = time.perf_counter()
        if level is not None:
            j0, j1 = level_slice(level.factor, t0, t1)
            admission = self._admit((hi - lo) * (j1 - j0) * 8, wait)
            read_before = self.server.iostats.snapshot()["bytes_read"]
            block = np.asarray(
                self.server.pyramid_data(level)[lo:hi, j0:j1], dtype=np.float64
            )
            factor, level_no = level.factor, level.level
        else:
            factor = max(1, span // int(width))
            j0, j1 = level_slice(factor, t0, t1)
            admission = self._admit((hi - lo) * (j1 - j0) * 8, wait)
            read_before = self.server.iostats.snapshot()["bytes_read"]
            window = WindowSource(self.server.source, j0 * factor, t1)
            query = Query.scan(None)
            if (lo, hi) != (0, self.server.n_channels):
                query = query.select_channels(lo, hi)
            if factor > 1:
                query = query.then(DecimateOp(factor))
            plan = optimize(
                query,
                chunk_samples=self.server.config.chunk_samples,
                verify=False,
            )
            (result,) = execute(
                plan, source=window, iostats=self.server.iostats
            )
            block, level_no = result.output, None
        self.server.admission.reconcile(
            admission,
            self.server.iostats.snapshot()["bytes_read"] - read_before,
        )
        self.server.admission.record_latency(
            self.tenant, time.perf_counter() - started
        )
        return Preview(
            data=block,
            mask=~np.isfinite(block),
            t0=t0,
            t1=t1,
            factor=factor,
            level=level_no,
            channel_lo=lo,
            channel_hi=hi,
            waited_s=admission.waited_s,
        )

    def events(
        self, t0: int, t1: int, wait: bool = True
    ) -> list[SeamEvent]:
        """Catalog events overlapping raw window ``[t0, t1)`` (event
        times are seconds; the archive's rate converts)."""
        t0, t1 = self._window(t0, t1)
        self._admit(0, wait)
        fs = self.server.fs
        if not fs:
            raise ServeError("archive has no sampling rate; cannot map times")
        t0_s, t1_s = t0 / fs, t1 / fs
        return [
            ev
            for ev in self.server.load_events()
            if ev.event.t_start < t1_s and ev.event.t_end >= t0_s
        ]

    def metrics(self) -> dict:
        """This tenant's admission/latency counters and reservoirs."""
        return self.server.admission.metrics(self.tenant)
