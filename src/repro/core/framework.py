"""The DASSA facade — search, merge, and analyse in a few calls.

The paper lists "an API in Python ... to enable interactive DAS data
analysis" as future work; this class is that API::

    dassa = DASSA(workdir="scratch/")
    files = dassa.search("data/", start="170620100545", count=6)
    vca = dassa.merge(files)                       # VCA by default
    simi, centers = dassa.local_similarity(vca)    # Algorithm 2
    events = dassa.detect(simi, centers)
    corr = dassa.interferometry(vca)               # Algorithm 3
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.presets import laptop
from repro.core.detection import DetectedEvent, detect_events
from repro.core.interferometry import (
    InterferometryConfig,
    noise_correlation_functions,
    streamed_interferometry,
)
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    streamed_local_similarity,
)
from repro.core.graph import CoordFrame, Query
from repro.core.optimizer import PhysicalPlan
from repro.core.optimizer import execute as execute_plan
from repro.core.optimizer import explain as explain_plan
from repro.core.optimizer import optimize
from repro.core.pipeline import PipelineProfile, PipelineResult
from repro.core.stalta import streamed_sta_lta
from repro.errors import ConfigError, StorageError
from repro.faults.policy import FailurePolicy
from repro.storage.chunks import ChunkSource, as_source, auto_chunk_samples, open_stream
from repro.storage.gaps import GapMap
from repro.storage.rca import create_rca
from repro.storage.search import DASFileInfo, das_search
from repro.storage.vca import VCAHandle, create_vca, open_vca


@dataclass
class DASSAConfig:
    """Framework-level knobs.

    ``chunk_samples=None`` sizes streaming chunks automatically so a raw
    block stays under ``chunk_bytes`` (whole record if it already fits);
    analysis never materialises more than one such block plus the
    per-stage halos.

    ``on_error`` governs degraded source reads (forwarded to
    :func:`~repro.storage.vca.open_vca` when the facade opens a VCA path):
    ``"raise"`` propagates typed storage errors, ``"mask"``/``"skip"``
    fill unreadable spans with ``fill_value`` and report them.
    ``failure_policy`` governs per-chunk execution faults in the
    streaming core (retry / fail-fast vs collect-and-continue).
    """

    cluster: ClusterSpec = field(default_factory=laptop)
    threads: int = 4
    workdir: str | None = None
    chunk_samples: int | None = None
    chunk_bytes: int = 64 << 20
    on_error: str = "raise"
    fill_value: float = float("nan")
    failure_policy: FailurePolicy | None = None


class DASSA:
    """One entry point tying DASS (storage) and DASA (analysis) together.

    Every analysis call streams its source through the chunked execution
    core (:class:`~repro.core.pipeline.StreamPipeline`); the profile of
    the most recent run (per-stage seconds, bytes streamed, peak
    resident bytes) is kept in :attr:`last_profile`, and — when degraded
    reads or a ``continue`` failure policy are active — the spans lost to
    faults land in :attr:`last_gaps`.
    """

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        threads: int = 4,
        workdir: str | os.PathLike | None = None,
        chunk_samples: int | None = None,
        chunk_bytes: int = 64 << 20,
        on_error: str = "raise",
        fill_value: float = float("nan"),
        failure_policy: FailurePolicy | None = None,
    ):
        if threads < 1:
            raise ConfigError("threads must be >= 1")
        if chunk_samples is not None and chunk_samples < 1:
            raise ConfigError("chunk_samples must be >= 1")
        if chunk_bytes < 1:
            raise ConfigError("chunk_bytes must be >= 1")
        if on_error not in ("raise", "mask", "skip"):
            raise ConfigError(
                f"on_error must be 'raise', 'mask', or 'skip', got {on_error!r}"
            )
        self.config = DASSAConfig(
            cluster=cluster if cluster is not None else laptop(),
            threads=threads,
            workdir=os.fspath(workdir) if workdir is not None else None,
            chunk_samples=chunk_samples,
            chunk_bytes=chunk_bytes,
            on_error=on_error,
            fill_value=fill_value,
            failure_policy=failure_policy,
        )
        self.last_profile: PipelineProfile | None = None
        self.last_gaps: GapMap | None = None
        #: Coordinate frame of the most recent planned run: maps output
        #: rows/columns back to raw channels/samples when the optimizer
        #: pushed a channel selection or decimation into the source.
        self.last_frame: CoordFrame | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None

    # -- storage side --------------------------------------------------------------
    def search(
        self,
        directory: str | os.PathLike,
        start: str | None = None,
        count: int | None = None,
        pattern: str | None = None,
    ) -> list[DASFileInfo]:
        """``das_search``: type-1 (start/count) or type-2 (regex) query."""
        return das_search(directory, start=start, count=count, pattern=pattern)

    def _workdir(self) -> str:
        if self.config.workdir is not None:
            os.makedirs(self.config.workdir, exist_ok=True)
            return self.config.workdir
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="dassa-")
        return self._tmpdir.name

    def merge(
        self,
        files: list[DASFileInfo | str],
        out_path: str | None = None,
        real: bool = False,
        assume_uniform: bool = False,
    ) -> str:
        """Merge files into a VCA (default) or an RCA (``real=True``)."""
        if not files:
            raise StorageError("no files to merge")
        if out_path is None:
            kind = "rca" if real else "vca"
            out_path = os.path.join(self._workdir(), f"merged_{kind}.h5")
        if real:
            return create_rca(out_path, files)
        return create_vca(out_path, files, assume_uniform=assume_uniform)

    def search_and_merge(
        self,
        directory: str | os.PathLike,
        start: str | None = None,
        count: int | None = None,
        pattern: str | None = None,
        real: bool = False,
    ) -> str:
        """One-shot: query then merge the hits."""
        hits = self.search(directory, start=start, count=count, pattern=pattern)
        if not hits:
            raise StorageError("search matched no files")
        return self.merge(hits, real=real)

    @staticmethod
    def _load(source: str | np.ndarray | VCAHandle) -> tuple[np.ndarray, float]:
        """Materialise a source and find its sampling rate."""
        if isinstance(source, np.ndarray):
            return np.asarray(source, dtype=np.float64), 0.0
        if isinstance(source, VCAHandle):
            return np.asarray(source.dataset.read(), dtype=np.float64), (
                source.metadata.sampling_frequency
            )
        with open_vca(source) as vca:
            return (
                np.asarray(vca.dataset.read(), dtype=np.float64),
                vca.metadata.sampling_frequency,
            )

    def _open_source(
        self, source: str | np.ndarray | VCAHandle | ChunkSource
    ) -> tuple[ChunkSource, bool]:
        """Coerce to a chunk source; second element says we opened (and
        must close) a file handle.  Paths we open ourselves inherit the
        facade's degraded-read mode."""
        if isinstance(source, (str, os.PathLike)):
            return (
                open_stream(
                    source,
                    on_error=self.config.on_error,
                    fill_value=self.config.fill_value,
                ),
                True,
            )
        return as_source(source), False

    def _finish(self, result: PipelineResult, src: ChunkSource) -> None:
        """Record the run's profile and its fault report.

        ``last_gaps`` merges source-level gaps (input-sample spans a
        degraded VCA read masked) with chunk-level gaps (final *output*
        spans filled under a ``continue`` policy — the pipeline may
        decimate, so the two coordinate systems differ); ``None`` when
        the run was clean.
        """
        self.last_profile = result.profile
        gaps = GapMap()
        source_gaps = getattr(src, "gaps", None)
        if source_gaps:
            gaps.merge(source_gaps)
        if result.gaps:
            gaps.merge(result.gaps)
        self.last_gaps = gaps if gaps else None

    def _chunk_for(self, src: ChunkSource) -> int:
        if self.config.chunk_samples is not None:
            return self.config.chunk_samples
        return auto_chunk_samples(
            src.n_channels, src.n_samples, budget_bytes=self.config.chunk_bytes
        )

    # -- analysis side -------------------------------------------------------------
    def local_similarity(
        self,
        source: str | np.ndarray | VCAHandle,
        config: LocalSimilarityConfig | None = None,
        chunk_samples: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm 2 over a VCA path / handle / array, streamed in
        overlap-padded chunks.

        Returns ``(similarity_map, window_centers)``; the map covers
        channels K..C-K (array edges have no ±K neighbours).
        """
        config = config if config is not None else LocalSimilarityConfig()
        src, owns = self._open_source(source)
        try:
            result, centers = streamed_local_similarity(
                src,
                config,
                chunk_samples=(
                    chunk_samples if chunk_samples is not None else self._chunk_for(src)
                ),
                threads=self.config.threads,
                policy=self.config.failure_policy,
            )
        finally:
            if owns:
                src.close()
        self._finish(result, src)
        return result.output, centers

    def detect(
        self,
        similarity: np.ndarray,
        centers: np.ndarray,
        fs: float,
        **kwargs,
    ) -> list[DetectedEvent]:
        """Pick and classify events on a similarity map."""
        return detect_events(similarity, centers, fs, **kwargs)

    def interferometry(
        self,
        source: str | np.ndarray | VCAHandle,
        config: InterferometryConfig | None = None,
        chunk_samples: int | None = None,
    ) -> np.ndarray:
        """Algorithm 3: per-channel correlation against the master channel,
        streamed so the raw record is never resident at once."""
        src, owns = self._open_source(source)
        try:
            if config is None:
                config = InterferometryConfig(fs=src.fs if src.fs > 0 else 500.0)
            result = streamed_interferometry(
                src,
                config,
                chunk_samples=(
                    chunk_samples if chunk_samples is not None else self._chunk_for(src)
                ),
                threads=self.config.threads,
                policy=self.config.failure_policy,
            )
        finally:
            if owns:
                src.close()
        self._finish(result, src)
        return result.output

    def sta_lta(
        self,
        source: str | np.ndarray | VCAHandle,
        nsta: int,
        nlta: int,
        chunk_samples: int | None = None,
    ) -> np.ndarray:
        """Classic STA/LTA ratios per channel, streamed with an
        ``nlta - 1``-sample lookback halo."""
        src, owns = self._open_source(source)
        try:
            result = streamed_sta_lta(
                src,
                nsta,
                nlta,
                chunk_samples=(
                    chunk_samples if chunk_samples is not None else self._chunk_for(src)
                ),
                threads=self.config.threads,
                policy=self.config.failure_policy,
            )
        finally:
            if owns:
                src.close()
        self._finish(result, src)
        return result.output

    def stack(
        self,
        source: str | np.ndarray | VCAHandle,
        config: InterferometryConfig | None = None,
        window_seconds: float = 60.0,
        overlap: float = 0.0,
        max_lag_seconds: float | None = None,
        method: str = "linear",
        power: float = 2.0,
        chunk_samples: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Windowed NCF stacking (linear or phase-weighted), streamed:
        windows are correlated and folded into the running stack as the
        record flows past, so the §IV 3-D window cube never exists."""
        from repro.core.stacking import streamed_stack

        src, owns = self._open_source(source)
        try:
            if config is None:
                config = InterferometryConfig(fs=src.fs if src.fs > 0 else 500.0)
            result = streamed_stack(
                src,
                config,
                window_seconds,
                overlap=overlap,
                max_lag_seconds=max_lag_seconds,
                method=method,
                power=power,
                chunk_samples=(
                    chunk_samples if chunk_samples is not None else self._chunk_for(src)
                ),
                policy=self.config.failure_policy,
            )
        finally:
            if owns:
                src.close()
        self._finish(result, src)
        return result.output

    def noise_correlations(
        self,
        source: str | np.ndarray | VCAHandle,
        config: InterferometryConfig | None = None,
        max_lag_seconds: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Time-domain noise correlation functions (virtual shot gather)."""
        data, fs = self._load(source)
        if config is None:
            config = InterferometryConfig(fs=fs if fs > 0 else 500.0)
        return noise_correlation_functions(data, config, max_lag_seconds)

    # -- lazy planned analysis -----------------------------------------------------
    def plan(
        self,
        source: str | np.ndarray | VCAHandle | ChunkSource,
        channels: tuple[int, int] | None = None,
        decimate: int = 1,
        tune: bool = False,
    ) -> "AnalysisPlan":
        """Start a lazy analysis plan over ``source``.

        ``channels=(lo, hi)`` keeps that channel range and ``decimate=q``
        keeps every ``q``-th raw sample (exact pointwise selection);
        the optimizer pushes both into the storage read, so a
        ``decimate=8`` plan moves roughly 1/8 of the bytes.  Add analysis
        branches (:meth:`AnalysisPlan.local_similarity`,
        :meth:`~AnalysisPlan.interferometry`,
        :meth:`~AnalysisPlan.sta_lta`, :meth:`~AnalysisPlan.stack`) and
        call :meth:`AnalysisPlan.run`; branches sharing the prefix
        execute it once per chunk.  ``tune=True`` selects chunk size and
        threads from the facade's cluster model when no explicit
        ``chunk_samples`` is configured.
        """
        return AnalysisPlan(
            self, source, channels=channels, decimate=decimate, tune=tune
        )

    def explain(self, plan: "AnalysisPlan | PhysicalPlan") -> str:
        """Human-readable before/after dump of a plan's rewrites."""
        if isinstance(plan, AnalysisPlan):
            return plan.explain()
        return explain_plan(plan)

    def close(self) -> None:
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "DASSA":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AnalysisPlan:
    """A lazy, multi-branch analysis over one source.

    Built by :meth:`DASSA.plan`; nothing reads data until :meth:`run` (or
    :meth:`explain`, which plans without executing the stream).  Each
    branch method appends one analysis and returns ``self``::

        out = (dassa.plan(vca, channels=(2, 10), decimate=4)
                    .sta_lta(5, 50, label="trig")
                    .local_similarity(cfg, label="simi")
                    .run())
        out["trig"], out["simi"]

    All branch configurations are expressed in the *planned* stream's
    coordinates (after the channel selection and decimation): an
    ``InterferometryConfig.fs`` must be the decimated rate, and a
    ``master_channel`` counts from ``channels[0]``.  Outputs are mapped
    back to raw coordinates where the analysis defines them (window
    centers); for everything else :attr:`DASSA.last_frame` holds the
    translation.
    """

    def __init__(
        self,
        dassa: DASSA,
        source: object,
        channels: tuple[int, int] | None = None,
        decimate: int = 1,
        tune: bool = False,
    ):
        if decimate < 1:
            raise ConfigError("decimate must be >= 1")
        if channels is not None:
            lo, hi = channels
            if not (0 <= lo < hi):
                raise ConfigError(f"bad channel range [{lo}, {hi})")
        self._dassa = dassa
        self._source = source
        self._channels = channels
        self._step = int(decimate)
        self._tune = bool(tune)
        self._branches: list[tuple[str, str, dict]] = []
        self.plan: PhysicalPlan | None = None

    # -- branches ------------------------------------------------------------------
    def _add(self, kind: str, label: str | None, spec: dict) -> "AnalysisPlan":
        self._branches.append((kind, label or f"{kind}_{len(self._branches)}", spec))
        return self

    def local_similarity(
        self,
        config: LocalSimilarityConfig | None = None,
        label: str | None = None,
    ) -> "AnalysisPlan":
        """Algorithm 2; the branch yields ``(similarity_map, centers)``
        with centers in *raw* sample coordinates."""
        cfg = config if config is not None else LocalSimilarityConfig()
        return self._add("local_similarity", label, {"config": cfg})

    def interferometry(
        self,
        config: InterferometryConfig,
        label: str | None = None,
    ) -> "AnalysisPlan":
        """Algorithm 3; ``config.fs`` is the planned stream's rate and
        ``config.master_channel`` counts from the selected range."""
        return self._add("interferometry", label, {"config": config})

    def sta_lta(
        self, nsta: int, nlta: int, label: str | None = None
    ) -> "AnalysisPlan":
        """Classic STA/LTA ratios per channel of the planned stream."""
        return self._add("sta_lta", label, {"nsta": nsta, "nlta": nlta})

    def stack(
        self,
        config: InterferometryConfig,
        window_seconds: float,
        overlap: float = 0.0,
        max_lag_seconds: float | None = None,
        method: str = "linear",
        power: float = 2.0,
        label: str | None = None,
    ) -> "AnalysisPlan":
        """Windowed NCF stacking; the branch yields ``(lags, stacked)``."""
        return self._add(
            "stack",
            label,
            {
                "config": config,
                "window_seconds": window_seconds,
                "overlap": overlap,
                "max_lag_seconds": max_lag_seconds,
                "method": method,
                "power": power,
            },
        )

    # -- planning & execution ------------------------------------------------------
    def _build_queries(self, src: ChunkSource) -> tuple[list[Query], list]:
        from repro.core.interferometry import (
            interferometry_operators,
            master_spectrum,
        )
        from repro.core.local_similarity import LocalSimilarityOp
        from repro.core.stacking import NCFStackSink
        from repro.core.stalta import StaLtaOp

        if not self._branches:
            raise ConfigError("plan has no analysis branches")
        base = Query.scan(src)
        if self._channels is not None:
            base = base.select_channels(*self._channels)
        if self._step > 1:
            base = base.decimate(self._step)
        stream_samples = -(-src.n_samples // self._step)

        queries: list[Query] = []
        posts: list = []
        for kind, label, spec in self._branches:
            if kind == "local_similarity":
                cfg = spec["config"]
                q = base.then(LocalSimilarityOp(cfg))
                centers = cfg.centers(stream_samples) * self._step
                posts.append(lambda out, c=centers: (out, c))
            elif kind == "interferometry":
                cfg = spec["config"]
                mc = cfg.master_channel + (
                    self._channels[0] if self._channels is not None else 0
                )
                master = src.read_strided(
                    mc, mc + 1, 0, src.n_samples, self._step
                )
                mfft = master_spectrum(master, cfg)
                q = base
                for op in interferometry_operators(cfg, master_fft=mfft):
                    q = q.then(op)
                posts.append(None)
            elif kind == "sta_lta":
                q = base.then(StaLtaOp(spec["nsta"], spec["nlta"]))
                posts.append(None)
            else:  # stack
                spec = dict(spec)
                q = base.then(
                    NCFStackSink(
                        spec.pop("config"),
                        spec.pop("window_seconds"),
                        **spec,
                    )
                )
                posts.append(None)
            queries.append(q.with_label(label))
        return queries, posts

    def _optimize(self, src: ChunkSource) -> tuple[PhysicalPlan, list]:
        queries, posts = self._build_queries(src)
        cfg = self._dassa.config
        plan = optimize(
            queries,
            chunk_samples=cfg.chunk_samples,
            threads=cfg.threads,
            cluster=cfg.cluster,
            tune=self._tune,
        )
        self.plan = plan
        return plan, posts

    def explain(self) -> str:
        """Plan (without streaming the record) and render the rewrites."""
        src, owns = self._dassa._open_source(self._source)
        try:
            plan, _ = self._optimize(src)
            return explain_plan(plan)
        finally:
            if owns:
                src.close()

    def run(self, naive: bool = False) -> dict:
        """Execute the optimized plan; ``naive=True`` runs the eager
        equivalence reference instead (same outputs, bit for bit).
        Returns ``{label: output}`` in branch order and records the run's
        profile, gaps, and coordinate frame on the facade.
        """
        src, owns = self._dassa._open_source(self._source)
        try:
            plan, posts = self._optimize(src)
            results = execute_plan(
                plan,
                source=src,
                naive=naive,
                policy=self._dassa.config.failure_policy,
            )
        finally:
            if owns:
                src.close()
        self._dassa.last_profile = results[0].profile
        gaps = GapMap()
        source_gaps = getattr(src, "gaps", None)
        if source_gaps:
            gaps.merge(source_gaps)
        for res in results:
            if res.gaps:
                gaps.merge(res.gaps)
        self._dassa.last_gaps = gaps if gaps else None
        self._dassa.last_frame = plan.frame
        out: dict = {}
        for (kind, label, _spec), res, post in zip(
            self._branches, results, posts
        ):
            out[label] = post(res.output) if post is not None else res.output
        return out
