"""Resource-lifecycle analyzer (``RES``).

``RES001`` — leak on an exception edge.  A handle acquired by
``h = open(...)`` or ``x = something.acquire(...)`` must be released on
*every* CFG path out of the function, including the exceptional ones.
The check is a forward may-hold dataflow (:mod:`repro.checks.dataflow`)
over the function's CFG: acquisitions add ``(name, line)`` facts,
releases (``close``/``release`` on the name) remove them, and any fact
still live at ``exit`` or ``raise-exit`` is a potential leak.  The
exception-edge transfer applies releases but **not** acquisitions — a
statement that raises mid-acquire never produced the handle, while a
``close`` on the exception path is assumed to have closed (flagging the
canonical ``try/finally: h.close()`` would be noise, not signal).
Facts also die when the handle escapes the function — returned,
yielded, stored on an attribute / in a container, or passed to another
call — because ownership moved somewhere this intraprocedural analysis
cannot see.  ``with open(...) as f`` never creates a fact at all: the
context manager *is* the discipline.

``RES002`` — blocking operation while holding a lock.  Inside a
``with <lock>:`` region (any context expression whose final name looks
lock-ish: ``lock``/``mutex``/``cond``/``sem``, or a lock named by the
class's ``# guarded-by:`` annotations; ``# holds-lock`` methods count
as holding the class guard), a call that can block indefinitely —
``open``, ``time.sleep``, ``os.fsync``, ``.recv``/``.Recv``/
``.sendrecv``, fabric ``.match``/``.exchange``, thread ``.join``,
``.wait`` — stalls every other thread contending for that lock.  The
one blessed exception: ``.wait()`` *on the held lock itself* — that is
``Condition.wait``, which releases the lock while sleeping.  As in
:mod:`repro.checks.locks`, nested ``def``/``lambda`` bodies do not
inherit the region (a closure outlives the block that made it).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.checks.cfg import CFGNode, build_cfg, node_exprs
from repro.checks.dataflow import solve_forward
from repro.checks.findings import Finding
from repro.checks.locks import _collect_guards
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["ResourceLifecycleAnalyzer", "BLOCKING_CALLS", "LOCKISH_RE"]

#: Final attribute/name components treated as a lock object.
LOCKISH_RE = re.compile(r"(lock|mutex|cond|sem|rlock)", re.IGNORECASE)

#: Method names acquiring a trackable resource when the result is bound.
_ACQUIRE_METHODS = frozenset({"acquire", "open", "connect", "lease"})
#: Method names releasing it.
_RELEASE_METHODS = frozenset({"close", "release", "shutdown", "unlink"})

#: Method names that can block the calling thread indefinitely.
BLOCKING_CALLS = frozenset({
    "recv", "Recv", "sendrecv", "match", "exchange", "join", "wait",
    "sleep", "fsync",
})
#: Plain-name calls that block (builtins / star-imported).
_BLOCKING_NAMES = frozenset({"open", "sleep"})


def _last_name(expr: ast.expr) -> str | None:
    """``self._io_lock`` -> ``_io_lock``; ``lock`` -> ``lock``."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Call):
        # ``with pool.lease(...):`` — classify by the method name.
        return _last_name(expr.func)
    return None


def _is_acquire(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id == "open"
    if isinstance(func, ast.Attribute):
        return func.attr in _ACQUIRE_METHODS
    return False


class _NodeFacts:
    """Per-CFG-node acquire/release/escape effects for RES001."""

    def __init__(self, stmt: ast.stmt):
        self.acquires: list[tuple[str, int]] = []
        self.releases: set[str] = set()
        self.escapes: set[str] = set()
        self._scan(stmt)

    def _scan(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                # any rebind kills the old fact; an acquiring RHS adds one
                self.releases.add(target.id)
                if _is_acquire(stmt.value):
                    self.acquires.append((target.id, stmt.lineno))
            elif isinstance(target, (ast.Attribute, ast.Subscript, ast.Tuple)):
                # stored somewhere longer-lived: every name in the RHS escapes
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Name):
                        self.escapes.add(node.id)
        for node in node_exprs(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr in _RELEASE_METHODS and isinstance(
                        func.value, ast.Name
                    ):
                        self.releases.add(func.value.id)
                    # a tracked handle passed as an argument escapes
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        self.escapes.add(arg.id)
        if isinstance(stmt, (ast.Return, ast.Expr)):
            value = stmt.value
            if value is not None:
                for node in ast.walk(value):
                    if isinstance(node, (ast.Name,)) and isinstance(
                        stmt, ast.Return
                    ):
                        self.escapes.add(node.id)
                    if isinstance(node, (ast.Yield, ast.YieldFrom)):
                        for sub in ast.walk(node):
                            if isinstance(sub, ast.Name):
                                self.escapes.add(sub.id)


@register
class ResourceLifecycleAnalyzer(Analyzer):
    name = "resource-lifecycle"
    description = "handles released on every path; no blocking under a lock"
    version = 1
    codes = {
        "RES001": "resource acquired but not released on some exit path",
        "RES002": "blocking operation while holding a lock",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None or mod.relaxed or not project.in_scope(mod):
                continue
            guards_by_class = self._class_guards(mod)
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_leaks(mod, node)
            yield from self._check_blocking(mod, guards_by_class)

    # -- RES001 ---------------------------------------------------------------
    def _check_leaks(
        self, mod: SourceModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        cfg = build_cfg(func)
        facts = {
            n.uid: _NodeFacts(n.stmt)
            for n in cfg.stmt_nodes()
            if n.stmt is not None
        }
        if not any(f.acquires for f in facts.values()):
            return

        def apply(node: CFGNode, state, with_acquires: bool):
            fact = facts.get(node.uid)
            if fact is None:
                return state
            out = {
                (name, line)
                for name, line in state
                if name not in fact.releases and name not in fact.escapes
            }
            if with_acquires:
                out |= set(fact.acquires)
            return frozenset(out)

        state_in, _ = solve_forward(
            cfg,
            lambda node, state: apply(node, state, with_acquires=True),
            transfer_exc=lambda node, state: apply(node, state, with_acquires=False),
            init=frozenset(),
            join=lambda a, b: a | b,
        )
        seen: set[tuple[str, int, str]] = set()
        for exit_uid, where in ((cfg.raise_exit, "an exception path"),
                                (cfg.exit, "a return path")):
            for name, line in sorted(state_in.get(exit_uid, frozenset())):
                if (name, line, where) in seen:
                    continue
                seen.add((name, line, where))
                if mod.is_suppressed(line, "RES001"):
                    continue
                yield self.finding(
                    "RES001", mod, line,
                    f"{func.name}: {name!r} acquired here may never be "
                    f"released on {where}",
                    hint="use `with`, or release in a `finally:` block",
                )

    # -- RES002 ---------------------------------------------------------------
    def _class_guards(self, mod: SourceModule) -> dict[int, set[str]]:
        """id(ClassDef) -> lock attribute names from # guarded-by."""
        out: dict[int, set[str]] = {}
        if mod.tree is None:
            return out
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                guards, _assigned = _collect_guards(mod, node)
                out[id(node)] = set(guards.values())
        return out

    def _check_blocking(
        self, mod: SourceModule, guards_by_class: dict[int, set[str]]
    ) -> Iterator[Finding]:
        findings: list[Finding] = []

        def blocking_op(node: ast.Call, held: frozenset[str]) -> str | None:
            func = node.func
            if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
                return func.id
            if isinstance(func, ast.Attribute) and func.attr in BLOCKING_CALLS:
                receiver = _last_name(func.value)
                if func.attr == "wait":
                    # Condition.wait releases the lock it wraps while
                    # sleeping: exempt waits on the held lock or on any
                    # lock-ish condition object.
                    if receiver is not None and (
                        receiver in held or LOCKISH_RE.search(receiver)
                    ):
                        return None
                if func.attr == "join":
                    # os.path.join / ", ".join are string ops, not
                    # thread joins.
                    if isinstance(func.value, ast.Constant):
                        return None
                    if receiver in {"path", "os", "posixpath", "ntpath"}:
                        return None
                return func.attr
            return None

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = set(held)
                for item in node.items:
                    name = _last_name(item.context_expr)
                    if name is not None and LOCKISH_RE.search(name):
                        inner.add(name)
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, frozenset(inner))
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                body = node.body if isinstance(node.body, list) else [node.body]
                for child in body:
                    visit(child, frozenset())
                return
            if isinstance(node, ast.ClassDef):
                # every class is visited by the dedicated class loop
                return
            if isinstance(node, ast.Call) and held:
                op = blocking_op(node, held)
                if op is not None and not mod.node_suppressed(node, "RES002"):
                    locks = ", ".join(sorted(held))
                    findings.append(self.finding(
                        "RES002", mod, node.lineno,
                        f"blocking call {op!r} while holding {locks} — "
                        f"every contender on the lock stalls behind it",
                        hint="move the blocking work outside the lock, "
                             "or snapshot under the lock and do I/O after",
                    ))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        if mod.tree is None:
            return
        for top in ast.walk(mod.tree):
            if not isinstance(top, ast.ClassDef):
                continue
            guard_locks = guards_by_class.get(id(top), set())
            for stmt in top.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                held = frozenset(
                    guard_locks
                    if mod.holds_lock_on(stmt.lineno)
                    or mod.holds_lock_on(stmt.lineno - 1)
                    else ()
                )
                for child in stmt.body:
                    visit(child, held)
        # module-level functions (no guard context)
        for top in mod.tree.body:
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in top.body:
                    visit(child, frozenset())
        yield from findings
