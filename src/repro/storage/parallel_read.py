"""Parallel read strategies for concatenated DAS data (paper §IV-B, Fig. 5).

All strategies deliver the same result — rank ``r`` ends up holding the
channel block ``r`` of the full ``channel x time`` concatenation — but
move the bytes differently:

* **collective-per-file** (Fig. 5a): the ranks walk the files one at a
  time; for each file an aggregator rank reads it whole and *broadcasts*
  it to everyone ("merge-read-broadcast").  n files → n broadcasts —
  the cost the paper's method avoids.
* **communication-avoiding** (Fig. 5b): each rank reads ⌈n/p⌉ whole
  files with one request each (all ranks in parallel), then one
  all-to-all exchange redistributes channel blocks.
* **RCA direct**: with a physically merged array, a rank's channel block
  is one contiguous region — a single request, no communication.

Virtual I/O time is charged from the cluster's storage model through a
shared discrete-event schedule (so concurrent requests contend for OSTs
exactly as in the stand-alone model evaluation), and communication time
through the simmpi cost model.

Each reader accepts an optional :class:`repro.hdf5lite.FilePool`: with a
pool (typically carrying a shared block cache), source files are opened
once and reused across sources, ranks, and repeated reads instead of
being re-opened per access; without one, every access opens its own
handle, which is the uncached behaviour the paper's Fig. 7 charges for.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.storage import IORequest, StorageModel
from repro.errors import ReproError, StorageError
from repro.faults.policy import retry_call
from repro.hdf5lite import File, FilePool
from repro.simmpi.communicator import Communicator
from repro.storage.gaps import GapMap
from repro.storage.rca import RCA_DATASET
from repro.storage.vca import VCAHandle
from repro.utils.iostats import IOStats


def channel_block(n_channels: int, size: int, rank: int) -> tuple[int, int]:
    """Even block partition of channels: returns ``(start, stop)``."""
    if size < 1 or not (0 <= rank < size):
        raise StorageError(f"bad partition rank={rank} size={size}")
    base, extra = divmod(n_channels, size)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return start, stop


def _read_source_whole(
    path: str,
    dataset: str,
    pool: FilePool | None,
    iostats: IOStats | None,
) -> np.ndarray:
    """Read one source dataset whole, via the pool when available."""
    if pool is not None:
        return pool.acquire(path, iostats=iostats).dataset(dataset).read()
    with File(path, "r", iostats=iostats) as f:
        return f.dataset(dataset).read()


def _read_source_resilient(
    path: str,
    source,
    pool: FilePool | None,
    iostats: IOStats | None,
    on_error: str,
    retries: int,
    backoff: float,
    fill_value: float,
) -> tuple[np.ndarray, str | None]:
    """Read one source whole with bounded retry; on persistent failure in
    mask mode, return a fill-valued block plus the failure reason.

    Returns ``(block, reason)`` — ``reason`` is ``None`` on success.
    Transient faults (a device that fails the first read and then
    recovers) are absorbed by the retries; everything else either raises
    (``on_error="raise"``) or becomes a reported gap.
    """
    try:
        block = retry_call(
            lambda: _read_source_whole(path, source.dataset, pool, iostats),
            retries=retries,
            backoff=backoff,
            retry_on=(ReproError, OSError, KeyError),
        )
        return block, None
    except (ReproError, OSError, KeyError) as exc:
        if on_error == "raise":
            raise
        reason = f"{type(exc).__name__}: {exc}"
        return (
            np.full(tuple(source.count), fill_value, dtype=np.float32),
            reason,
        )


def _charge_scheduled_io(
    comm: Communicator,
    storage: StorageModel | None,
    local_requests: list[IORequest],
    nbytes: int,
    op: str = "read",
) -> None:
    """Charge virtual I/O time with cross-rank contention.

    Every rank contributes its request list; the storage model's
    discrete-event scheduler then serves the union, and each rank's
    clock jumps to its own completion time.  Deterministic because the
    schedule is computed identically on every rank.
    """
    if storage is None:
        return
    all_requests = comm.allgather(local_requests)
    flat = [req for rank_reqs in all_requests for req in rank_reqs]
    finish = storage.schedule(flat)
    t_start = comm.clock.now
    if comm.rank in finish:
        comm.clock.synchronize(finish[comm.rank])
    comm.tracer.record(op, nbytes, -1, t_start, comm.clock.now)


def read_vca_collective_per_file(
    comm: Communicator,
    vca_path: str,
    storage: StorageModel | None = None,
    pool: FilePool | None = None,
    iostats: IOStats | None = None,
    on_error: str = "raise",
    retries: int = 1,
    backoff: float = 0.0,
    fill_value: float = float("nan"),
    gaps: GapMap | None = None,
) -> np.ndarray:
    """Fig. 5a: per-file aggregator read + broadcast to all ranks.

    Returns this rank's channel-block array, shaped
    ``(channels_of_this_rank, total_samples)``; virtual time is charged
    on ``comm``'s clock rather than returned.

    Source reads retry up to ``retries`` times with exponential
    ``backoff``.  With ``on_error="mask"``, a source that stays
    unreadable becomes a ``fill_value`` span recorded in ``gaps`` (every
    rank records it — the aggregator broadcasts the failure along with
    the fill block); with the default ``"raise"`` the typed error
    propagates after the retries.
    """
    if on_error not in ("raise", "mask"):
        raise StorageError(f"on_error must be 'raise' or 'mask', got {on_error!r}")
    with VCAHandle(vca_path, iostats=iostats, pool=pool) as vca:
        n_channels, total_samples = vca.shape
        sources = vca.sources
        paths = vca.source_paths()
    lo, hi = channel_block(n_channels, comm.size, comm.rank)
    out = np.empty((hi - lo, total_samples), dtype=np.float32)
    degraded = on_error != "raise"

    for index, (source, path) in enumerate(zip(sources, paths)):
        aggregator = index % comm.size
        if comm.rank == aggregator:
            block, reason = _read_source_resilient(
                path, source, pool, iostats, on_error, retries, backoff, fill_value
            )
            # One whole-file read by the aggregator, charged at the bytes
            # actually read (the source's own dtype, not assumed float32);
            # a masked failure read nothing, so nothing is charged.
            file_bytes = block.nbytes if reason is None else 0
            _charge_scheduled_io(
                comm,
                storage,
                [
                    IORequest(
                        rank=comm.rank,
                        file_id=index,
                        nbytes=file_bytes,
                        start=comm.clock.now,
                        is_open=True,
                    )
                ]
                if reason is None
                else [],
                file_bytes,
            )
        else:
            block, reason = None, None
            _charge_scheduled_io(comm, storage, [], 0)
        # The "merge-read-broadcast" step: everyone gets the whole file
        # (and, when degraded, whether it is real data or fill).
        if degraded:
            block, reason = comm.bcast((block, reason), root=aggregator)
            if reason is not None and gaps is not None:
                g0 = source.dst_start[1]
                gaps.record(
                    source.file, g0, g0 + source.count[1], reason,
                    attempts=retries + 1,
                )
        else:
            block = comm.bcast(block, root=aggregator)
        t0 = source.dst_start[1]
        out[:, t0 : t0 + source.count[1]] = block[lo:hi, :]
    return out


def read_vca_communication_avoiding(
    comm: Communicator,
    vca_path: str,
    storage: StorageModel | None = None,
    pool: FilePool | None = None,
    iostats: IOStats | None = None,
    on_error: str = "raise",
    retries: int = 1,
    backoff: float = 0.0,
    fill_value: float = float("nan"),
    gaps: GapMap | None = None,
) -> np.ndarray:
    """Fig. 5b: each rank reads whole files, one all-to-all exchange.

    Returns this rank's channel-block array, shaped
    ``(channels_of_this_rank, total_samples)``; virtual time is charged
    on ``comm``'s clock rather than returned.

    Degraded-read semantics match
    :func:`read_vca_collective_per_file`: bounded retry with backoff,
    then — under ``on_error="mask"`` — a fill-valued span recorded in
    ``gaps`` on every rank (owning ranks allgather their failures after
    the read phase so the report is global).
    """
    if on_error not in ("raise", "mask"):
        raise StorageError(f"on_error must be 'raise' or 'mask', got {on_error!r}")
    with VCAHandle(vca_path, iostats=iostats, pool=pool) as vca:
        n_channels, total_samples = vca.shape
        sources = vca.sources
        paths = vca.source_paths()
    lo, hi = channel_block(n_channels, comm.size, comm.rank)
    out = np.empty((hi - lo, total_samples), dtype=np.float32)
    degraded = on_error != "raise"

    # Round-robin file ownership; every rank reads its own files whole,
    # all ranks in parallel.
    my_files = list(range(comm.rank, len(sources), comm.size))
    blocks: dict[int, np.ndarray] = {}
    requests: list[IORequest] = []
    local_failures: list[tuple[int, str]] = []
    for index in my_files:
        source, path = sources[index], paths[index]
        blocks[index], reason = _read_source_resilient(
            path, source, pool, iostats, on_error, retries, backoff, fill_value
        )
        if reason is not None:
            local_failures.append((index, reason))
            continue  # nothing was read; charge nothing
        requests.append(
            IORequest(
                rank=comm.rank,
                file_id=index,
                nbytes=blocks[index].nbytes,
                start=comm.clock.now,
                is_open=True,
            )
        )
    _charge_scheduled_io(
        comm, storage, requests, sum(r.nbytes for r in requests)
    )
    if degraded:
        # Failures are known only to the owning rank; one allgather makes
        # the gap report identical everywhere.
        for rank_failures in comm.allgather(local_failures):
            for index, reason in rank_failures:
                if gaps is None:
                    continue
                src = sources[index]
                g0 = src.dst_start[1]
                gaps.record(
                    src.file, g0, g0 + src.count[1], reason,
                    attempts=retries + 1,
                )

    # One all-to-all: rank -> dest gets (file index, dest's channel rows).
    sendbuf: list[list[tuple[int, np.ndarray]]] = []
    for dest in range(comm.size):
        d_lo, d_hi = channel_block(n_channels, comm.size, dest)
        sendbuf.append(
            [(index, blocks[index][d_lo:d_hi, :]) for index in my_files]
        )
    received = comm.alltoall(sendbuf)

    for per_source in received:
        for index, piece in per_source:
            t0 = sources[index].dst_start[1]
            out[:, t0 : t0 + sources[index].count[1]] = piece
    return out


def read_rca_direct(
    comm: Communicator,
    rca_path: str,
    storage: StorageModel | None = None,
    dataset: str = RCA_DATASET,
    pool: FilePool | None = None,
    iostats: IOStats | None = None,
) -> np.ndarray:
    """Read an RCA in parallel — one contiguous request per rank — and
    return this rank's channel-block array."""
    if pool is not None:
        f = pool.acquire(rca_path, iostats=iostats)  # noqa: RES001 - the pool owns the handle; close_all() releases it
        ds = f.dataset(dataset)
        n_channels, total_samples = ds.shape
        lo, hi = channel_block(n_channels, comm.size, comm.rank)
        block = ds[lo:hi, :]
    else:
        with File(rca_path, "r", iostats=iostats) as f:
            ds = f.dataset(dataset)
            n_channels, total_samples = ds.shape
            lo, hi = channel_block(n_channels, comm.size, comm.rank)
            block = ds[lo:hi, :]
    # Charge the bytes actually read: the dataset's own dtype width.
    nbytes = block.nbytes
    # A single large file is striped over only default_stripe_count OSTs;
    # rank blocks land round-robin on those stripes.
    stripes = storage.default_stripe_count if storage is not None else 1
    _charge_scheduled_io(
        comm,
        storage,
        [
            IORequest(
                rank=comm.rank,
                file_id=comm.rank % stripes,
                nbytes=nbytes,
                start=comm.clock.now,
                is_open=True,
            )
        ],
        nbytes,
    )
    return np.asarray(block, dtype=np.float32)
