#!/usr/bin/env python
"""Velocity profiling: the full interferometry science chain.

The end product of the traffic-noise application (paper §V-C) is a
shear-wave velocity estimate of the shallow subsurface.  This example
runs the complete chain on synthetic ambient noise:

    noise field → windowed NCFs (the 3-D stacking array of §IV)
                → linear + phase-weighted stacks
                → arrival picks → moveout fit → velocity

Run:  python examples/velocity_profiling.py
"""

import numpy as np

from repro.core.interferometry import InterferometryConfig
from repro.core.stacking import (
    linear_stack,
    phase_weighted_stack,
    stack_snr,
    window_ncfs,
)
from repro.core.velocity import fit_moveout

FS = 100.0
CHANNELS = 20
SPACING = 2.0  # metres
TRUE_VELOCITY = 60.0  # m/s
MINUTES = 5.0


def build_noise_field(rng: np.random.Generator) -> np.ndarray:
    n = int(MINUTES * 60 * FS)
    common = rng.normal(size=n)
    rows = []
    for channel in range(CHANNELS):
        delay = int(round(channel * SPACING / TRUE_VELOCITY * FS))
        rows.append(np.roll(common, delay) + 0.8 * rng.normal(size=n))
    return np.stack(rows)


def main() -> None:
    rng = np.random.default_rng(42)
    print(f"synthesising {MINUTES:.0f} min of noise on {CHANNELS} channels "
          f"(true velocity {TRUE_VELOCITY:.0f} m/s) ...")
    data = build_noise_field(rng)

    config = InterferometryConfig(fs=FS, band=(1.0, 12.0), resample_q=2)
    print("windowed correlation (30 s windows, 50% overlap) ...")
    lags, ncfs = window_ncfs(
        data, config, window_seconds=30.0, overlap=0.5, max_lag_seconds=2.0
    )
    print(f"3-D stacking array: {ncfs.shape} (windows x channels x lags)")

    linear = linear_stack(ncfs)
    pws = phase_weighted_stack(ncfs)
    window = (0.0, CHANNELS * SPACING / TRUE_VELOCITY + 0.3)
    snr_linear = stack_snr(linear, lags, window)[1:].mean()
    snr_pws = stack_snr(pws, lags, window)[1:].mean()
    snr_single = stack_snr(ncfs[0], lags, window)[1:].mean()
    print(f"SNR: single window {snr_single:.1f}  linear stack {snr_linear:.1f}  "
          f"phase-weighted {snr_pws:.1f}")

    print("\nmoveout fit (distance vs picked arrival):")
    for name, stacked in (("linear", linear), ("phase-weighted", pws)):
        fit = fit_moveout(stacked, lags, channel_spacing=SPACING, min_distance=2.0)
        error = 100 * abs(fit.velocity - TRUE_VELOCITY) / TRUE_VELOCITY
        print(f"  {name:<15} v = {fit.velocity:6.1f} m/s  "
              f"(true {TRUE_VELOCITY:.0f}, err {error:.1f}%, R² = {fit.r_squared:.3f})")

    fit = fit_moveout(pws, lags, channel_spacing=SPACING, min_distance=2.0)
    print("\nper-channel picks (phase-weighted stack):")
    print(f"{'channel':>8} {'distance (m)':>13} {'pick (s)':>9} {'expected (s)':>13}")
    for channel in range(1, CHANNELS, 4):
        print(f"{channel:>8} {fit.distances[channel]:>13.0f} "
              f"{fit.picks[channel]:>9.3f} "
              f"{fit.distances[channel] / TRUE_VELOCITY:>13.3f}")


if __name__ == "__main__":
    main()
