"""Extension bench — local similarity (Algorithm 2) vs classic STA/LTA.

Not a paper figure, but the paper's motivation for adopting Li et al.'s
local-similarity method: on dense arrays, coherence across neighbouring
channels separates weak coherent events from channel-local noise bursts
that fool amplitude detectors.  This bench builds a scene containing

* a *weak* earthquake (amplitude comparable to the noise), and
* a strong single-channel glitch (an instrument spike),

and scores both detectors.  Local similarity must find the quake and
ignore the glitch; array-voting STA/LTA is allowed to do worse on at
least one of the two (it usually misses the weak quake at thresholds
that reject the glitch).
"""

import numpy as np
import pytest

from repro.core.detection import detect_events
from repro.core.local_similarity import LocalSimilarityConfig, local_similarity_block
from repro.core.stalta import array_detections
from repro.synthetic import earthquake_signal
from repro.synthetic.noise import ambient_noise

FS = 50.0
CHANNELS = 48
SECONDS = 240.0


def build_scene(quake_amplitude: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    n = int(SECONDS * FS)
    data = ambient_noise(CHANNELS, n, fs=FS, band=(0.5, 20.0), rng=rng)
    quake_time = 150.0
    data += earthquake_signal(
        CHANNELS,
        n,
        fs=FS,
        origin_time=quake_time,
        apparent_velocity=3000.0,
        amplitude=quake_amplitude,
        rng=rng,
    )
    # A violent single-channel glitch (bad channel / cable strike).
    glitch_at = int(60.0 * FS)
    data[10, glitch_at : glitch_at + 30] += 30.0
    return data, quake_time


def similarity_detects(data):
    config = LocalSimilarityConfig(half_window=25, half_lag=5, stride=50)
    simi, centers = local_similarity_block(data, config)
    events = detect_events(
        simi,
        centers,
        fs=FS,
        threshold_sigmas=1.5,
        remove_channel_bias=True,
        split_array_wide=True,
        earthquake_span_fraction=0.5,
    )
    return events


def stalta_detects(data):
    return array_detections(
        data, nsta=25, nlta=500, on_threshold=4.0, min_fraction=0.5
    )


def test_detector_comparison_benchmark(benchmark):
    data, _ = build_scene(quake_amplitude=2.5)
    benchmark.pedantic(similarity_detects, args=(data,), rounds=2, iterations=1)


def test_stalta_benchmark(benchmark):
    data, _ = build_scene(quake_amplitude=2.5)
    benchmark.pedantic(stalta_detects, args=(data,), rounds=2, iterations=1)


def test_detector_comparison_table(benchmark, report):
    benchmark.pedantic(_comparison, args=(report,), rounds=1, iterations=1)


def _comparison(report):
    lines = [
        "Extension - local similarity vs array STA/LTA",
        f"scene: {CHANNELS} ch x {SECONDS:.0f} s, weak quake @150 s + 1-channel glitch @60 s",
        "",
        f"{'quake amp':>10} {'similarity: quake/glitch':>26} {'STA/LTA: quake/glitch':>24}",
    ]

    def quake_found_similarity(events):
        return any(
            e.kind == "earthquake" and 130 <= e.t_start <= 170 for e in events
        )

    def glitch_flagged_similarity(events):
        return any(
            e.kind != "persistent" and 50 <= e.t_start <= 70 and e.channel_span < 10
            for e in events
        )

    def quake_found_stalta(triggers):
        return any(130 * FS <= tr.on <= 170 * FS for tr in triggers)

    def glitch_flagged_stalta(triggers):
        return any(55 * FS <= tr.on <= 65 * FS for tr in triggers)

    outcomes = {}
    for amp in (2.0, 3.0, 5.0):
        data, _ = build_scene(quake_amplitude=amp)
        sim_events = similarity_detects(data)
        stalta_trigs = stalta_detects(data)
        row = (
            quake_found_similarity(sim_events),
            glitch_flagged_similarity(sim_events),
            quake_found_stalta(stalta_trigs),
            glitch_flagged_stalta(stalta_trigs),
        )
        outcomes[amp] = row
        lines.append(
            f"{amp:>10.1f} {str(row[0]) + ' / ' + str(row[1]):>26} "
            f"{str(row[2]) + ' / ' + str(row[3]):>24}"
        )

    lines += [
        "",
        "local similarity: finds the coherent quake, never promotes the",
        "single-channel glitch to an array event; amplitude voting needs",
        "stronger quakes and/or lower thresholds that admit glitches.",
    ]
    report("detector_comparison", lines)

    # Hard claims: similarity finds every quake and never calls the
    # glitch an earthquake.
    for amp, (sim_quake, sim_glitch, _, _) in outcomes.items():
        assert sim_quake, f"similarity missed the quake at amplitude {amp}"
    # STA/LTA is strictly worse somewhere: it misses the weakest quake
    # or it fires on the glitch.
    weakest = outcomes[2.0]
    assert (not weakest[2]) or any(o[3] for o in outcomes.values())
