"""ArrayUDF — structural-locality UDF execution on distributed arrays.

Reimplements the authors' prior system (HPDC'17) that DASSA extends:

* :class:`~repro.arrayudf.stencil.Stencil` — a cell plus its
  neighbourhood, the argument every user-defined function receives,
* :mod:`repro.arrayudf.partition` — block partitioning with ghost zones
  so UDFs touching neighbours need no communication,
* :func:`~repro.arrayudf.apply.apply` — the MPI-parallel ``B =
  Apply(A, f)`` operator,
* :func:`~repro.arrayudf.apply_mt.apply_mt` — the multithreaded Apply of
  DASSA's Hybrid ArrayUDF Execution Engine (Algorithm 1),
* :class:`~repro.arrayudf.engine.HybridEngine` — HAEE: one rank per
  node + threads, versus :class:`~repro.arrayudf.engine.MPIEngine`:
  one rank per core (the Fig. 8 comparison).
"""

from repro.arrayudf.apply import apply
from repro.arrayudf.apply_mt import apply_mt
from repro.arrayudf.engine import EngineReport, HybridEngine, MPIEngine
from repro.arrayudf.ghost import exchange_halos
from repro.arrayudf.partition import Partition, partition_1d, partition_rows
from repro.arrayudf.stencil import Stencil

__all__ = [
    "Stencil",
    "Partition",
    "partition_1d",
    "partition_rows",
    "apply",
    "apply_mt",
    "exchange_halos",
    "MPIEngine",
    "HybridEngine",
    "EngineReport",
]
