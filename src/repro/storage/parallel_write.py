"""Parallel output writing.

Both engines "write the output as a single and big array" (paper §VI-C)
— Fig. 8's write bars are identical because the output path is shared.
Rank blocks are gathered in rank order and written as one contiguous
dataset; virtual write time is charged per-rank from the storage model
(each rank's block is one striped write request).
"""

from __future__ import annotations

import os

import numpy as np

from repro.cluster.storage import IORequest, StorageModel
from repro.errors import StorageError
from repro.hdf5lite import File
from repro.simmpi.communicator import Communicator

OUTPUT_DATASET = "Output"


def write_output_parallel(
    comm: Communicator,
    path: str | os.PathLike,
    block: np.ndarray,
    storage: StorageModel | None = None,
    dataset: str = OUTPUT_DATASET,
    attrs: dict | None = None,
) -> tuple[int, int]:
    """Write per-rank row blocks as one big array; returns this rank's
    ``(row_lo, row_hi)`` in the output.

    The hdf5lite backend is not multi-writer safe, so blocks are gathered
    to rank 0 which performs the physical write — but the *charged* time
    models the real collective write: every rank issues one large striped
    write concurrently.
    """
    block = np.ascontiguousarray(block)
    if block.ndim != 2:
        raise StorageError("output blocks must be 2-D (rows, cols)")
    shapes = comm.allgather(block.shape)
    cols = shapes[0][1]
    if any(shape[1] != cols for shape in shapes):
        raise StorageError(f"inconsistent output column counts: {shapes}")
    row_lo = sum(shape[0] for shape in shapes[: comm.rank])
    row_hi = row_lo + block.shape[0]

    gathered = comm.gather(block, root=0)
    if comm.rank == 0:
        full = np.concatenate(gathered, axis=0)
        with File(os.fspath(path), "w") as f:
            if attrs:
                f.attrs.update_many(attrs)
            f.create_dataset(dataset, data=full)

    if storage is not None:
        stripes = storage.default_stripe_count
        requests = [
            IORequest(
                rank=comm.rank,
                file_id=comm.rank % stripes,
                nbytes=block.nbytes,
                start=comm.clock.now,
                is_open=(comm.rank == 0),
                is_write=True,
            )
        ]
        all_requests = comm.allgather(requests)
        finish = storage.schedule([r for rs in all_requests for r in rs])
        t_start = comm.clock.now
        if comm.rank in finish:
            comm.clock.synchronize(finish[comm.rank])
        comm.tracer.record("write", block.nbytes, -1, t_start, comm.clock.now)
    comm.barrier()
    return row_lo, row_hi
