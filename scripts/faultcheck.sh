#!/usr/bin/env bash
# Lint: no new bare `except Exception:` / `except BaseException:` under
# src/repro/.  Untyped catch-alls swallow the typed error taxonomy
# (repro.errors) that the degraded-read, retry, and quarantine paths
# depend on to tell transient faults from logic bugs.
#
# An intentional catch-all boundary carries an inline `noqa` marker with
# a reason (e.g. `# noqa: BLE001 - must not lose rank errors`); files
# grandfathered in before this check live in
# scripts/faultcheck_allowlist.txt (one path per line, relative to
# src/repro/).
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist="scripts/faultcheck_allowlist.txt"
fail=0
while IFS=: read -r file line text; do
    [ -z "$file" ] && continue
    case "$text" in *noqa*) continue ;; esac
    rel="${file#src/repro/}"
    if grep -qxF "$rel" "$allowlist" 2>/dev/null; then
        continue
    fi
    echo "faultcheck: $file:$line: untyped catch-all without noqa:$text" >&2
    fail=1
done < <(grep -rn --include='*.py' -E 'except +(Exception|BaseException)\b' src/repro/ || true)

if [ "$fail" -ne 0 ]; then
    echo "faultcheck: catch a typed exception from repro.errors instead," >&2
    echo "faultcheck: or annotate the boundary: '# noqa: BLE001 - reason'." >&2
    exit 1
fi
echo "faultcheck: OK"
