"""Streaming operators for the Algorithm 3 DSP chain.

Each class wraps one ``daslib`` stage in the :class:`~repro.core.pipeline.Operator`
overlap contract, so the streaming executor can run the chain chunk by
chunk and stitch the ghost zones away:

* :class:`DetrendOp` — positional (needs the *global* linear fit, so it
  carries a streaming pre-pass accumulating ``Σx`` and ``Σ t·x``),
* :class:`TaperOp` — positional (evaluates the whole-record Tukey window
  on the chunk's absolute slice),
* :class:`FiltFiltOp` — halo from the filter's pole radius
  (:func:`~repro.daslib.filtfilt.settle_length`),
* :class:`DecimateOp` — phase-aligned chunked ``resample(x, 1, q)``,
* :class:`FFTSink` — terminal accumulator: collects the decimated stream
  and transforms once (spectra must see the whole record),
* :class:`WhitenOp` / :class:`CorrelateOp` — post-sink spectrum stages.

Every operator also implements the MATLAB-faithful interpreted
per-channel loop (``ctx.interpreted``), which is how
:func:`~repro.core.pipeline.run_materialized` reproduces the Fig. 9
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import OpContext, Operator, SinkOp
from repro.daslib import (
    abscorr,
    decimate_chunk,
    design_resample_filter,
    detrend,
    fft,
    filtfilt,
    next_fast_len,
    resample_halo,
    settle_length,
    taper,
    tukey_slice,
    whiten,
)
from repro.errors import ConfigError

__all__ = [
    "DetrendOp",
    "TaperOp",
    "FiltFiltOp",
    "DecimateOp",
    "FFTSink",
    "WhitenOp",
    "CorrelateOp",
]


class DetrendOp(Operator):
    """``Das_detrend``: subtract the whole-record least-squares line.

    The fit is a *global* reduction, so streaming needs a pre-pass: two
    running sums per channel (``Σx`` and ``Σ t·x``) determine the same
    line the whole-array fit produces, and ``apply`` subtracts it on any
    chunk using absolute sample positions.
    """

    name = "detrend"
    needs_prepass = True
    stream_safe = False  # the fit is a whole-record statistic

    def prepass_init(self, n_channels: int, total_in: int) -> dict:
        return {
            "total": total_in,
            "sx": np.zeros(n_channels),
            "stx": np.zeros(n_channels),
        }

    def prepass_update(self, acc: dict, chunk: np.ndarray, start: int) -> None:
        t = np.arange(start, start + chunk.shape[-1], dtype=np.float64)
        acc["sx"] += chunk.sum(axis=-1)
        acc["stx"] += chunk @ t

    def prepass_finalize(self, acc: dict) -> dict:
        total = acc["total"]
        mean = acc["sx"] / total
        t_mean = (total - 1) / 2.0
        if total < 2:
            slope = np.zeros_like(mean)
        else:
            # Σ (t - t̄)² for t = 0..T-1 in closed form.
            denom = total * (total * total - 1.0) / 12.0
            slope = (acc["stx"] - t_mean * acc["sx"]) / denom
        return {"mean": mean, "slope": slope, "t_mean": t_mean}

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        if ctx.whole:
            if ctx.interpreted:
                out = np.empty_like(data)
                for channel in range(data.shape[0]):  # interpreted channel loop
                    out[channel] = detrend(data[channel])
                return out
            return detrend(data, axis=-1)
        state = ctx.state
        if state is None or "mean" not in state:
            raise ConfigError("streamed detrend needs its pre-pass state")
        rows = slice(ctx.channel_lo, ctx.channel_lo + data.shape[0])
        mean = state["mean"][rows, None]
        slope = state["slope"][rows, None]
        t = np.arange(ctx.start, ctx.stop, dtype=np.float64) - state["t_mean"]
        return data - (mean + slope * t)


class TaperOp(Operator):
    """``Das_taper``: the whole-record Tukey window, evaluated on the
    chunk's absolute sample slice so streamed and whole outputs agree
    bit for bit."""

    name = "taper"
    stream_safe = False  # the window is evaluated against the final length

    def __init__(self, fraction: float):
        if not (0.0 < fraction <= 0.5):
            raise ConfigError("taper fraction must be in (0, 0.5]")
        self.fraction = float(fraction)

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        if ctx.interpreted and ctx.whole:
            out = np.empty_like(data)
            for channel in range(data.shape[0]):
                out[channel] = taper(data[channel], self.fraction)
            return out
        window = tukey_slice(ctx.total, 2.0 * self.fraction, ctx.start, ctx.stop)
        return data * window[None, :]


class FiltFiltOp(Operator):
    """``Das_filtfilt``: zero-phase IIR filtering with a pole-radius halo.

    The forward-backward transient of an IIR filter decays like
    ``r**n`` with ``r`` the largest pole magnitude; inside a chunk we pad
    with :func:`~repro.daslib.filtfilt.settle_length` real samples per
    side so the retained core matches whole-array ``filtfilt`` to the
    settle tolerance.  At the true record edges the clamped read
    reproduces the whole-array odd-reflection padding exactly.
    """

    name = "filtfilt"

    def __init__(self, b: np.ndarray, a: np.ndarray, tol: float = 1e-10):
        self.b = np.atleast_1d(np.asarray(b, dtype=np.float64))
        self.a = np.atleast_1d(np.asarray(a, dtype=np.float64))
        settle = settle_length(self.b, self.a, tol=tol)
        self.halo = (settle, settle)

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        if ctx.interpreted:
            out = np.empty_like(data)
            for channel in range(data.shape[0]):
                # engine="numpy": the interpreted recursion, like a
                # MATLAB script loop (no compiled filter kernel).
                out[channel] = filtfilt(self.b, self.a, data[channel], engine="numpy")
            return out
        return filtfilt(self.b, self.a, data, axis=-1)


class DecimateOp(Operator):
    """``Das_resample(X, 1, q)``: phase-aligned chunked decimation.

    Whole-array ``resample`` emits one output per absolute input index
    ``j*q``; :func:`~repro.daslib.resample.decimate_chunk` computes
    exactly the outputs whose centre falls inside the chunk, so chunks
    tile the decimated axis with the global phase intact.
    """

    name = "resample"

    def __init__(self, q: int, half_width: int = 10, beta: float = 5.0):
        if q < 1:
            raise ConfigError("q must be >= 1")
        self.q = int(q)
        self.decimate = self.q
        halo = resample_halo(self.q, half_width=half_width)
        self.halo = (halo, halo)
        self.taps = (
            design_resample_filter(1, self.q, half_width=half_width, beta=beta)
            if self.q > 1
            else None
        )

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        if ctx.interpreted and ctx.whole:
            out_len = -(-data.shape[-1] // self.q)
            out = np.empty((data.shape[0], out_len))
            for channel in range(data.shape[0]):
                out[channel] = decimate_chunk(
                    data[channel], self.q, 0, taps=self.taps
                )
            return out
        return decimate_chunk(data, self.q, ctx.start, taps=self.taps)


class FFTSink(SinkOp):
    """``Das_fft``: accumulate the decimated stream, transform once.

    Spectra need the whole (decimated) record, so the sink is the point
    where streaming re-materialises — but at ``1/q`` of the raw rate,
    which is the memory win chunked execution buys for Algorithm 3.
    ``nfft=None`` uses ``next_fast_len`` of the record length, matching
    :func:`~repro.core.interferometry.interferometry_block`.
    """

    name = "fft"

    def __init__(self, nfft: int | None = None):
        self.nfft = nfft

    def init(self, n_channels: int, total_in: int, fs_in: float) -> dict:
        return {"pieces": [], "seen": 0, "total": total_in}

    def consume(self, state: dict, chunk: np.ndarray, ctx: OpContext) -> None:
        if ctx.start != state["seen"]:
            raise ConfigError(
                f"fft sink fed out of order: got [{ctx.start}, {ctx.stop}) "
                f"after {state['seen']} samples"
            )
        state["pieces"].append(np.ascontiguousarray(chunk))
        state["seen"] = ctx.stop

    def finalize(self, state: dict) -> np.ndarray:
        if state["seen"] != state["total"]:
            raise ConfigError(
                f"fft sink saw {state['seen']} of {state['total']} samples"
            )
        pieces = state["pieces"]
        series = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=-1)
        nfft = self.nfft if self.nfft is not None else next_fast_len(series.shape[-1])
        return fft(series, n=nfft, axis=-1)

    def resident_bytes(self, state: dict) -> int:
        return sum(piece.nbytes for piece in state["pieces"])


class WhitenOp(Operator):
    """Spectral whitening of the accumulated spectra (post-sink stage)."""

    name = "whiten"

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        return np.asarray(whiten(data, axis=-1))


class CorrelateOp(Operator):
    """Absolute correlation of each channel's spectrum with ``Mfft``.

    With ``master_fft=None`` the master row of the incoming spectra is
    used (the single-block semantics of
    :func:`~repro.core.interferometry.interferometry_block`); a
    precomputed spectrum is the shared node-level state of the
    distributed engine.
    """

    name = "correlate"

    def __init__(
        self, master_fft: np.ndarray | None = None, master_channel: int = 0
    ):
        self.master_fft = master_fft
        self.master_channel = int(master_channel)

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        master = (
            self.master_fft
            if self.master_fft is not None
            else data[self.master_channel]
        )
        if ctx.interpreted:
            out = np.empty(data.shape[0])
            for channel in range(data.shape[0]):
                out[channel] = abscorr(data[channel], master)
            return out
        return np.asarray(abscorr(data, master[None, :], axis=-1))
