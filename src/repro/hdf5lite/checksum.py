"""Per-block CRC32 sidecar checksums for hdf5lite datasets.

DASPack-style data-integrity verification as a first-class storage
property: a dataset may carry a ``repro:crc32`` sidecar attribute holding
one CRC32 per storage block — fixed-size blocks of the data region for
contiguous datasets, one per chunk for chunked datasets.  The sidecar
lives in the ordinary attribute footer, so checksummed files remain
readable by every pre-checksum reader (the attributes are just ignored).

Verification happens where bytes enter memory: the dataset read paths
(:mod:`repro.hdf5lite.dataset`) verify each block as it is loaded from
the backend — on the cached paths that is the *miss* path only, so cache
hits cost nothing extra — and raise
:class:`~repro.errors.CorruptDataError` with the file, byte offset, and
cause on mismatch.  ``File(..., verify_checksums=False)`` disables
read-side verification (measurement knob); :func:`verify_dataset`
re-checks every block explicitly for ``inspect.verify`` / ``das_inspect
--verify``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CorruptDataError, FormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdf5lite.dataset import Dataset

#: Sidecar attribute holding the flat CRC32 list.
CRC_ATTR = "repro:crc32"
#: Block size (bytes) the contiguous CRCs were computed over (0 = chunked,
#: one CRC per chunk).
CRC_BLOCK_ATTR = "repro:crc32 block"
#: Chunked datasets only: chunk keys aligned with the CRC list.
CRC_KEYS_ATTR = "repro:crc32 keys"
#: Default checksum block for contiguous datasets (matches the default
#: cache page size, so cached verification is one CRC per page miss).
DEFAULT_CHECKSUM_BLOCK = 1 << 20


@dataclass(frozen=True)
class ChecksumInfo:
    """Parsed sidecar: either per-block (contiguous) or per-chunk CRCs."""

    block_size: int  # 0 for chunked layouts
    crcs: tuple[int, ...]
    chunk_crcs: dict[str, int] | None = None

    @property
    def chunked(self) -> bool:
        return self.block_size == 0


def checksum_info(ds: "Dataset") -> ChecksumInfo | None:
    """The dataset's parsed checksum sidecar, or ``None`` when absent."""
    crcs = ds.attrs.get(CRC_ATTR)
    if crcs is None:
        return None
    block = int(ds.attrs.get(CRC_BLOCK_ATTR, 0))
    keys = ds.attrs.get(CRC_KEYS_ATTR)
    if block == 0:
        if keys is None or len(keys) != len(crcs):
            raise FormatError(
                f"{ds.path}: malformed checksum sidecar (keys/crcs mismatch)"
            )
        return ChecksumInfo(
            0,
            tuple(int(c) for c in crcs),
            {str(k): int(c) for k, c in zip(keys, crcs)},
        )
    return ChecksumInfo(block, tuple(int(c) for c in crcs))


def block_count(region_nbytes: int, block_size: int) -> int:
    return -(-region_nbytes // block_size) if region_nbytes else 0


def verify_block(
    path: str, offset: int, data: bytes, expected: int, what: str = "block"
) -> None:
    """Raise :class:`CorruptDataError` when ``data``'s CRC32 != expected."""
    actual = zlib.crc32(data) & 0xFFFFFFFF
    if actual != int(expected) & 0xFFFFFFFF:
        raise CorruptDataError(
            path,
            offset=offset,
            reason=(
                f"crc32 mismatch on {what}: stored {int(expected) & 0xFFFFFFFF:#010x}, "
                f"computed {actual:#010x}"
            ),
        )


def checksum_dataset(ds: "Dataset", block_size: int = DEFAULT_CHECKSUM_BLOCK) -> bool:
    """Compute and store the sidecar for one dataset.

    Contiguous datasets get one CRC per ``block_size`` bytes of their
    data region; chunked datasets one CRC per chunk.  Virtual datasets
    carry no local bytes — their integrity is their sources' — so they
    are skipped (returns ``False``).
    """
    from repro.hdf5lite.dataset import LAYOUT_CHUNKED, LAYOUT_CONTIGUOUS

    if block_size < 1:
        raise FormatError(f"block_size must be >= 1, got {block_size}")
    layout = ds.layout
    backend = ds._file._backend
    if layout == LAYOUT_CONTIGUOUS:
        base = int(ds._meta["offset"])
        region = ds.nbytes
        crcs = []
        for i in range(block_count(region, block_size)):
            off = i * block_size
            n = min(block_size, region - off)
            crcs.append(zlib.crc32(backend.read_at(base + off, n)) & 0xFFFFFFFF)
        ds.attrs[CRC_ATTR] = crcs
        ds.attrs[CRC_BLOCK_ATTR] = int(block_size)
        ds.attrs.pop(CRC_KEYS_ATTR, None)
        ds._file._crc_cache.pop(ds.path, None)
        return True
    if layout == LAYOUT_CHUNKED:
        keys, crcs = [], []
        for key, offset in ds._meta["chunk_index"].items():
            nbytes = _chunk_stored_nbytes(ds, key)
            crcs.append(zlib.crc32(backend.read_at(int(offset), nbytes)) & 0xFFFFFFFF)
            keys.append(key)
        ds.attrs[CRC_ATTR] = crcs
        ds.attrs[CRC_BLOCK_ATTR] = 0
        ds.attrs[CRC_KEYS_ATTR] = keys
        ds._file._crc_cache.pop(ds.path, None)
        return True
    return False  # virtual: no local bytes


def _chunk_shape(
    key: str, chunks: tuple[int, ...], shape: tuple[int, ...]
) -> tuple[int, ...]:
    """Actual (edge-clipped) shape of the chunk at grid coordinate ``key``."""
    coord = [int(c) for c in key.split(",")] if key else []
    return tuple(
        min(c, dim - ci * c) for ci, c, dim in zip(coord, chunks, shape)
    )


def _chunk_stored_nbytes(ds: "Dataset", key: str) -> int:
    """Bytes the chunk occupies *on disk* — the encoded payload size for
    codec datasets (``chunk_enc``), else shape × itemsize.  CRCs always
    cover the stored bytes, so corruption is caught before any decode."""
    enc = ds._meta.get("chunk_enc")
    if enc is not None and key in enc:
        return int(enc[key])
    chunks = ds.chunks
    if chunks is None:
        raise FormatError(f"{ds.path}: chunk {key} on a non-chunked dataset")
    return (
        int(np.prod(_chunk_shape(key, chunks, ds.shape), dtype=np.int64))
        * ds.itemsize
    )


def update_chunk_crc(ds: "Dataset", key: str, payload: bytes) -> None:
    """Refresh one chunk's sidecar CRC after a hyperslab write re-stored
    its bytes (``payload`` is exactly what went to disk — encoded bytes on
    codec datasets).  Like :func:`update_contiguous_crcs`, writers keep
    the sidecar true even when read-side verification is off."""
    crcs_attr = ds.attrs.get(CRC_ATTR)
    keys_attr = ds.attrs.get(CRC_KEYS_ATTR)
    if crcs_attr is None or keys_attr is None:
        return
    if int(ds.attrs.get(CRC_BLOCK_ATTR, 0)) != 0:
        return
    keys = [str(k) for k in keys_attr]
    crcs = [int(c) for c in crcs_attr]
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    try:
        i = keys.index(key)
    except ValueError:
        keys.append(key)
        crcs.append(crc)
        ds.attrs[CRC_KEYS_ATTR] = keys
    else:
        crcs[i] = crc
    ds.attrs[CRC_ATTR] = crcs
    ds._file._crc_cache.pop(ds.path, None)


def add_checksums(file, block_size: int = DEFAULT_CHECKSUM_BLOCK) -> int:
    """Retrofit checksums onto every dataset of an open writable file;
    returns how many datasets gained a sidecar."""
    from repro.hdf5lite.dataset import Dataset
    from repro.hdf5lite.file import Group

    count = 0

    def walk(group: Group) -> None:
        nonlocal count
        for name in group.keys():
            child = group[name]
            if isinstance(child, Dataset):
                if checksum_dataset(child, block_size=block_size):
                    count += 1
            else:
                walk(child)

    walk(file)
    return count


def verify_dataset(ds: "Dataset") -> list[tuple[int, str]]:
    """Re-check every stored block; returns ``(offset, message)`` problems
    instead of raising (the ``inspect.verify`` contract)."""
    info = checksum_info(ds)
    if info is None:
        return []
    backend = ds._file._backend
    problems: list[tuple[int, str]] = []
    if info.chunked:
        if ds.chunks is None:
            return [(0, "checksum sidecar claims chunks on a non-chunked dataset")]
        index = ds._meta.get("chunk_index", {})
        for key, expected in info.chunk_crcs.items():
            if key not in index:
                problems.append((0, f"checksummed chunk {key} missing from index"))
                continue
            offset = int(index[key])
            nbytes = _chunk_stored_nbytes(ds, key)
            try:
                verify_block(
                    ds._file.filename, offset, backend.read_at(offset, nbytes),
                    expected, what=f"chunk {key}",
                )
            except (CorruptDataError, FormatError) as exc:
                problems.append((offset, str(exc)))
        return problems
    base = int(ds._meta["offset"])
    region = ds.nbytes
    expected_blocks = block_count(region, info.block_size)
    if len(info.crcs) != expected_blocks:
        return [(base, f"checksum sidecar has {len(info.crcs)} CRCs, expected {expected_blocks}")]
    for i, expected in enumerate(info.crcs):
        off = i * info.block_size
        n = min(info.block_size, region - off)
        try:
            verify_block(
                ds._file.filename, base + off, backend.read_at(base + off, n),
                expected, what=f"block {i}",
            )
        except (CorruptDataError, FormatError) as exc:
            problems.append((base + off, str(exc)))
    return problems


def update_contiguous_crcs(ds: "Dataset", byte_lo: int, byte_hi: int) -> None:
    """Recompute the CRCs of the blocks overlapping dataset-relative byte
    range ``[byte_lo, byte_hi)`` after a hyperslab write, keeping the
    sidecar true to the new bytes."""
    info = checksum_info(ds)
    if info is None or info.chunked:
        return
    base = int(ds._meta["offset"])
    region = ds.nbytes
    backend = ds._file._backend
    crcs = list(info.crcs)
    bs = info.block_size
    first, last = byte_lo // bs, max(byte_lo, byte_hi - 1) // bs
    for i in range(first, min(last + 1, len(crcs))):
        off = i * bs
        n = min(bs, region - off)
        crcs[i] = zlib.crc32(backend.read_at(base + off, n)) & 0xFFFFFFFF
    ds.attrs[CRC_ATTR] = crcs
    ds._file._crc_cache.pop(ds.path, None)
