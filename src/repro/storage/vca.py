"""Virtually Concatenated Array (VCA) — paper §IV, Fig. 3 and Table I.

A VCA merges the per-minute files of a recording interval into one
logical ``channel x time`` array *without copying data*: only source
metadata (file names, shapes, offsets) is written.  Construction cost is
therefore a handful of metadata operations per file — the ~70 000x
construction speedup over RCA reported in Fig. 6.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.errors import StorageError
from repro.hdf5lite import File, FilePool, VirtualSource
from repro.storage.dasfile import DATASET_NAME, read_das_metadata
from repro.storage.gaps import GapMap, GapSpan
from repro.storage.metadata import DASMetadata
from repro.storage.search import DASFileInfo
from repro.utils.iostats import IOStats

VCA_DATASET = "VCA"


def create_vca(
    out_path: str | os.PathLike,
    files: Sequence[DASFileInfo | str],
    dataset: str = DATASET_NAME,
    dtype: object = np.float32,
    relative_paths: bool = True,
    assume_uniform: bool = False,
    iostats: IOStats | None = None,
) -> str:
    """Build a VCA file from per-minute DAS files (time-axis concatenation).

    Only metadata is touched — no array data moves.  By default every
    source's metadata footer is read and validated; with
    ``assume_uniform`` only the *first* file's footer is opened and the
    rest are assumed to share its shape/rate (timestamps then come from
    file names).  The uniform path is what makes VCA construction an
    O(files) in-memory operation — the paper's 0.01 s / ~70 000x-faster-
    than-RCA result (Fig. 6); shape mismatches surface at read time.
    """
    if not files:
        raise StorageError("cannot build a VCA from zero files")
    out_path = os.fspath(out_path)
    out_dir = os.path.dirname(os.path.abspath(out_path))

    paths = [f.path if isinstance(f, DASFileInfo) else os.fspath(f) for f in files]
    metas: list[DASMetadata] = []
    shapes: list[tuple[int, ...]] = []
    if assume_uniform:
        first_meta, first_shape = read_das_metadata(paths[0], iostats=iostats)
        if len(first_shape) != 2:
            raise StorageError(
                f"{paths[0]}: expected a 2-D DAS array, got {first_shape}"
            )
        from repro.storage.search import timestamp_from_filename

        for index, entry in enumerate(files):
            if isinstance(entry, DASFileInfo):
                stamp = entry.timestamp
            else:
                stamp = timestamp_from_filename(paths[index]) or first_meta.timestamp
            metas.append(
                DASMetadata(
                    sampling_frequency=first_meta.sampling_frequency,
                    spatial_resolution=first_meta.spatial_resolution,
                    timestamp=stamp,
                    n_channels=first_shape[0],
                    extras=dict(first_meta.extras) if index == 0 else {},
                )
            )
            shapes.append(first_shape)
    else:
        for path in paths:
            metadata, shape = read_das_metadata(path, iostats=iostats)
            if len(shape) != 2:
                raise StorageError(f"{path}: expected a 2-D DAS array, got {shape}")
            metas.append(metadata)
            shapes.append(shape)

    n_channels = shapes[0][0]
    fs = metas[0].sampling_frequency
    for path, metadata, shape in zip(paths, metas, shapes):
        if shape[0] != n_channels:
            raise StorageError(
                f"{path}: channel count {shape[0]} != {n_channels} of first file"
            )
        if metadata.sampling_frequency != fs:
            raise StorageError(
                f"{path}: sampling frequency {metadata.sampling_frequency} != {fs}"
            )

    total_samples = sum(shape[1] for shape in shapes)
    sources: list[VirtualSource] = []
    offset = 0
    for path, shape in zip(paths, shapes):
        ref = (
            os.path.relpath(os.path.abspath(path), out_dir)
            if relative_paths
            else os.path.abspath(path)
        )
        sources.append(
            VirtualSource(
                file=ref,
                dataset="/" + DATASET_NAME if dataset == DATASET_NAME else dataset,
                src_start=(0, 0),
                dst_start=(0, offset),
                count=shape,
            )
        )
        offset += shape[1]

    merged = DASMetadata(
        sampling_frequency=fs,
        spatial_resolution=metas[0].spatial_resolution,
        timestamp=metas[0].timestamp,
        n_channels=n_channels,
        extras=dict(metas[0].extras),
    )
    with File(out_path, "w", iostats=iostats) as f:
        f.attrs.update_many(merged.to_attrs())
        f.attrs["VCA source count"] = len(paths)
        f.attrs["VCA source timestamps"] = [m.timestamp for m in metas]
        ds = f.create_dataset(
            VCA_DATASET,
            shape=(n_channels, total_samples),
            dtype=dtype,
            virtual_sources=sources,
        )
        ds.attrs["concat axis"] = 1
    return out_path


class VCAHandle:
    """An open VCA with its merged metadata.

    ``pool`` — an optional :class:`repro.hdf5lite.FilePool`.  When given,
    both the VCA file itself and its per-minute source files are acquired
    from (and owned by) the pool, so repeated opens of the same VCA and
    repeated reads across handles stop re-opening files.  ``cache`` — an
    optional block cache (or config) for the non-pooled path; the pool
    carries its own shared cache.

    ``on_error`` selects degraded-read behaviour when a source file is
    unreadable (vanished, truncated, corrupt):

    * ``"raise"`` (default) — the typed error propagates (fail-fast).
    * ``"mask"`` — the failed source's span is filled with ``fill_value``
      and recorded in :attr:`gaps`; the source is retried on later reads
      (transient faults may clear).
    * ``"skip"`` — like ``"mask"``, but the source is additionally
      blacklisted: later reads fill its span without touching the file.

    :attr:`gaps` is a :class:`repro.storage.gaps.GapMap` of masked spans
    in absolute VCA sample coordinates — callers that accept a degraded
    result must consult it.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        iostats: IOStats | None = None,
        pool: "FilePool | None" = None,
        cache: object = None,
        on_error: str = "raise",
        fill_value: float = float("nan"),
    ):
        if on_error not in ("raise", "mask", "skip"):
            raise StorageError(
                f"on_error must be 'raise', 'mask' or 'skip', got {on_error!r}"
            )
        self.path = os.fspath(path)
        self.on_error = on_error
        self.fill_value = fill_value
        self.gaps = GapMap()
        self._skipped: set[str] = set()
        self._installed = False
        if pool is not None:
            self._file = pool.acquire(self.path, iostats=iostats)
            self._owns_file = False
        else:
            self._file = File(self.path, "r", iostats=iostats, cache=cache)
            self._owns_file = True
        try:
            self.metadata = DASMetadata.from_attrs(
                {
                    k: v
                    for k, v in self._file.attrs.items()
                    if not k.startswith("VCA ")
                }
            )
            self.dataset = self._file.dataset(VCA_DATASET)
        except (StorageError, KeyError):
            self.close()
            raise StorageError(f"{self.path!r} is not a VCA file") from None
        if on_error != "raise":
            self._file.on_source_error = self._handle_source_error
            self._file.source_fill = fill_value
            self._installed = True

    def _handle_source_error(self, source, overlap, exc) -> float:
        """Degraded-read hook: record the loss, optionally blacklist the
        source, and return the fill value that masks its span."""
        self.gaps.add(
            GapSpan(
                source=source.file,
                t0=int(overlap.start[1]),
                t1=int(overlap.start[1] + overlap.count[1]),
                reason=f"{type(exc).__name__}: {exc}",
            )
        )
        if self.on_error == "skip":
            self._file.skip_sources.add(source.file)
            self._skipped.add(source.file)
        return self.fill_value

    @property
    def shape(self) -> tuple[int, ...]:
        return self.dataset.shape

    @property
    def itemsize(self) -> int:
        return self.dataset.itemsize

    @property
    def sources(self):
        return self.dataset.virtual_sources

    @property
    def source_timestamps(self) -> list[str]:
        return list(self._file.attrs.get("VCA source timestamps", []))

    def source_paths(self) -> list[str]:
        """Absolute paths of the backing per-minute files."""
        base = os.path.dirname(os.path.abspath(self.path))
        out = []
        for src in self.sources:
            path = src.file
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(base, path))
            out.append(path)
        return out

    def close(self) -> None:
        """Close the handle (a pooled file stays open, owned by the pool).

        Degraded-read state installed on the underlying file (the error
        handler and any blacklisted sources) is removed so a pooled handle
        returns to fail-fast for its next user.
        """
        if self._installed:
            self._file.on_source_error = None
            self._file.source_fill = None
            for src in self._skipped:
                self._file.skip_sources.discard(src)
            self._skipped.clear()
            self._installed = False
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "VCAHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_vca(
    path: str | os.PathLike,
    iostats: IOStats | None = None,
    pool: "FilePool | None" = None,
    cache: object = None,
    on_error: str = "raise",
    fill_value: float = float("nan"),
) -> VCAHandle:
    """Open a VCA file.

    ``on_error="mask"``/``"skip"`` turn unreadable sources into
    fill-valued spans recorded on the handle's :attr:`~VCAHandle.gaps`
    instead of raising (see :class:`VCAHandle`).
    """
    return VCAHandle(
        path,
        iostats=iostats,
        pool=pool,
        cache=cache,
        on_error=on_error,
        fill_value=fill_value,
    )
