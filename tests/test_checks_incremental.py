"""The incremental engine: cache priming, digest-driven re-analysis
scope, byte-identical replay, engine-version invalidation, SARIF
output, and the CLI's incremental-mode contract."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.checks.cache import ResultCache, engine_signature, module_digest
from repro.checks.registry import all_analyzers

ROOT = Path(__file__).resolve().parents[1]

BUGGY_A = """
    __all__ = ["save"]

    def save(path, payload):
        with open(path, "w") as fh:
            fh.write(payload)
"""
CLEAN_B = """
    from repro.a import save

    __all__ = ["publish"]

    def publish(path, payload):
        return save(path, payload)
"""
CLEAN_C = """
    __all__ = ["standalone"]

    def standalone():
        return 42
"""


@pytest.fixture
def mini_repo(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(textwrap.dedent(BUGGY_A))
    (pkg / "b.py").write_text(textwrap.dedent(CLEAN_B))
    (pkg / "c.py").write_text(textwrap.dedent(CLEAN_C))
    return tmp_path


def run_cli(root: Path, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.checks", "--root", str(root), *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def json_doc(proc: subprocess.CompletedProcess) -> dict:
    assert proc.stdout, proc.stderr
    return json.loads(proc.stdout)


def test_full_run_primes_cache_and_incremental_replays_it(mini_repo):
    full = run_cli(mini_repo, "--json")
    assert full.returncode == 1  # the seeded ATM001 is a new finding
    assert (mini_repo / ".checks_cache.json").exists()

    incr = run_cli(mini_repo, "--changed-since", "HEAD", "--json")
    assert incr.returncode == 1
    full_doc, incr_doc = json_doc(full), json_doc(incr)
    # Unchanged tree: nothing re-analyzed, findings replay byte-for-byte.
    assert incr_doc["incremental"]["modules_reanalyzed"] == []
    assert incr_doc["incremental"]["modules_replayed"] == 3
    assert json.dumps(incr_doc["findings"]) == json.dumps(full_doc["findings"])
    assert [f["code"] for f in full_doc["findings"]] == ["ATM001"]


def test_touching_one_module_reanalyzes_it_plus_dependents(mini_repo):
    run_cli(mini_repo, "--json")
    a = mini_repo / "src" / "repro" / "a.py"
    a.write_text(a.read_text() + "\n# tweak\n")

    incr = run_cli(mini_repo, "--changed-since", "HEAD", "--json")
    doc = json_doc(incr)
    # b imports a, so it rides along; c is untouched and replays.
    assert doc["incremental"]["modules_reanalyzed"] == [
        "src/repro/a.py", "src/repro/b.py",
    ]
    assert doc["incremental"]["modules_replayed"] == 1
    assert [f["code"] for f in doc["findings"]] == ["ATM001"]


def test_fixing_the_bug_clears_the_finding_incrementally(mini_repo):
    run_cli(mini_repo, "--json")
    a = mini_repo / "src" / "repro" / "a.py"
    a.write_text(textwrap.dedent("""
        import os

        __all__ = ["save"]

        def save(path, payload):
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
    """))
    incr = run_cli(mini_repo, "--changed-since", "HEAD", "--json")
    assert incr.returncode == 0
    assert json_doc(incr)["findings"] == []


def test_engine_version_change_invalidates_cache(tmp_path):
    analyzers = all_analyzers()
    cache = ResultCache.load(tmp_path / "cache.json", analyzers)
    cache.store("src/repro/a.py", module_digest("x = 1\n"), [])
    cache.save()

    reloaded = ResultCache.load(tmp_path / "cache.json", analyzers)
    assert reloaded.fresh("src/repro/a.py", module_digest("x = 1\n"))

    # Dropping an analyzer changes the engine signature -> cold cache.
    stale = ResultCache.load(tmp_path / "cache.json", analyzers[:-1])
    assert stale.modules == {}
    assert engine_signature(analyzers) != engine_signature(analyzers[:-1])


def test_stale_digest_is_not_fresh(tmp_path):
    cache = ResultCache.load(tmp_path / "cache.json", all_analyzers())
    cache.store("src/repro/a.py", module_digest("x = 1\n"), [])
    assert not cache.fresh("src/repro/a.py", module_digest("x = 2\n"))
    assert not cache.fresh("src/repro/missing.py", module_digest(""))


def test_changed_since_rejects_filtered_runs(mini_repo):
    proc = run_cli(mini_repo, "--changed-since", "HEAD", "--only", "ATM001")
    assert proc.returncode == 2
    assert "--changed-since" in proc.stderr


def test_no_cache_skips_the_cache_file(mini_repo):
    run_cli(mini_repo, "--no-cache", "--json")
    assert not (mini_repo / ".checks_cache.json").exists()
    # Filtered runs must not poison the cache either.
    run_cli(mini_repo, "--only", "atomic-persistence", "--json")
    assert not (mini_repo / ".checks_cache.json").exists()


def test_only_accepts_individual_codes(mini_repo):
    proc = run_cli(mini_repo, "--only", "ATM001", "--json")
    assert proc.returncode == 1
    assert [f["code"] for f in json_doc(proc)["findings"]] == ["ATM001"]


def test_json_reports_per_analyzer_wall_time(mini_repo):
    doc = json_doc(run_cli(mini_repo, "--json"))
    timings = doc["timings_ms"]
    names = {a.name for a in all_analyzers()}
    assert set(timings) == names
    assert all(isinstance(ms, (int, float)) and ms >= 0 for ms in timings.values())


def test_sarif_output_shape(mini_repo):
    sarif_path = mini_repo / "report.sarif"
    proc = run_cli(mini_repo, "--sarif", str(sarif_path), "--json")
    assert proc.returncode == 1
    doc = json.loads(sarif_path.read_text())
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "ATM001" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "ATM001"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/a.py"
    assert result["partialFingerprints"]["reproChecks/v1"]
