#!/usr/bin/env bash
# CI entry point: tier-1 test suite + the cache benchmark smoke run.
#
# The smoke run asserts the cached VCA read path issues strictly fewer
# file opens and backend read requests than the uncached path, and that
# a budget-0 cache reproduces uncached behaviour byte-for-byte; it
# records its counters in BENCH_cache.json (the perf trajectory).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python benchmarks/bench_cache.py --smoke
