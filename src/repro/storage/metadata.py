"""DAS metadata model (paper Fig. 4) and timestamp utilities.

The acquisition system stamps every one-minute file with a
``yymmddhhmmss`` timestamp; ``das_search``'s range queries and VCA
ordering are driven by these stamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Any

from repro.errors import StorageError

TIMESTAMP_FORMAT = "%y%m%d%H%M%S"

#: Attribute keys, spelled exactly as in the paper's Fig. 4.
KEY_SAMPLING = "SamplingFrequency(HZ)"
KEY_SPATIAL = "SpatialResolution(m)"
KEY_TIMESTAMP = "TimeStamp(yymmddhhmmss)"
KEY_NOBJECTS = "Number of objects"


def parse_timestamp(stamp: str) -> datetime:
    """Parse a ``yymmddhhmmss`` acquisition timestamp."""
    if len(stamp) != 12 or not stamp.isdigit():
        raise StorageError(f"bad timestamp {stamp!r}: want 12 digits yymmddhhmmss")
    try:
        return datetime.strptime(stamp, TIMESTAMP_FORMAT)
    except ValueError as exc:
        raise StorageError(f"bad timestamp {stamp!r}: {exc}") from exc


def format_timestamp(when: datetime) -> str:
    """Format a datetime as ``yymmddhhmmss``."""
    return when.strftime(TIMESTAMP_FORMAT)


def timestamp_add_seconds(stamp: str, seconds: float) -> str:
    """Shift a timestamp by a number of seconds."""
    return format_timestamp(parse_timestamp(stamp) + timedelta(seconds=seconds))


@dataclass
class DASMetadata:
    """Global (file-level) DAS metadata — the first KV level of Fig. 4."""

    sampling_frequency: float = 500.0
    spatial_resolution: float = 2.0
    timestamp: str = "170620100545"
    n_channels: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sampling_frequency <= 0:
            raise StorageError("sampling frequency must be positive")
        if self.spatial_resolution <= 0:
            raise StorageError("spatial resolution must be positive")
        parse_timestamp(self.timestamp)  # validates
        if self.n_channels < 0:
            raise StorageError("channel count must be non-negative")

    @property
    def start_time(self) -> datetime:
        return parse_timestamp(self.timestamp)

    def duration_seconds(self, n_samples: int) -> float:
        """Recording length for a given per-channel sample count."""
        return n_samples / self.sampling_frequency

    def to_attrs(self) -> dict[str, Any]:
        """The attribute dict written at a DAS file's root."""
        attrs: dict[str, Any] = {
            KEY_SAMPLING: self.sampling_frequency,
            KEY_SPATIAL: self.spatial_resolution,
            KEY_TIMESTAMP: self.timestamp,
            KEY_NOBJECTS: self.n_channels,
        }
        attrs.update(self.extras)
        return attrs

    @classmethod
    def from_attrs(cls, attrs: dict[str, Any]) -> "DASMetadata":
        """Rebuild from a file's root attributes."""
        known = {KEY_SAMPLING, KEY_SPATIAL, KEY_TIMESTAMP, KEY_NOBJECTS}
        missing = known - set(attrs)
        if missing:
            raise StorageError(f"not a DAS file: missing metadata keys {sorted(missing)}")
        return cls(
            sampling_frequency=float(attrs[KEY_SAMPLING]),
            spatial_resolution=float(attrs[KEY_SPATIAL]),
            timestamp=str(attrs[KEY_TIMESTAMP]),
            n_channels=int(attrs[KEY_NOBJECTS]),
            extras={k: v for k, v in attrs.items() if k not in known},
        )
