"""Fig. 8 — MPI ArrayUDF vs Hybrid ArrayUDF (HAEE).

Paper results on the 1.9 TB / 2880-file workload, 16 cores/node:

* pure MPI runs **out of memory** at 91 nodes (the master channel is
  duplicated 16x per node);
* at mid scale pure MPI's compute is slightly faster (HAEE pays thread
  coordination);
* at 728 nodes pure MPI's read blows up (16x the I/O calls contend);
* write time is identical (one big collective array either way).

Here: (a) both engines really execute the same UDF on a scaled array
(wall-time benchmark + identical results); (b) estimate mode reproduces
the figure at paper scale.
"""

import numpy as np
import pytest

from repro.arrayudf.engine import HybridEngine, MPIEngine, WorkloadSpec
from repro.cluster import cori_haswell, laptop

WORKLOAD = WorkloadSpec(
    total_bytes=int(1.9 * 2**40),
    n_files=2880,
    master_bytes=30000 * 1440 * 2 * 8,
)


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).normal(size=(64, 400))


def udf(s):
    return (s(0, -1) + s(0, 0) + s(0, 1)) / 3


def test_fig8_mpi_engine_benchmark(benchmark, data):
    engine = MPIEngine(laptop(nodes=4, cores=4), 4, ranks_per_node=4)
    report = benchmark.pedantic(
        engine.run, args=(data, udf), kwargs={"boundary": "clamp"},
        rounds=3, iterations=1,
    )
    assert report.result.shape == data.shape


def test_fig8_hybrid_engine_benchmark(benchmark, data):
    engine = HybridEngine(laptop(nodes=4, cores=4), 4, threads_per_rank=4)
    report = benchmark.pedantic(
        engine.run, args=(data, udf), kwargs={"boundary": "clamp"},
        rounds=3, iterations=1,
    )
    assert report.result.shape == data.shape


def test_fig8_engines_agree(benchmark, data):
    def both():
        mpi = MPIEngine(laptop(nodes=4, cores=4), 4, ranks_per_node=4)
        hybrid = HybridEngine(laptop(nodes=4, cores=4), 4, threads_per_rank=4)
        a = mpi.run(data, udf, boundary="clamp").result
        b = hybrid.run(data, udf, boundary="clamp").result
        np.testing.assert_allclose(a, b)
        return a

    benchmark.pedantic(both, rounds=1, iterations=1)


def test_fig8_table(benchmark, report):
    benchmark.pedantic(_fig8_table, args=(report,), rounds=1, iterations=1)


def _fig8_table(report):
    lines = [
        "Fig. 8 - MPI ArrayUDF (16 ranks/node) vs HAEE (1 rank x 16 threads)",
        "workload: 1.9 TB, 2880 files, FFT cross-correlation vs master channel",
        "",
        f"{'nodes':>6} {'engine':<17} {'read(s)':>9} {'compute(s)':>11} "
        f"{'write(s)':>9} {'total(s)':>9} {'requests':>10}",
    ]
    table = {}
    for nodes in (91, 182, 364, 728):
        cluster = cori_haswell(nodes)
        for engine in (
            MPIEngine(cluster, nodes, ranks_per_node=16),
            HybridEngine(cluster, nodes, threads_per_rank=16),
        ):
            result = engine.estimate(WORKLOAD)
            table[(nodes, engine.name)] = result
            if result.failed:
                lines.append(f"{nodes:>6} {engine.name:<17} OUT OF MEMORY")
            else:
                lines.append(
                    f"{nodes:>6} {engine.name:<17} {result.read_time:>9.1f} "
                    f"{result.compute_time:>11.1f} {result.write_time:>9.1f} "
                    f"{result.total_time:>9.1f} {result.n_read_requests:>10,}"
                )

    # The figure's four claims:
    assert table[(91, "mpi-arrayudf")].failed is not None  # OOM at 91
    assert table[(91, "hybrid-arrayudf")].failed is None  # HAEE completes
    mid_mpi = table[(364, "mpi-arrayudf")]
    mid_hy = table[(364, "hybrid-arrayudf")]
    assert mid_mpi.compute_time < mid_hy.compute_time  # MPI's compute edge
    assert mid_mpi.write_time == pytest.approx(mid_hy.write_time, rel=0.05)
    big_mpi = table[(728, "mpi-arrayudf")]
    big_hy = table[(728, "hybrid-arrayudf")]
    assert big_mpi.read_time > 5 * big_hy.read_time  # read blow-up
    assert big_mpi.n_read_requests == 16 * big_hy.n_read_requests

    lines += [
        "",
        "paper: MPI OOMs at 91 nodes; HAEE completes everywhere;",
        "       MPI compute slightly faster mid-scale; MPI read blows up",
        "       at 728 nodes (16x the I/O calls); writes identical.",
    ]
    report("fig8_haee", lines)
