"""Wall-clock and virtual timers.

The benchmark harness reports two kinds of time:

* **wall time** — real elapsed seconds on this machine (``Timer``), and
* **virtual time** — simulated seconds charged by the machine model
  (``VirtualTimer``), which is what reproduces the paper's large-scale
  numbers on a single core.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigError


@dataclass
class Timer:
    """Accumulating wall-clock timer with named phases.

    >>> t = Timer()
    >>> with t.phase("read"):
    ...     pass
    >>> "read" in t.phases
    True
    """

    phases: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def merge(self, other: "Timer") -> None:
        for name, elapsed in other.phases.items():
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def as_dict(self) -> dict[str, float]:
        """Plain ``{phase: seconds}`` copy (JSON-ready, insertion order)."""
        return dict(self.phases)

    def report(self, width: int = 24) -> str:
        """Human-readable per-phase breakdown, longest phase first."""
        lines = [
            f"{name:<{width}} {seconds:10.4f} s"
            for name, seconds in sorted(
                self.phases.items(), key=lambda item: -item[1]
            )
        ]
        lines.append(f"{'total':<{width}} {self.total:10.4f} s")
        return "\n".join(lines)


class VirtualTimer:
    """A monotonically advancing simulated clock.

    Used per simulated MPI rank.  ``advance`` charges elapsed virtual time;
    ``synchronize`` implements the happens-before rule for message passing
    (a receive completes no earlier than the matching send completed).
    """

    __slots__ = ("_now", "phases")

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.phases: dict[str, float] = {}

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float, phase: str = "other") -> float:
        """Advance the clock by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ConfigError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds
        return self._now

    def synchronize(self, other_time: float) -> float:
        """Move the clock forward to ``other_time`` if it is in the future.

        Waiting time is *not* charged to any phase; it models idle time.
        """
        if other_time > self._now:
            self._now = other_time
        return self._now


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a one-element list filled with elapsed seconds.

    >>> with timed() as elapsed:
    ...     pass
    >>> elapsed[0] >= 0.0
    True
    """
    result = [0.0]
    start = time.perf_counter()
    try:
        yield result
    finally:
        result[0] = time.perf_counter() - start
