"""Correlation measures: ``Das_abscorr`` and cross-correlation.

``abscorr`` is the paper's similarity kernel: the absolute cosine of the
angle between two windows, ``|cos θ(c1, c2)|`` — the quantity maximised
over lags in the local-similarity detector (Algorithm 2) and applied to
spectra in the interferometry pipeline (Algorithm 3).
"""

from __future__ import annotations

import numpy as np

from repro.daslib.fft import irfft, next_fast_len, rfft

#: Tolerance below which a window is treated as all-zero (abscorr -> 0).
_EPS = 1e-300

#: Per-window dead-norm threshold: a window whose L2 norm is at or below
#: this is treated as silence (abscorr -> 0).  The threshold applies to
#: each norm individually, NOT to their product — the product of two
#: tiny-but-live norms underflows far earlier than either norm does.
_DEAD_NORM = 1e-290


def abscorr(c1: np.ndarray, c2: np.ndarray, axis: int = -1) -> np.ndarray | float:
    """Absolute correlation ``|cos θ(c1, c2)|`` along ``axis``.

    Accepts real or complex inputs (complex for spectra); broadcasting
    applies across the remaining axes.  Windows with norm <= ``1e-290``
    yield 0.0 rather than NaN so noisy-but-dead channels don't poison
    detections.
    """
    c1 = np.asarray(c1)
    c2 = np.asarray(c2)
    # Everything — the cosine AND the dead-window norms — is computed on
    # peak-rescaled windows (|cos θ| is scale-invariant) so that
    # tiny-amplitude windows don't lose precision to denormal squares:
    # ``peak * ||v/peak||`` cannot underflow, where ``sum(|v|**2)`` does
    # as soon as elements dip below ~1.5e-162.
    s1 = np.max(np.abs(c1), axis=axis, keepdims=True)
    s2 = np.max(np.abs(c2), axis=axis, keepdims=True)
    u1 = c1 / np.where(s1 > 0, s1, 1.0)
    u2 = c2 / np.where(s2 > 0, s2, 1.0)
    r1 = np.sqrt(np.sum(np.abs(u1) ** 2, axis=axis))  # in [1, sqrt(n)]
    r2 = np.sqrt(np.sum(np.abs(u2) ** 2, axis=axis))
    n1 = np.squeeze(s1, axis=axis) * r1
    n2 = np.squeeze(s2, axis=axis) * r2
    alive = (n1 > _DEAD_NORM) & (n2 > _DEAD_NORM)
    num = np.abs(np.sum(u1 * np.conj(u2), axis=axis))
    denom = r1 * r2
    safe = alive & (denom > _EPS)
    out = np.where(safe, num / np.where(safe, denom, 1.0), 0.0)
    if out.ndim == 0:
        return float(out)
    return out


def xcorr(
    a: np.ndarray, b: np.ndarray, max_lag: int | None = None, normalize: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Time-domain cross-correlation of two 1-D series via FFT.

    Returns ``(lags, values)`` with lags in ``[-max_lag, +max_lag]``
    (default: full overlap range).  With ``normalize=True`` values are
    scaled by the geometric mean of the energies (bounded by 1 for equal
    lengths).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("xcorr takes 1-D inputs")
    n = len(a) + len(b) - 1
    nfft = next_fast_len(n)
    fa = rfft(a, nfft)
    fb = rfft(b, nfft)
    cc = irfft(fa * np.conj(fb), nfft)[:n]
    # Reorder to lags -len(b)+1 .. len(a)-1.
    cc = np.concatenate([cc[-(len(b) - 1) :], cc[: len(a)]]) if len(b) > 1 else cc[: len(a)]
    lags = np.arange(-(len(b) - 1), len(a))
    if normalize:
        denom = np.sqrt(np.dot(a, a) * np.dot(b, b))
        if denom > _EPS:
            cc = cc / denom
    if max_lag is not None:
        if max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        keep = (lags >= -max_lag) & (lags <= max_lag)
        lags, cc = lags[keep], cc[keep]
    return lags, cc


def xcorr_freq(
    spec_a: np.ndarray, spec_b: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Frequency-domain cross-spectrum ``A * conj(B)`` (noise
    interferometry's correlation step, applied to whitened spectra)."""
    return np.asarray(spec_a) * np.conj(np.asarray(spec_b))
