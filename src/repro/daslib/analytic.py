"""Analytic signal (Hilbert transform) via the FFT method.

Needed by phase-weighted stacking: the instantaneous phase of each
noise-correlation trace is ``angle(hilbert(x))``.
"""

from __future__ import annotations

import numpy as np

from repro.daslib.fft import fft, ifft


def hilbert(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Analytic signal ``x + i * H(x)`` along ``axis``.

    Standard single-sided-spectrum construction: zero the negative
    frequencies, double the positive ones, keep DC (and Nyquist for even
    lengths) unscaled.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    if n == 0:
        raise ValueError("cannot take the analytic signal of an empty axis")
    spectrum = fft(x, axis=axis)
    gain = np.zeros(n)
    if n % 2 == 0:
        gain[0] = 1.0
        gain[n // 2] = 1.0
        gain[1 : n // 2] = 2.0
    else:
        gain[0] = 1.0
        gain[1 : (n + 1) // 2] = 2.0
    shape = [1] * x.ndim
    shape[axis] = n
    return ifft(spectrum * gain.reshape(shape), axis=axis)


def envelope(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Instantaneous amplitude ``|hilbert(x)|``."""
    return np.abs(hilbert(x, axis=axis))


def instantaneous_phase(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Instantaneous phase ``angle(hilbert(x))`` in radians."""
    return np.angle(hilbert(x, axis=axis))
