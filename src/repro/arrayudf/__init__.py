"""ArrayUDF — structural-locality UDF execution on distributed arrays.

Reimplements the authors' prior system (HPDC'17) that DASSA extends:

* :class:`~repro.arrayudf.stencil.Stencil` — a cell plus its
  neighbourhood, the argument every user-defined function receives,
* :mod:`repro.arrayudf.partition` — block partitioning with ghost zones
  so UDFs touching neighbours need no communication,
* :func:`~repro.arrayudf.apply.apply` — the MPI-parallel ``B =
  Apply(A, f)`` operator,
* :func:`~repro.arrayudf.apply_mt.apply_mt` — the multithreaded Apply of
  DASSA's Hybrid ArrayUDF Execution Engine (Algorithm 1),
* :func:`~repro.arrayudf.fuse.map_blocks_mt` — the same static-schedule
  threading for whole fused operator chains (the streaming executor's
  per-chunk parallelism),
* :class:`~repro.arrayudf.engine.HybridEngine` — HAEE: one rank per
  node + threads, versus :class:`~repro.arrayudf.engine.MPIEngine`:
  one rank per core (the Fig. 8 comparison).
"""

from repro.arrayudf.apply import apply
from repro.arrayudf.apply_mt import apply_mt
from repro.arrayudf.engine import EngineReport, HybridEngine, MPIEngine
from repro.arrayudf.fuse import map_blocks_mt, partition_row_blocks
from repro.arrayudf.ghost import exchange_halos
from repro.arrayudf.partition import Partition, partition_1d, partition_rows
from repro.arrayudf.stencil import Stencil

__all__ = [
    "Stencil",
    "Partition",
    "partition_1d",
    "partition_rows",
    "apply",
    "apply_mt",
    "map_blocks_mt",
    "partition_row_blocks",
    "exchange_halos",
    "MPIEngine",
    "HybridEngine",
    "EngineReport",
]
