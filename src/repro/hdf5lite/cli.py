"""``das_inspect`` — list and verify hdf5lite files from the shell.

Examples::

    das_inspect data/westSac_170620100545.h5
    das_inspect --attrs merged_vca.h5
    das_inspect --verify merged_vca.h5     # exit code 1 if damaged
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import FormatError
from repro.hdf5lite.file import File
from repro.hdf5lite.inspect import describe, verify


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das_inspect", description="List or verify hdf5lite/DAS files."
    )
    parser.add_argument("files", nargs="+", help="files to inspect")
    parser.add_argument(
        "-a", "--attrs", action="store_true", help="also print attributes"
    )
    parser.add_argument(
        "-v",
        "--verify",
        action="store_true",
        help="run integrity checks; non-zero exit if problems are found",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    status = 0
    for path in args.files:
        try:
            with File(path, "r") as f:
                print(describe(f, attrs=args.attrs))
                if args.verify:
                    problems = verify(f)
                    if problems:
                        status = 1
                        for problem in problems:
                            print(f"  PROBLEM {problem}", file=sys.stderr)
                    else:
                        print("  integrity: ok")
        except (FormatError, OSError) as exc:
            print(f"das_inspect: {path}: {exc}", file=sys.stderr)
            status = 2
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
