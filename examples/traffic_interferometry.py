#!/usr/bin/env python
"""Traffic-noise interferometry (paper Algorithm 3, after Dou et al. 2017).

Builds a noise field containing a common wave travelling along the fiber,
runs the interferometry pipeline (detrend → bandpass → resample → FFT →
cross-correlate with a master channel), and shows that the noise
correlation functions recover the inter-channel travel time — the
empirical Green's function used for shallow-subsurface imaging.

Run:  python examples/traffic_interferometry.py
"""

import numpy as np

from repro.core.interferometry import (
    InterferometryConfig,
    noise_correlation_functions,
    streamed_interferometry,
)

FS = 100.0
CHANNELS = 24
SECONDS = 120.0
CHANNEL_SPACING = 2.0  # metres
VELOCITY = 40.0  # m/s surface-wave speed between channels


def build_noise_field(rng: np.random.Generator) -> np.ndarray:
    """Ambient noise plus a common wavefield propagating along the fiber
    at VELOCITY (each channel sees it delayed by distance/velocity)."""
    n = int(SECONDS * FS)
    common = rng.normal(size=n)
    data = np.empty((CHANNELS, n))
    for channel in range(CHANNELS):
        delay = int(round(channel * CHANNEL_SPACING / VELOCITY * FS))
        data[channel] = np.roll(common, delay) + 0.5 * rng.normal(size=n)
    return data


def main() -> None:
    rng = np.random.default_rng(7)
    print(f"building {CHANNELS}-channel noise field ({SECONDS:.0f} s at {FS:.0f} Hz)")
    data = build_noise_field(rng)

    config = InterferometryConfig(
        fs=FS, band=(1.0, 12.0), resample_q=2, master_channel=0, whiten_spectra=True
    )

    # Stream Algorithm 3 through the chunked executor: 30-second blocks
    # flow through detrend → taper → filtfilt → resample into the FFT
    # accumulation sink, so only the decimated record is ever resident.
    result = streamed_interferometry(
        data, config, chunk_samples=int(30 * FS), threads=4
    )
    corr = result.output
    profile = result.profile
    print(
        f"\nstreamed in {profile.n_chunks} chunks; peak resident "
        f"{profile.peak_resident_bytes / 1e6:.2f} MB vs "
        f"{data.nbytes / 1e6:.2f} MB whole array; stage seconds: "
        + ", ".join(f"{k}={v:.3f}" for k, v in profile.phases.items())
    )
    print("\nAlgorithm 3 output - |corr(channel, master)| per channel:")
    for channel in range(0, CHANNELS, 4):
        bar = "#" * int(corr[channel] * 40)
        print(f"  ch {channel:3d}: {corr[channel]:.3f} {bar}")

    print("\nnoise correlation functions (virtual shot gather):")
    lags, ncfs = noise_correlation_functions(data, config, max_lag_seconds=3.0)
    print(f"{'channel':<8} {'distance (m)':<14} {'peak lag (s)':<14} {'expected (s)'}")
    errors = []
    for channel in range(1, CHANNELS, 3):
        peak_lag = lags[np.argmax(np.abs(ncfs[channel]))]
        expected = channel * CHANNEL_SPACING / VELOCITY
        errors.append(abs(peak_lag - expected))
        print(f"{channel:<8} {channel * CHANNEL_SPACING:<14.0f} "
              f"{peak_lag:<14.2f} {expected:.2f}")
    print(f"\nmean |peak - expected| = {np.mean(errors):.3f} s "
          f"(moveout recovered: the EGF carries the travel time)")


if __name__ == "__main__":
    main()
