"""The checks suite run against the repository itself, plus the CLI.

The self-run is the real contract: ``src/repro`` (and benchmarks/,
examples/ under the relaxed rules) must be clean modulo the committed
baseline, so any new finding fails CI the same way a failing test does.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checks.baseline import Baseline
from repro.checks.runner import load_project, run_analyzers

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = ROOT / "tests" / "fixtures" / "checks"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.checks", "--root", str(ROOT), *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def test_repo_is_clean_modulo_baseline():
    project = load_project(ROOT)
    findings = run_analyzers(project)
    baseline = Baseline.load(ROOT / "scripts" / "checks_baseline.json")
    new, baselined = baseline.split(findings)
    assert new == [], "\n".join(f.format() for f in new)
    assert baselined, "the committed waivers should be exercised"


def test_cli_clean_run_exits_zero():
    proc = run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


def test_cli_json_is_stable_and_sorted():
    first = run_cli("--json")
    second = run_cli("--json")
    assert first.returncode == 0
    doc_one = json.loads(first.stdout)
    doc_two = json.loads(second.stdout)
    # Wall times vary run to run; everything else must be byte-stable.
    timings = doc_one.pop("timings_ms")
    doc_two.pop("timings_ms")
    assert doc_one == doc_two
    assert timings and all(ms >= 0 for ms in timings.values())
    assert doc_one["findings"] == []
    assert doc_one["baselined"] > 0
    assert doc_one["modules_scanned"] > 100


def test_cli_json_findings_sorted_without_baseline():
    proc = run_cli("--json", "--no-baseline")
    assert proc.returncode == 1
    document = json.loads(proc.stdout)
    keys = [
        (f["path"], f["line"], f["code"], f["message"])
        for f in document["findings"]
    ]
    assert keys == sorted(keys)
    assert all(
        set(f) >= {"code", "rule", "path", "line", "message", "fingerprint"}
        for f in document["findings"]
    )


@pytest.mark.parametrize("name", [
    "locks_bad.py", "taxonomy_bad.py", "contracts_bad.py", "api_bad.py",
])
def test_cli_bad_fixture_exits_nonzero(name):
    proc = run_cli(str(FIXTURES / name))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert proc.stdout.strip()


@pytest.mark.parametrize("name", [
    "locks_good.py", "taxonomy_good.py", "contracts_good.py", "api_good.py",
])
def test_cli_good_fixture_exits_zero(name):
    proc = run_cli(str(FIXTURES / name))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_only_selects_one_family():
    proc = run_cli(str(FIXTURES / "locks_bad.py"), "--only", "exception-taxonomy")
    assert proc.returncode == 0  # no taxonomy findings in the locks fixture


def test_cli_unknown_rule_is_usage_error():
    proc = run_cli("--only", "NOPE001")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("LCK001", "TAX002", "OPC007", "API003"):
        assert code in proc.stdout


def test_faultcheck_shim_delegates():
    proc = subprocess.run(
        ["bash", str(ROOT / "scripts" / "faultcheck.sh")],
        capture_output=True, text=True, cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro.checks" in proc.stdout
