"""DataServer/ServeSession: windows, previews, events, degraded reads.

The contract under test (``repro.serve.server``):

* ``read_window`` is bit-exact to slicing the raw record —
  ``raw[lo:hi, t0:t1][:, ::step]`` — because the request lowers through
  the planner onto a :class:`~repro.storage.chunks.WindowSource`;
* ``preview`` served from a stored pyramid level is pixel-identical to
  the raw-path computation when the pixel pitch aligns with the level's
  factor (both emit on the absolute lattice ``j * factor``);
* a vanished minute degrades, never errors: NaN spans in window data,
  clipped :class:`~repro.storage.gaps.GapSpan` rows in the result, and
  masked preview pixels;
* every request admits first — quota rejections are the typed taxonomy
  errors and land in the tenant's metrics.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.detection import DetectedEvent
from repro.errors import QuotaExceededError, ServeError
from repro.hdf5lite import File
from repro.rt.events import EventSink, SeamEvent
from repro.serve import (
    DataServer,
    PyramidConfig,
    ServeConfig,
    TenantQuota,
    build_pyramid,
    level_slice,
)
from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.storage.vca import create_vca

N_CHANNELS = 8
MINUTES = 3
SPM = 600  # samples per minute-file
FS = 10.0


def make_vca(root: str, seed: int = 7):
    rng = np.random.default_rng(seed)
    stamp = "170620100545"
    paths = []
    for _ in range(MINUTES):
        block = rng.normal(size=(N_CHANNELS, SPM)).astype(np.float32)
        path = os.path.join(root, das_filename(stamp))
        write_das_file(
            path,
            block,
            DASMetadata(
                sampling_frequency=FS,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=N_CHANNELS,
            ),
            channel_groups=False,
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    return create_vca(os.path.join(root, "arch.h5"), paths), paths


@pytest.fixture()
def archive(tmp_path):
    vca, paths = make_vca(str(tmp_path))
    build_pyramid(vca, PyramidConfig(factor=4, min_samples=32))
    return vca, paths


def raw_record(vca: str) -> np.ndarray:
    with File(vca, "r") as f:
        return np.asarray(f["VCA"][:, :], dtype=np.float64)


# -- windows -----------------------------------------------------------------

def test_read_window_bit_exact_vs_raw_slice(archive):
    vca, _ = archive
    raw = raw_record(vca)
    with DataServer(vca) as server:
        session = server.session("viewer")
        for (t0, t1), channels, step in [
            ((0, raw.shape[1]), None, 1),
            ((100, 700), (2, 6), 3),
            ((599, 601), (0, 1), 1),  # straddles a file seam
            ((37, 1788), (1, 7), 7),
        ]:
            result = session.read_window(t0, t1, channels=channels, step=step)
            lo, hi = channels if channels else (0, N_CHANNELS)
            np.testing.assert_array_equal(
                result.data, raw[lo:hi, t0:t1][:, ::step]
            )
            assert (result.t0, result.t1, result.step) == (t0, t1, step)
            assert (result.channel_lo, result.channel_hi) == (lo, hi)
            assert result.gaps == []
            assert result.waited_s >= 0.0


def test_read_window_validates(archive):
    vca, _ = archive
    with DataServer(vca) as server:
        session = server.session("viewer")
        with pytest.raises(ServeError):
            session.read_window(-1, 10)
        with pytest.raises(ServeError):
            session.read_window(0, 10_000_000)
        with pytest.raises(ServeError):
            session.read_window(10, 10)
        with pytest.raises(ServeError):
            session.read_window(0, 10, channels=(5, 3))
        with pytest.raises(ServeError):
            session.read_window(0, 10, step=0)


# -- previews ----------------------------------------------------------------

def test_preview_pyramid_matches_raw_path_when_aligned(archive):
    vca, _ = archive
    n = raw_record(vca).shape[1]
    with DataServer(vca) as server:
        session = server.session("viewer")
        width = n // 16  # pixel pitch == level-2 factor: paths align
        via_pyramid = session.preview(0, n, width, channels=(1, 5))
        assert via_pyramid.level == 2 and via_pyramid.factor == 16
        via_raw = session.preview(
            0, n, width, channels=(1, 5), use_pyramid=False
        )
        assert via_raw.level is None and via_raw.factor == 16
        np.testing.assert_array_equal(via_pyramid.data, via_raw.data)
        assert not via_pyramid.mask.any()
        assert via_pyramid.data.shape == (4, -(-n // 16))


def test_preview_full_width_is_the_raw_window(archive):
    # pixel pitch 1: no level fits, no decimation — the preview *is* the
    # raw window
    vca, _ = archive
    raw = raw_record(vca)
    with DataServer(vca) as server:
        preview = server.session("v").preview(200, 500, width=300)
        assert preview.level is None and preview.factor == 1
        np.testing.assert_array_equal(preview.data, raw[:, 200:500])


def test_preview_validates_width(archive):
    vca, _ = archive
    with DataServer(vca) as server:
        with pytest.raises(ServeError):
            server.session("v").preview(0, 100, width=0)


# -- degraded reads ----------------------------------------------------------

def test_degraded_window_masks_and_reports_gaps(tmp_path):
    vca, paths = make_vca(str(tmp_path))
    os.remove(paths[1])  # the middle minute vanishes: samples [600, 1200)
    with DataServer(vca) as server:
        session = server.session("viewer")
        result = session.read_window(0, 1800)
        assert np.isnan(result.data[:, 600:1200]).all()
        assert np.isfinite(result.data[:, :600]).all()
        assert np.isfinite(result.data[:, 1200:]).all()
        assert [(g.t0, g.t1) for g in result.gaps] == [(600, 1200)]

        # a clipped view of the same gap
        result = session.read_window(500, 700)
        assert [(g.t0, g.t1) for g in result.gaps] == [(600, 700)]

        # windows clear of the gap report none
        assert session.read_window(0, 500).gaps == []


def test_degraded_pyramid_preview_masks_gap_pixels(tmp_path):
    vca, paths = make_vca(str(tmp_path))
    os.remove(paths[1])
    # build *through* the degraded source: NaN spans decimate into NaN
    # pixels at every level (build_chunk small so the FFT's chunk-wide
    # NaN contamination stays local to the gap's chunks)
    build_pyramid(
        vca,
        PyramidConfig(factor=4, min_samples=32, build_chunk=128),
        on_error="mask",
    )
    with DataServer(vca) as server:
        preview = server.session("viewer").preview(0, 1800, width=1800 // 16)
        assert preview.level == 2
        j0, j1 = level_slice(16, 600, 1200)
        assert preview.mask[:, j0:j1].all()  # gap-centred pixels masked
        assert not preview.mask[:, :10].any()  # far from the gap: clean
        assert not preview.mask[:, -10:].any()


# -- events ------------------------------------------------------------------

def _event(label: int, t_start: float, t_end: float) -> SeamEvent:
    return SeamEvent(
        event=DetectedEvent(
            label=label,
            kind="unclassified",
            channel_lo=0,
            channel_hi=3,
            t_start=t_start,
            t_end=t_end,
            peak_similarity=0.9,
            n_cells=12,
            speed_channels_per_s=0.0,
        ),
        j_start=label * 100,
        j_end=label * 100 + 5,
    )


def test_events_filtered_to_window(archive, tmp_path):
    vca, _ = archive
    log = tmp_path / "events.jsonl"
    EventSink(str(log)).emit([_event(1, 5.0, 8.0), _event(2, 100.0, 110.0)])
    with DataServer(vca, events_path=str(log)) as server:
        session = server.session("viewer")
        # raw samples / fs: [0, 500) is [0s, 50s) — only the first event
        hits = session.events(0, 500)
        assert [ev.event.label for ev in hits] == [1]
        assert [ev.event.label for ev in session.events(0, 1800)] == [1, 2]
        assert session.events(200, 500) == []  # [20s, 50s): between them


def test_events_without_catalog_is_empty(archive):
    vca, _ = archive
    with DataServer(vca) as server:
        assert server.session("viewer").events(0, 100) == []


def test_events_cache_sees_append_within_one_mtime_tick(archive, tmp_path):
    """Regression: two appends inside one mtime granularity tick must
    not serve the stale first load — freshness keys on (mtime, size)."""
    vca, _ = archive
    log = tmp_path / "events.jsonl"
    EventSink(str(log)).emit([_event(1, 5.0, 8.0)])
    with DataServer(vca, events_path=str(log)) as server:
        session = server.session("viewer")
        assert [ev.event.label for ev in session.events(0, 1800)] == [1]
        stat = os.stat(log)
        EventSink(str(log)).emit([_event(2, 9.0, 12.0)])
        # Pin the mtime back to the first append's value: the second
        # append landed "within the same tick" as far as mtime can tell.
        os.utime(log, (stat.st_atime, stat.st_mtime))
        assert [ev.event.label for ev in session.events(0, 1800)] == [1, 2]


# -- admission integration ---------------------------------------------------

def test_quota_rejection_is_typed_and_counted(archive):
    vca, _ = archive
    config = ServeConfig(
        default_quota=TenantQuota(
            requests_per_s=0.001, request_burst=1.0, max_queue=0
        )
    )
    with DataServer(vca, config=config) as server:
        session = server.session("tenant-a")
        session.read_window(0, 100, wait=False)
        with pytest.raises(QuotaExceededError) as err:
            session.read_window(0, 100, wait=False)
        assert err.value.tenant == "tenant-a"
        metrics = session.metrics()
        assert metrics["admitted"] == 1
        assert metrics["rejected_quota"] == 1
        assert metrics["latency"]["count"] == 1

        # the other tenant's bucket is untouched
        server.session("tenant-b").read_window(0, 100, wait=False)


def test_requests_reconcile_actual_backend_bytes(archive):
    """Byte-accurate admission: after each request the tenant's byte
    bucket reflects the *measured* IOStats delta, not the output-size
    estimate, and the reconciliation lands in the metrics."""
    vca, _ = archive
    with DataServer(vca) as server:
        session = server.session("viewer")
        session.read_window(100, 700, channels=(2, 6), step=3)
        metrics = session.metrics()
        assert metrics["reconciled"] == 1
        assert metrics["bytes_actual"] > 0
        session.preview(0, 1800, width=64)
        metrics = session.metrics()
        assert metrics["reconciled"] == 2
        # The strided, channel-selected window's backend traffic differs
        # from the dense-output estimate; the settled totals record what
        # the backend really moved.
        assert metrics["bytes_actual"] != metrics["bytes_admitted"]


def test_closed_server_rejects_sessions(archive):
    vca, _ = archive
    server = DataServer(vca)
    server.session("viewer").read_window(0, 10)
    server.close()
    with pytest.raises(ServeError):
        server.session("late")
