"""Tests for the MPI vs Hybrid engines: geometry, memory planning (Fig. 8
OOM), estimate-mode scaling, and real execution."""

import numpy as np
import pytest

from repro.arrayudf.engine import (
    ComputeModel,
    EngineReport,
    HybridEngine,
    MPIEngine,
    WorkloadSpec,
)
from repro.cluster import cori_haswell, laptop
from repro.errors import ConfigError


def paper_workload() -> WorkloadSpec:
    """The Fig. 8 workload: 1.9 TB over 2880 files, FFT cross-correlation
    against one master channel (2 days x 500 Hz, float64 spectra)."""
    return WorkloadSpec(
        total_bytes=int(1.9 * 2**40),
        n_files=2880,
        master_bytes=30000 * 1440 * 2 * 8,
        working_multiplier=6.0,
        output_ratio=0.1,
    )


class TestComputeModel:
    def test_serial_time(self):
        model = ComputeModel(seconds_per_sample=1e-6)
        assert model.time(1e6) == pytest.approx(1.0)

    def test_threads_speed_up(self):
        model = ComputeModel(seconds_per_sample=1e-6)
        assert model.time(1e6, threads=16) < model.time(1e6) / 8

    def test_coordination_overhead(self):
        """Threads are slightly worse than perfect scaling — the effect
        that gives pure MPI its mid-scale compute edge in Fig. 8."""
        model = ComputeModel(seconds_per_sample=1e-6, thread_coordination=0.05)
        ideal = model.time(1e6) / 16
        assert model.time(1e6, threads=16) > ideal

    def test_invalid(self):
        with pytest.raises(ConfigError):
            ComputeModel().time(-1)
        with pytest.raises(ConfigError):
            ComputeModel().time(10, threads=0)


class TestGeometry:
    def test_mpi_engine_defaults(self):
        engine = MPIEngine(cori_haswell(91), 91, ranks_per_node=16)
        assert engine.ranks == 91 * 16
        assert engine.threads_per_rank == 1

    def test_hybrid_engine_defaults(self):
        engine = HybridEngine(cori_haswell(91), 91, threads_per_rank=16)
        assert engine.ranks == 91
        assert engine.threads_per_rank == 16

    def test_core_budget_enforced(self):
        with pytest.raises(ConfigError):
            MPIEngine(cori_haswell(4), 4, ranks_per_node=64)
        with pytest.raises(ConfigError):
            HybridEngine(cori_haswell(4), 4, threads_per_rank=64)

    def test_too_many_nodes(self):
        with pytest.raises(ConfigError):
            MPIEngine(cori_haswell(4), 8)

    def test_cores_used(self):
        report = EngineReport("x", nodes=91, ranks_per_node=1, threads_per_rank=16)
        assert report.cores_used == 1456


class TestFig8Memory:
    def test_pure_mpi_oom_at_91_nodes(self):
        """The paper's Fig. 8 headline: pure MPI runs out of memory at 91
        nodes (16 ranks/node duplicate the master channel and inflate the
        working set); HAEE completes."""
        workload = paper_workload()
        mpi = MPIEngine(cori_haswell(91), 91, ranks_per_node=16)
        hybrid = HybridEngine(cori_haswell(91), 91, threads_per_rank=16)
        assert mpi.estimate(workload).failed is not None
        assert "memory" in mpi.estimate(workload).failed
        assert hybrid.estimate(workload).failed is None

    def test_pure_mpi_recovers_at_larger_scale(self):
        """With more nodes the per-node block shrinks and pure MPI fits —
        matching Fig. 8 where MPI ArrayUDF runs at 182-728 nodes."""
        workload = paper_workload()
        mpi = MPIEngine(cori_haswell(182), 182, ranks_per_node=16)
        assert mpi.estimate(workload).failed is None

    def test_hybrid_peak_below_mpi_peak(self):
        workload = paper_workload()
        nodes = 182
        mpi = MPIEngine(cori_haswell(nodes), nodes, ranks_per_node=16).estimate(workload)
        hybrid = HybridEngine(cori_haswell(nodes), nodes, threads_per_rank=16).estimate(
            workload
        )
        assert hybrid.peak_node_bytes < mpi.peak_node_bytes


class TestFig8Timing:
    def test_hybrid_issues_16x_fewer_requests(self):
        workload = paper_workload()
        nodes = 364
        mpi = MPIEngine(cori_haswell(nodes), nodes, ranks_per_node=16).estimate(workload)
        hybrid = HybridEngine(cori_haswell(nodes), nodes, threads_per_rank=16).estimate(
            workload
        )
        assert mpi.n_read_requests == 16 * hybrid.n_read_requests

    def test_mpi_read_blows_up_at_728_nodes(self):
        """Fig. 8: at 728 nodes the 11648 MPI ranks' simultaneous I/O
        calls contend; HAEE's read stays moderate."""
        workload = paper_workload()
        nodes = 728
        mpi = MPIEngine(cori_haswell(nodes), nodes, ranks_per_node=16).estimate(workload)
        hybrid = HybridEngine(cori_haswell(nodes), nodes, threads_per_rank=16).estimate(
            workload
        )
        assert mpi.read_time > 5 * hybrid.read_time

    def test_mpi_compute_slightly_faster_midscale(self):
        """Fig. 8: 'the original ArrayUDF shows certain performance
        benefits because of the coordination overhead of multiple threads
        in HAEE'."""
        workload = paper_workload()
        nodes = 364
        mpi = MPIEngine(cori_haswell(nodes), nodes, ranks_per_node=16).estimate(workload)
        hybrid = HybridEngine(cori_haswell(nodes), nodes, threads_per_rank=16).estimate(
            workload
        )
        assert mpi.compute_time < hybrid.compute_time
        assert hybrid.compute_time < 1.2 * mpi.compute_time

    def test_write_time_identical(self):
        """Fig. 8: 'HAEE and original ArrayUDF have the same performance
        in writing'."""
        workload = paper_workload()
        nodes = 364
        mpi = MPIEngine(cori_haswell(nodes), nodes, ranks_per_node=16).estimate(workload)
        hybrid = HybridEngine(cori_haswell(nodes), nodes, threads_per_rank=16).estimate(
            workload
        )
        assert mpi.write_time == pytest.approx(hybrid.write_time, rel=0.05)

    def test_hybrid_total_wins_at_extremes(self):
        workload = paper_workload()
        hybrid_91 = HybridEngine(cori_haswell(91), 91, threads_per_rank=16).estimate(
            workload
        )
        assert hybrid_91.failed is None and hybrid_91.total_time > 0
        mpi_728 = MPIEngine(cori_haswell(728), 728, ranks_per_node=16).estimate(workload)
        hybrid_728 = HybridEngine(cori_haswell(728), 728, threads_per_rank=16).estimate(
            workload
        )
        assert hybrid_728.total_time < mpi_728.total_time

    def test_summary_strings(self):
        workload = paper_workload()
        ok = HybridEngine(cori_haswell(364), 364, threads_per_rank=16).estimate(workload)
        assert "read=" in ok.summary()
        bad = MPIEngine(cori_haswell(91), 91, ranks_per_node=16).estimate(workload)
        assert "FAILED" in bad.summary()


class TestRealExecution:
    def test_engines_compute_identical_results(self):
        data = np.random.default_rng(0).normal(size=(32, 40))
        udf = lambda s: (s(0, -1) + s(0, 0) + s(0, 1)) / 3  # noqa: E731
        cluster = laptop(nodes=4, cores=4)
        mpi = MPIEngine(cluster, 4, ranks_per_node=2)
        hybrid = HybridEngine(cluster, 4, threads_per_rank=3)
        out_mpi = mpi.run(data, udf, boundary="clamp").result
        out_hybrid = hybrid.run(data, udf, boundary="clamp").result
        np.testing.assert_allclose(out_mpi, out_hybrid)
        expected = np.empty_like(data)
        padded = np.pad(data, ((0, 0), (1, 1)), mode="edge")
        expected = (padded[:, :-2] + padded[:, 1:-1] + padded[:, 2:]) / 3
        np.testing.assert_allclose(out_mpi, expected)

    def test_halo_allows_cross_rank_stencils(self):
        """A vertical (cross-channel) stencil needs ghost rows; results
        must match the single-block reference exactly at partition
        boundaries."""
        data = np.random.default_rng(1).normal(size=(24, 10))
        udf = lambda s: s(-1, 0) + s(1, 0)  # noqa: E731
        cluster = laptop(nodes=4, cores=2)
        engine = MPIEngine(cluster, 4, ranks_per_node=1)
        out = engine.run(data, udf, halo=1, boundary="clamp").result
        padded = np.pad(data, ((1, 1), (0, 0)), mode="edge")
        expected = padded[:-2, :] + padded[2:, :]
        np.testing.assert_allclose(out, expected)

    def test_report_phases_populated(self):
        data = np.ones((8, 8))
        engine = HybridEngine(laptop(nodes=2, cores=2), 2, threads_per_rank=2)
        report = engine.run(data, lambda s: s.value())
        assert report.read_time > 0
        assert report.compute_time > 0

    def test_non_2d_rejected(self):
        engine = MPIEngine(laptop(), 1, ranks_per_node=1)
        with pytest.raises(ConfigError):
            engine.run(np.zeros(5), lambda s: 0.0)
