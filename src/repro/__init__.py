"""repro — reproduction of DASSA (IPDPS 2020).

DASSA is a parallel framework for Distributed Acoustic Sensing (DAS) data
storage and analysis on HPC systems.  This package reimplements the full
system described in the paper:

* :mod:`repro.hdf5lite` — hierarchical array file format (HDF5 substitute)
* :mod:`repro.simmpi` — simulated MPI runtime with virtual clocks
* :mod:`repro.cluster` — machine model (Cori-like nodes, network, Lustre)
* :mod:`repro.storage` — DASS storage engine (das_search, VCA/RCA/LAV,
  collective-per-file and communication-avoiding parallel readers)
* :mod:`repro.daslib` — DasLib DSP library (Table II of the paper)
* :mod:`repro.arrayudf` — ArrayUDF with Stencil/Apply and the hybrid
  ApplyMT engine (HAEE, Algorithm 1)
* :mod:`repro.core` — the DASSA facade and the two case-study pipelines
  (local similarity, Algorithm 2; traffic-noise interferometry, Algorithm 3)
* :mod:`repro.synthetic` — synthetic DAS data generator

Quickstart::

    from repro import DASSA
    from repro.synthetic import generate_dataset

    files = generate_dataset("data/", minutes=6, channels=256)
    dassa = DASSA()
    vca = dassa.search_and_merge("data/", start="170620100545", count=6)
    result = dassa.local_similarity(vca)
"""

from repro._version import __version__
from repro.errors import (
    AdmissionQueueFullError,
    ConfigError,
    FormatError,
    MPIError,
    OutOfMemoryError,
    QuotaExceededError,
    ReproError,
    SelectionError,
    ServeError,
    StorageError,
    UDFError,
)

def __getattr__(name: str):
    # Deferred import: keeps `import repro` cheap and avoids pulling the
    # full framework in for users who only want a substrate package.
    if name == "DASSA":
        from repro.core.framework import DASSA

        return DASSA
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "DASSA",
    "__version__",
    "ReproError",
    "FormatError",
    "SelectionError",
    "StorageError",
    "MPIError",
    "OutOfMemoryError",
    "UDFError",
    "ConfigError",
    "ServeError",
    "QuotaExceededError",
    "AdmissionQueueFullError",
]
