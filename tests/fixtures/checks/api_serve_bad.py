"""Checks fixture: layer-direction violations against ``serve``.

Scanned under a ``src/repro/rt/...`` rel the import is an API003
(rt rank 7 importing serve rank 8 — a higher layer); under a
``src/repro/checks/...`` rel it is still an API003 (same-rank coupling:
tooling and serve both sit at rank 8 and must stay independent).
"""

from repro.serve import admission

__all__ = ["leak"]


def leak():
    return admission and 1
