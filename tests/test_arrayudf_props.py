"""Property-based tests for ArrayUDF: ApplyMT must equal sequential
Apply for arbitrary blocks, strides, core regions, and thread counts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arrayudf import apply, apply_mt, partition_rows
from repro.arrayudf.apply_mt import static_schedule


@st.composite
def blocks(draw):
    rows = draw(st.integers(1, 12))
    cols = draw(st.integers(1, 16))
    data = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(rows, cols),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    return data


UDFS = {
    "identity": lambda s: s.value(),
    "neighbour-sum-clamped": lambda s: s(0, -1) + s(0, 1),
    "row-col-mix": lambda s: s.row * 1000.0 + s.col,
}


@settings(max_examples=60, deadline=None)
@given(blocks(), st.integers(1, 9), st.sampled_from(sorted(UDFS)), st.data())
def test_apply_mt_equals_apply(block, threads, udf_name, data):
    udf = UDFS[udf_name]
    rows, cols = block.shape
    row_stride = data.draw(st.integers(1, max(1, rows)))
    col_stride = data.draw(st.integers(1, max(1, cols)))
    r_lo = data.draw(st.integers(0, rows - 1))
    r_hi = data.draw(st.integers(r_lo + 1, rows))
    seq = apply(
        block,
        udf,
        core_rows=(r_lo, r_hi),
        row_stride=row_stride,
        col_stride=col_stride,
        boundary="clamp",
    )
    par = apply_mt(
        block,
        udf,
        threads=threads,
        core_rows=(r_lo, r_hi),
        row_stride=row_stride,
        col_stride=col_stride,
        boundary="clamp",
    )
    np.testing.assert_array_equal(seq, par)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 500), st.integers(1, 32))
def test_static_schedule_partitions(n_items, n_threads):
    chunks = [static_schedule(n_items, n_threads, h) for h in range(n_threads)]
    assert chunks[0][0] == 0
    assert chunks[-1][1] == n_items
    for (a, b), (c, d) in zip(chunks, chunks[1:]):
        assert b == c
    sizes = [hi - lo for lo, hi in chunks]
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 300),
    st.integers(1, 50),
    st.integers(1, 20),
    st.integers(0, 8),
)
def test_partition_rows_invariants(rows, cols, size, halo):
    parts = [partition_rows((rows, cols), size, r, halo=halo) for r in range(size)]
    # Cores tile the rows exactly.
    assert parts[0].core_row_lo == 0
    assert parts[-1].core_row_hi == rows
    for a, b in zip(parts, parts[1:]):
        assert a.core_row_hi == b.core_row_lo
    for part in parts:
        # The read region contains the core plus at most halo on each side,
        # clipped to the array.
        assert part.read_row_lo == max(0, part.core_row_lo - halo)
        assert part.read_row_hi == min(rows, part.core_row_hi + halo)
        assert 0 <= part.core_offset <= halo
        assert part.core_offset + part.core_rows <= part.read_rows
