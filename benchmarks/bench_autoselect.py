"""Extension bench — automatic system-setting selection (paper §VIII).

The paper closes with "how to automatically select system settings,
such as the number of nodes, to run the analysis code is another topic
we will explore in future."  Built on the machine model, the planner
answers that question for the paper's own 1.9 TB workload under three
objectives.
"""

from repro.arrayudf.engine import WorkloadSpec
from repro.cluster import cori_haswell
from repro.core.planner import best_plan, plan

WORKLOAD = WorkloadSpec(
    total_bytes=int(1.9 * 2**40),
    n_files=2880,
    master_bytes=30000 * 1440 * 2 * 8,
)
NODE_COUNTS = [91, 182, 364, 728, 1456]


def test_planner_benchmark(benchmark):
    result = benchmark.pedantic(
        plan,
        args=(cori_haswell(), WORKLOAD),
        kwargs={"node_counts": NODE_COUNTS, "cores_per_node": 16},
        rounds=2,
        iterations=1,
    )
    assert any(option.feasible for option in result)


def test_planner_table(benchmark, report):
    benchmark.pedantic(_planner_table, args=(report,), rounds=1, iterations=1)


def _planner_table(report):
    lines = [
        "Extension - automatic system-setting selection (paper SS VIII)",
        "workload: 1.9 TB / 2880 files, 16 cores per node",
        "",
        f"{'objective':<12} {'engine':<17} {'nodes':>6} {'time(s)':>9} {'node-h':>8}",
    ]
    picks = {}
    for objective in ("time", "node_hours", "balanced"):
        best = best_plan(
            cori_haswell(),
            WORKLOAD,
            node_counts=NODE_COUNTS,
            cores_per_node=16,
            objective=objective,
        )
        picks[objective] = best
        lines.append(
            f"{objective:<12} {best.engine:<17} {best.nodes:>6} "
            f"{best.total_time:>9.1f} {best.node_hours:>8.2f}"
        )

    lines += ["", "all evaluated options (time objective):"]
    options = plan(
        cori_haswell(), WORKLOAD, node_counts=NODE_COUNTS, cores_per_node=16
    )
    for option in options:
        status = (
            f"{option.total_time:8.1f}s {option.node_hours:7.2f} node-h"
            if option.feasible
            else "infeasible (OOM)"
        )
        lines.append(f"  {option.engine:<17} {option.nodes:>5} nodes  {status}")
    report("planner", lines)

    # Sanity of the three answers:
    assert picks["time"].total_time <= picks["node_hours"].total_time
    assert picks["node_hours"].node_hours <= picks["time"].node_hours
    # The planner never recommends the configuration the paper saw die.
    assert not (
        picks["time"].engine == "mpi-arrayudf" and picks["time"].nodes == 91
    )
    for best in picks.values():
        assert best.feasible
