"""Cluster presets.

``cori_haswell`` approximates the machine the paper evaluated on: a Cray
XC40 with 2880 Haswell nodes (32 cores, 128 GB each), an Aries dragonfly
interconnect, and a disk-based Lustre file system (~248 OSTs on Cori's
scratch).  ``burst_buffer_cori`` swaps storage for the Cray DataWarp
burst buffer tier (§VI-E's suggested fix for the decaying I/O
efficiency).  ``laptop`` is a tiny machine for unit tests.
"""

from __future__ import annotations

from repro.cluster.machine import ClusterSpec, NodeSpec
from repro.cluster.network import NetworkModel
from repro.cluster.storage import BurstBufferModel, StorageModel


def cori_haswell(nodes: int = 2880) -> ClusterSpec:
    """The Cori Haswell partition at a given allocation size."""
    return ClusterSpec(
        nodes=nodes,
        node=NodeSpec(cores=32, memory=128 * 2**30),
        network=NetworkModel(
            latency=1.5e-6,
            bandwidth=8.0e9,
            intra_latency=3.0e-7,
            intra_bandwidth=4.0e10,
        ),
        storage=StorageModel(
            ost_count=248,
            ost_bandwidth=2.0e9,
            client_bandwidth=1.6e9,
            open_overhead=4.0e-3,
            per_request_overhead=0.8e-3,
        ),
        name="cori-haswell",
        core_flops=2.3e9,
    )


def burst_buffer_cori(nodes: int = 2880) -> ClusterSpec:
    """Cori with the DataWarp burst buffer as the storage tier."""
    spec = cori_haswell(nodes)
    return ClusterSpec(
        nodes=spec.nodes,
        node=spec.node,
        network=spec.network,
        storage=BurstBufferModel(),
        name="cori-haswell-bb",
        core_flops=spec.core_flops,
    )


def laptop(nodes: int = 1, cores: int = 4) -> ClusterSpec:
    """A small machine for tests: fast open, tiny memory."""
    return ClusterSpec(
        nodes=nodes,
        node=NodeSpec(cores=cores, memory=8 * 2**30),
        network=NetworkModel(),
        storage=StorageModel(
            ost_count=1,
            ost_bandwidth=1.0e9,
            client_bandwidth=1.0e9,
            open_overhead=1.0e-3,
            per_request_overhead=1.0e-4,
        ),
        name="laptop",
        core_flops=2.0e9,
    )
