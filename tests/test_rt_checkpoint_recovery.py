"""Corrupted/torn checkpoint recovery.

Every corruption shape — truncation at several offsets, single-bit
flips at several positions, a torn promote (primary missing, ``.prev``
present) — must be *detected* (typed ``CheckpointCorruptError``) and
fall back to the previous verifiable generation, or raise when none
verifies.  A silent resume from a wrong checkpoint is the one failure
mode none of these tests may permit."""

import json
import os

import pytest

from repro.core.local_similarity import LocalSimilarityConfig
from repro.errors import CheckpointCorruptError
from repro.faults.chaos import flip_text_byte, tear_file
from repro.rt import (
    CheckpointStore,
    DetectorConfig,
    EventPolicy,
    RTService,
    ServiceConfig,
)
from repro.rt.checkpoint import PREVIOUS_SUFFIX
from repro.synthetic.generator import drip_feed_dataset, fig1b_scene

PAYLOAD_ONE = {"files_done": [["a.h5", 600]], "sample_count": 600}
PAYLOAD_TWO = {"files_done": [["a.h5", 600], ["b.h5", 600]],
               "sample_count": 1200}


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(str(tmp_path / "ckpt.json"))


def _saved_twice(store):
    store.save(PAYLOAD_ONE)
    store.save(PAYLOAD_TWO)
    return store


class TestGenerations:
    def test_save_demotes_previous_generation(self, store):
        _saved_twice(store)
        assert os.path.exists(store.path)
        assert os.path.exists(store.previous_path)
        assert store.load()["sample_count"] == 1200
        assert store.loaded_from == "primary"
        assert store.last_error is None

    def test_clear_removes_both_generations(self, store):
        _saved_twice(store)
        store.clear()
        assert not os.path.exists(store.path)
        assert not os.path.exists(store.previous_path)
        assert store.load() is None

    def test_missing_primary_with_prev_is_torn_promote(self, store):
        _saved_twice(store)
        os.remove(store.path)
        payload = store.load()
        assert payload["sample_count"] == 600
        assert store.loaded_from == "previous"
        assert isinstance(store.last_error, CheckpointCorruptError)
        assert "torn promote" in store.last_error.reason


class TestTruncation:
    @pytest.mark.parametrize("keep_fraction", [0.0, 0.25, 0.5, 0.9])
    def test_torn_primary_falls_back_to_prev(self, store, keep_fraction):
        _saved_twice(store)
        tear_file(store.path, keep_fraction=keep_fraction)
        payload = store.load()
        # Never the torn state, always the previous verified one.
        assert payload["sample_count"] == 600
        assert store.loaded_from == "previous"
        assert isinstance(store.last_error, CheckpointCorruptError)
        assert store.last_error.path == store.path

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.5, 0.9])
    def test_torn_only_generation_raises(self, store, keep_fraction):
        store.save(PAYLOAD_ONE)
        tear_file(store.path, keep_fraction=keep_fraction)
        with pytest.raises(CheckpointCorruptError):
            store.load()

    def test_both_generations_torn_raises(self, store):
        _saved_twice(store)
        tear_file(store.path, keep_fraction=0.5)
        tear_file(store.previous_path, keep_fraction=0.5)
        with pytest.raises(CheckpointCorruptError):
            store.load()


class TestBitFlips:
    @pytest.mark.parametrize("seed", range(8))
    def test_flipped_primary_never_loads_silently(self, store, seed):
        _saved_twice(store)
        original = open(store.path, encoding="utf-8").read()
        flip_text_byte(store.path, seed=seed)
        assert open(store.path, encoding="utf-8").read() != original
        try:
            payload = store.load()
        except CheckpointCorruptError:
            return  # both generations damaged is impossible here; ok
        # Either the flip landed somewhere harmless enough that the
        # document still verifies byte-for-byte semantics (impossible:
        # CRC covers the whole canonical body), or we fell back.
        assert store.loaded_from == "previous"
        assert payload["sample_count"] == 600
        assert isinstance(store.last_error, CheckpointCorruptError)

    def test_crc_mismatch_reason_for_parseable_mutation(self, store):
        store.save(PAYLOAD_TWO)
        with open(store.path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["sample_count"] = 999  # parseable, semantically wrong
        with open(store.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointCorruptError, match="crc mismatch"):
            store.load()

    def test_wrong_version_rejected(self, store):
        store.save(PAYLOAD_ONE)
        with open(store.path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["version"] = 99
        with open(store.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointCorruptError, match="version"):
            store.load()

    def test_legacy_document_without_crc_loads(self, store):
        # Pre-CRC checkpoints must stay loadable (unverified).
        document = {"version": 1, **PAYLOAD_ONE}
        with open(store.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert store.load()["sample_count"] == 600
        assert store.loaded_from == "primary"


# ---------------------------------------------------------------------------
# service-level recovery
# ---------------------------------------------------------------------------

FS = 50.0
CHANNELS = 48
MINUTES = 3
SPM = 600
SIM = LocalSimilarityConfig(
    half_window=25, channel_offset=1, half_lag=5, stride=25
)
DETECTOR = DetectorConfig(band=(0.5, 12.0), similarity=SIM)
POLICY = EventPolicy(threshold=0.4, min_fraction=0.25)
CFG = ServiceConfig(
    poll_interval=0.0, settle_seconds=0.0, stable_polls=1,
    checkpoint_every=1, max_retries=2, queue_capacity=1,
    update_catalog=False,
)


def _spool(tmp_path):
    scene = fig1b_scene(
        n_channels=CHANNELS, fs=FS, minutes=MINUTES,
        samples_per_minute=SPM, seed=7,
    )
    spool = tmp_path / "spool"
    spool.mkdir()
    list(drip_feed_dataset(spool, MINUTES, scene=scene,
                           samples_per_minute=SPM))
    return str(spool)


def _reference_keys(spool):
    ref = RTService(spool + "-ref", detector=DETECTOR, policy=POLICY,
                    config=CFG)
    # same scene, separate state
    import shutil

    os.makedirs(spool + "-ref", exist_ok=True)
    for name in sorted(os.listdir(spool)):
        if name.endswith(".h5"):
            shutil.copy(os.path.join(spool, name),
                        os.path.join(spool + "-ref", name))
    ref = RTService(spool + "-ref", detector=DETECTOR, policy=POLICY,
                    config=CFG)
    ref.drain()
    ref.flush()
    return {(r, e.j_start, e.j_end) for r, e in ref.sink.load_records()}


class TestServiceRecovery:
    def test_torn_primary_resumes_from_prev_and_matches(self, tmp_path):
        spool = _spool(tmp_path)
        expected = _reference_keys(spool)
        service = RTService(spool, detector=DETECTOR, policy=POLICY,
                            config=CFG)
        service.tick()
        service.tick()  # two checkpoints -> .prev exists
        ckpt = service.checkpoints.path
        del service  # SIGKILL stand-in
        tear_file(ckpt, keep_fraction=0.5)
        resumed = RTService(spool, detector=DETECTOR, policy=POLICY,
                            config=CFG)
        # The fallback is surfaced as a typed reason, not silent.
        assert resumed.checkpoint_fallback is not None
        assert resumed.checkpoints.loaded_from == "previous"
        resumed.drain()
        resumed.flush()
        got = {(r, e.j_start, e.j_end)
               for r, e in resumed.sink.load_records()}
        assert got == expected

    def test_total_corruption_starts_fresh_with_typed_reason(self, tmp_path):
        spool = _spool(tmp_path)
        expected = _reference_keys(spool)
        service = RTService(spool, detector=DETECTOR, policy=POLICY,
                            config=CFG)
        service.tick()  # exactly one generation
        ckpt = service.checkpoints.path
        del service
        tear_file(ckpt, keep_fraction=0.5)
        assert not os.path.exists(ckpt + PREVIOUS_SUFFIX)
        resumed = RTService(spool, detector=DETECTOR, policy=POLICY,
                            config=CFG)
        # No verifiable generation: never a silent wrong resume — the
        # service records the typed failure and replays from scratch,
        # relying on sink dedup for exactly-once events.
        assert resumed.checkpoint_fallback is not None
        assert "torn json" in resumed.checkpoint_fallback
        resumed.drain()
        resumed.flush()
        got = {(r, e.j_start, e.j_end)
               for r, e in resumed.sink.load_records()}
        assert got == expected
