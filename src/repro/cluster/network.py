"""Interconnect cost model (α-β with tree collectives).

Every transfer of ``n`` bytes costs ``α + n/β`` where α is latency and β
bandwidth.  Intra-node transfers (between ranks on the same node) use the
faster shared-memory parameters.  Collectives follow the standard
binomial-tree / ring cost formulas used in MPI performance modelling —
the same reasoning the paper applies when counting "O(n) broadcasts" for
collective-per-file I/O versus "O(n/p) exchanges" for the
communication-avoiding method.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class NetworkModel:
    """α-β interconnect model.

    Parameters
    ----------
    latency:
        Inter-node point-to-point latency (seconds).
    bandwidth:
        Inter-node point-to-point bandwidth (bytes/second).
    intra_latency / intra_bandwidth:
        Same-node (shared-memory) parameters.
    """

    latency: float = 1.5e-6
    bandwidth: float = 8.0e9
    intra_latency: float = 3.0e-7
    intra_bandwidth: float = 4.0e10

    def __post_init__(self) -> None:
        if min(self.latency, self.intra_latency) < 0:
            raise ConfigError("latencies must be non-negative")
        if min(self.bandwidth, self.intra_bandwidth) <= 0:
            raise ConfigError("bandwidths must be positive")

    # -- point to point ---------------------------------------------------------
    def p2p_time(self, nbytes: int, same_node: bool = False) -> float:
        """Time to move ``nbytes`` between two ranks."""
        if nbytes < 0:
            raise ConfigError("negative message size")
        if same_node:
            return self.intra_latency + nbytes / self.intra_bandwidth
        return self.latency + nbytes / self.bandwidth

    # -- collectives ---------------------------------------------------------------
    @staticmethod
    def _rounds(p: int) -> int:
        if p < 1:
            raise ConfigError("communicator size must be >= 1")
        return max(1, math.ceil(math.log2(p))) if p > 1 else 0

    def bcast_time(self, nbytes: int, p: int) -> float:
        """Pipelined binomial-tree broadcast: ceil(log2 p) latency rounds,
        but the payload is chunked down the tree so the bandwidth term is
        paid once (the large-message regime of production MPI bcasts)."""
        rounds = self._rounds(p)
        if rounds == 0:
            return 0.0
        return rounds * self.latency + nbytes / self.bandwidth

    def reduce_time(self, nbytes: int, p: int) -> float:
        """Tree reduction has the same round structure as a broadcast."""
        return self.bcast_time(nbytes, p)

    def allreduce_time(self, nbytes: int, p: int) -> float:
        """Reduce + broadcast (the classic non-rabenseifner bound)."""
        return self.reduce_time(nbytes, p) + self.bcast_time(nbytes, p)

    def barrier_time(self, p: int) -> float:
        """Dissemination barrier: ceil(log2 p) latency-only rounds."""
        return self._rounds(p) * self.latency

    def gather_time(self, nbytes_per_rank: int, p: int) -> float:
        """Binomial gather: the root receives (p-1) contributions; the
        dominant term is the last-round payload of p/2 ranks' data."""
        if p <= 1:
            return 0.0
        rounds = self._rounds(p)
        total_bytes = nbytes_per_rank * (p - 1)
        return rounds * self.latency + total_bytes / self.bandwidth

    def scatter_time(self, nbytes_per_rank: int, p: int) -> float:
        """Scatter mirrors gather."""
        return self.gather_time(nbytes_per_rank, p)

    def allgather_time(self, nbytes_per_rank: int, p: int) -> float:
        """Ring allgather: (p-1) steps of one rank-block each."""
        if p <= 1:
            return 0.0
        return (p - 1) * self.p2p_time(nbytes_per_rank)

    def alltoall_time(self, nbytes_per_pair: int, p: int) -> float:
        """Pairwise-exchange all-to-all: (p-1) rounds, each round every
        rank sends one block concurrently.

        This is the key step of the communication-avoiding method: the
        whole exchange costs (p-1) concurrent rounds rather than the O(n)
        serialised broadcasts of collective-per-file.
        """
        if p <= 1:
            return 0.0
        return (p - 1) * self.p2p_time(nbytes_per_pair)

    def alltoallv_time(self, max_pair_bytes: int, p: int) -> float:
        """Irregular all-to-all bounded by the largest pairwise block."""
        return self.alltoall_time(max_pair_bytes, p)
