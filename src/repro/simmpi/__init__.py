"""simmpi — a simulated MPI runtime.

Runs P ranks as threads inside one process (SPMD), with:

* real message passing (mailboxes with ``(source, tag)`` matching),
* the collective set DASSA needs (barrier, bcast, scatter/gather,
  allgather, alltoall(v), reduce/allreduce),
* a **virtual clock per rank** advanced by the cluster's network cost
  model, so a run reports the simulated communication time the paper's
  experiments measure, while the data movement itself is executed for
  real and verified by tests,
* per-op tracing (used to check the discrete-event evaluation of the
  same algorithms at scales too large to thread).

The API mirrors mpi4py's: lowercase methods move Python objects,
uppercase methods move numpy buffers.

Example::

    from repro.simmpi import run_spmd

    def hello(comm):
        return comm.allreduce(comm.rank)

    result = run_spmd(hello, size=4)
    assert result.results == [6, 6, 6, 6]
"""

from repro.simmpi.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.simmpi.executor import SPMDResult, run_spmd
from repro.simmpi.reduce_ops import MAX, MIN, PROD, SUM
from repro.simmpi.request import Request
from repro.simmpi.tracing import TraceEvent

__all__ = [
    "Communicator",
    "Request",
    "run_spmd",
    "SPMDResult",
    "TraceEvent",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
]
