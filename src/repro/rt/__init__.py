"""Real-time DAS monitoring service.

DASSA batch-processes an archive, but its target sensors never stop
writing: the paper's 2880-file day is one day of a continuous
acquisition.  This package turns the repo's streaming kernels into a
long-running service:

* :mod:`repro.rt.ingest` — spool-directory watcher (complete-file
  heuristics), bounded work queue with backpressure, quarantine;
* :mod:`repro.rt.scheduler` — drives the operator-graph
  :class:`~repro.core.pipeline.StreamPipeline` *across file boundaries*
  via its incremental runner, so detections at file seams equal a batch
  run over the concatenated record;
* :mod:`repro.rt.events` — streaming event assembly and a JSONL sink
  with seam-dedup;
* :mod:`repro.rt.checkpoint` — atomic JSON checkpoints for
  kill-and-resume with no missed or duplicated events;
* :mod:`repro.rt.metrics` — per-stage latency, queue depth, ingest lag;
* :mod:`repro.rt.service` / :mod:`repro.rt.cli` — the service loop and
  ``python -m repro.rt watch <spool>``;
* :mod:`repro.rt.shard` / :mod:`repro.rt.supervisor` — the sharded
  multi-interrogator deployment: one RTService per spool on its own
  ``simmpi`` rank, heartbeat-based failure detection with automatic
  checkpoint-resume restarts, and an idempotent merged catalog with
  bounded-staleness reads (``watch --shards N``);
* :mod:`repro.rt.scaling` — shard-count → throughput/p95 projection on
  the ``cluster`` machine model (the paper's 1456-node regime).
"""

from repro.rt.checkpoint import CheckpointStore, read_sample_range
from repro.rt.events import (
    EventAssembler,
    EventPolicy,
    EventSink,
    SeamEvent,
    map_events,
)
from repro.rt.ingest import PendingFile, Quarantine, SpoolWatcher, WorkQueue
from repro.rt.metrics import LatencyStats, RTMetrics
from repro.rt.scaling import ShardScalingPoint, project_shard_scaling
from repro.rt.scheduler import DetectorConfig, SeamScheduler
from repro.rt.service import RTService, ServiceConfig
from repro.rt.shard import ShardOptions, ShardRuntime, ShardSpec, shard_main
from repro.rt.supervisor import (
    CatalogAggregator,
    HeartbeatConfig,
    HeartbeatMonitor,
    SupervisorConfig,
    catalog_signature,
    run_sharded,
    supervisor_main,
)

__all__ = [
    "CheckpointStore",
    "read_sample_range",
    "EventAssembler",
    "EventPolicy",
    "EventSink",
    "SeamEvent",
    "map_events",
    "PendingFile",
    "Quarantine",
    "SpoolWatcher",
    "WorkQueue",
    "LatencyStats",
    "RTMetrics",
    "DetectorConfig",
    "SeamScheduler",
    "RTService",
    "ServiceConfig",
    "ShardOptions",
    "ShardRuntime",
    "ShardSpec",
    "shard_main",
    "CatalogAggregator",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "SupervisorConfig",
    "catalog_signature",
    "run_sharded",
    "supervisor_main",
    "ShardScalingPoint",
    "project_shard_scaling",
]
