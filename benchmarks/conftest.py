"""Shared benchmark fixtures.

Benchmarks execute real code at scaled-down sizes (this is a single-core
machine) and, where the paper's result is a large-scale property, also
evaluate the machine model at paper scale.  Every bench writes its
reproduced table/figure rows to ``benchmarks/results/`` so the numbers
survive pytest's output capture.
"""

import os

import numpy as np
import pytest

from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Write (and echo) a named result table."""

    def _write(name: str, lines: list[str]) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        text = "\n".join(lines) + "\n"
        with open(path, "w") as fh:
            fh.write(text)
        print(f"\n[{name}]")
        print(text)
        return path

    return _write


def make_das_dir(root, n_files=48, channels=64, spm=600, fs=10.0, seed=1):
    """A scaled acquisition directory: n_files one-minute files."""
    rng = np.random.default_rng(seed)
    directory = os.path.join(str(root), "das")
    os.makedirs(directory, exist_ok=True)
    stamp = "170620100545"
    paths = []
    for _ in range(n_files):
        data = rng.normal(size=(channels, spm)).astype(np.float32)
        write_das_file(
            os.path.join(directory, das_filename(stamp)),
            data,
            DASMetadata(
                sampling_frequency=fs,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=channels,
            ),
            channel_groups=False,
        )
        paths.append(os.path.join(directory, das_filename(stamp)))
        stamp = timestamp_add_seconds(stamp, spm / fs)
    return directory, paths


@pytest.fixture(scope="session")
def scaled_dataset(tmp_path_factory):
    """48 scaled one-minute files (64 channels x 600 samples)."""
    root = tmp_path_factory.mktemp("bench-data")
    directory, paths = make_das_dir(root)
    return {"dir": directory, "paths": paths, "channels": 64, "spm": 600}
