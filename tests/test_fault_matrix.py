"""Fault matrix: every injected fault kind crossed with every batch read
path.

For each fault in {bit-flip, truncate, vanish, slow-read} injected into
one VCA source file, every read path (collective-per-file, the
communication-avoiding reader, an LAV view, and the streamed DASSA
facade) must either

* **mask**: complete with the victim's span fill-valued, reported in a
  :class:`~repro.storage.gaps.GapMap`, and be bit-identical to the clean
  data outside the masked (halo-widened, for streamed operators) spans;
* **fail fast** (the default): propagate a *typed* error —
  ``CorruptDataError`` for a checksum mismatch, ``FileNotFoundError``
  for a vanished file, a storage/OS error for truncation.

``slow-read`` is the benign row of the matrix: it must not fail, not
mask, and not report gaps on any path.

Also covers the degraded checkpoint-tail reader (`read_sample_range`)
and bounded-retry absorption of transient read faults.
"""

import os

import numpy as np
import pytest

from repro.core.framework import DASSA
from repro.errors import (
    CorruptDataError,
    MPIError,
    ReproError,
    StorageError,
)
from repro.faults.inject import FaultInjector, clear_read_faults, install_read_fault
from repro.rt.checkpoint import read_sample_range
from repro.simmpi import run_spmd
from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.gaps import GapMap
from repro.storage.lav import LAV
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.storage.parallel_read import (
    read_vca_collective_per_file,
    read_vca_communication_avoiding,
)
from repro.storage.vca import create_vca, open_vca

MATRIX_KINDS = ("bit-flip", "truncate", "vanish", "slow-read")

# Which typed error each permanent fault must raise in fail-fast mode.
EXPECT = {
    "bit-flip": CorruptDataError,
    "truncate": (ReproError, OSError),
    "vanish": FileNotFoundError,
    "slow-read": None,
}

VICTIM = 2  # source file index; covers VCA samples [240, 360)
V0, V1 = 240, 360


@pytest.fixture(autouse=True)
def _clean_hooks():
    yield
    clear_read_faults()


@pytest.fixture
def faulted(tmp_path):
    """Six checksummed per-minute files merged into one VCA."""
    directory = tmp_path / "das"
    directory.mkdir()
    rng = np.random.default_rng(7)
    stamp = "170620100545"
    paths, blocks = [], []
    for _ in range(6):
        data = rng.normal(size=(16, 120)).astype(np.float32)
        metadata = DASMetadata(
            sampling_frequency=2.0,
            spatial_resolution=2.0,
            timestamp=stamp,
            n_channels=16,
        )
        path = str(directory / das_filename(stamp))
        write_das_file(path, data, metadata, channel_groups=False, checksum=True)
        paths.append(path)
        blocks.append(data)
        stamp = timestamp_add_seconds(stamp, 60)
    vca = create_vca(str(tmp_path / "v.h5"), paths)
    return {
        "vca": vca,
        "paths": paths,
        "full": np.concatenate(blocks, axis=1),
    }


def _inject(kind, path):
    inj = FaultInjector(seed=13)
    if kind == "slow-read":
        inj.inject(kind, path, delay=0.005)
    else:
        inj.inject(kind, path)


def _check_masked(out, full, kind):
    """Masked-mode output: clean outside the victim span, NaN inside."""
    if kind == "slow-read":
        np.testing.assert_array_equal(out, full)
        return
    mask = np.zeros(full.shape[1], dtype=bool)
    mask[V0:V1] = True
    np.testing.assert_array_equal(out[:, ~mask], full[:, ~mask])
    assert np.isnan(out[:, mask]).all()


@pytest.mark.parametrize("kind", MATRIX_KINDS)
class TestFaultMatrix:
    def _check_spmd_fail_fast(self, fn, kind, size=2):
        with pytest.raises(MPIError) as err:
            run_spmd(fn, size)
        assert isinstance(err.value.__cause__, EXPECT[kind])

    def test_collective_per_file(self, faulted, kind):
        _inject(kind, faulted["paths"][VICTIM])

        def masked(comm):
            gm = GapMap()
            block = read_vca_collective_per_file(
                comm, faulted["vca"], on_error="mask", gaps=gm
            )
            return block, sorted((s.t0, s.t1) for s in gm)

        result = run_spmd(masked, 3)
        out = np.concatenate([b for b, _ in result.results], axis=0)
        _check_masked(out, faulted["full"], kind)
        # Every rank agrees on the gap report (the aggregator broadcasts
        # the failure along with the fill block).
        expected = [] if kind == "slow-read" else [(V0, V1)]
        assert all(spans == expected for _, spans in result.results)

        def failfast(comm):
            return read_vca_collective_per_file(comm, faulted["vca"])

        if kind == "slow-read":
            ok = run_spmd(failfast, 2)
            np.testing.assert_array_equal(
                np.concatenate(ok.results, axis=0), faulted["full"]
            )
        else:
            self._check_spmd_fail_fast(failfast, kind)

    def test_communication_avoiding(self, faulted, kind):
        _inject(kind, faulted["paths"][VICTIM])

        def masked(comm):
            gm = GapMap()
            block = read_vca_communication_avoiding(
                comm, faulted["vca"], on_error="mask", gaps=gm
            )
            return block, sorted((s.t0, s.t1) for s in gm)

        result = run_spmd(masked, 4)
        out = np.concatenate([b for b, _ in result.results], axis=0)
        _check_masked(out, faulted["full"], kind)
        # Owning ranks allgather failures: the report is global.
        expected = [] if kind == "slow-read" else [(V0, V1)]
        assert all(spans == expected for _, spans in result.results)

        def failfast(comm):
            return read_vca_communication_avoiding(comm, faulted["vca"])

        if kind == "slow-read":
            ok = run_spmd(failfast, 2)
            np.testing.assert_array_equal(
                np.concatenate(ok.results, axis=0), faulted["full"]
            )
        else:
            self._check_spmd_fail_fast(failfast, kind)

    def test_lav_view(self, faulted, kind):
        _inject(kind, faulted["paths"][VICTIM])
        with open_vca(faulted["vca"], on_error="mask") as handle:
            out = LAV(handle.dataset, channels=slice(2, 10)).read()
            spans = sorted((s.t0, s.t1) for s in handle.gaps)
        _check_masked(out, faulted["full"][2:10], kind)
        assert spans == ([] if kind == "slow-read" else [(V0, V1)])

        if kind == "slow-read":
            with open_vca(faulted["vca"]) as handle:
                np.testing.assert_array_equal(
                    LAV(handle.dataset).read(), faulted["full"]
                )
        else:
            with open_vca(faulted["vca"]) as handle:
                with pytest.raises(EXPECT[kind]):
                    LAV(handle.dataset).read()

    def test_streamed_dassa(self, faulted, kind):
        nsta, nlta = 4, 16
        ref = DASSA(threads=1).sta_lta(
            faulted["vca"], nsta, nlta, chunk_samples=200
        )
        _inject(kind, faulted["paths"][VICTIM])

        d = DASSA(threads=1, on_error="mask")
        out = d.sta_lta(faulted["vca"], nsta, nlta, chunk_samples=200)
        if kind == "slow-read":
            np.testing.assert_array_equal(out, ref)
            assert d.last_gaps is None
            return
        gaps = d.last_gaps
        assert gaps is not None and gaps
        assert all(V0 <= s.t0 and s.t1 <= V1 for s in gaps)
        # Equal to the clean run outside the affected cone (the masked
        # input spans widened by the STA/LTA lookback halo).  Tolerance,
        # not bit-identity: the kernel's running sums cancel the masked
        # prefix to ~1e-14, unlike the pure read paths above.
        cone = gaps.widened(nlta - 1).time_mask(out.shape[1])
        assert cone.any() and not cone.all()
        np.testing.assert_allclose(
            out[:, ~cone], ref[:, ~cone], rtol=1e-9, atol=1e-12
        )

        with pytest.raises(EXPECT[kind]):
            DASSA(threads=1).sta_lta(
                faulted["vca"], nsta, nlta, chunk_samples=200
            )


class TestTransientFaultsRetried:
    """One failed read then success: bounded retry absorbs it silently."""

    def test_collective_reader_retries(self, faulted):
        install_read_fault(faulted["paths"][VICTIM], "raise-on-nth-read", fail_reads=1)

        def fn(comm):
            gm = GapMap()
            block = read_vca_collective_per_file(
                comm, faulted["vca"], on_error="mask", retries=2, gaps=gm
            )
            return block, len(gm)

        result = run_spmd(fn, 2)
        out = np.concatenate([b for b, _ in result.results], axis=0)
        np.testing.assert_array_equal(out, faulted["full"])
        assert all(n == 0 for _, n in result.results)

    def test_exhausted_retries_then_mask(self, faulted):
        install_read_fault(
            faulted["paths"][VICTIM], "raise-on-nth-read", fail_reads=99
        )

        def fn(comm):
            gm = GapMap()
            read_vca_collective_per_file(
                comm, faulted["vca"], on_error="mask", retries=1, gaps=gm
            )
            return [(s.t0, s.t1, s.attempts) for s in gm]

        result = run_spmd(fn, 1)
        (spans,) = result.results
        assert [(t0, t1) for t0, t1, _ in spans] == [(V0, V1)]
        assert all(attempts >= 2 for _, _, attempts in spans)


class TestReadSampleRangeDegraded:
    """The checkpoint-tail reader survives a corrupted/lost tail file."""

    def _files(self, das_dir):
        return [(p, 120) for p in das_dir["paths"]]

    def test_mask_fills_lost_file(self, das_dir):
        files = self._files(das_dir)
        os.remove(das_dir["paths"][3])  # samples [360, 480)
        gm = GapMap()
        out = read_sample_range(files, 300, 500, on_error="mask", gaps=gm)
        full = das_dir["full"]
        assert out.shape == (16, 200)
        np.testing.assert_array_equal(out[:, :60], full[:, 300:360])
        assert np.isnan(out[:, 60:180]).all()
        np.testing.assert_array_equal(out[:, 180:], full[:, 480:500])
        assert [(s.t0, s.t1) for s in gm] == [(360, 480)]

    def test_raise_mode_propagates(self, das_dir):
        files = self._files(das_dir)
        os.remove(das_dir["paths"][3])
        with pytest.raises(FileNotFoundError):
            read_sample_range(files, 300, 500)

    def test_all_files_lost_is_an_error(self, das_dir):
        files = self._files(das_dir)
        os.remove(das_dir["paths"][3])
        with pytest.raises(StorageError, match="unreadable"):
            read_sample_range(files, 400, 450, on_error="mask")

    def test_transient_fault_retried(self, das_dir):
        files = self._files(das_dir)
        install_read_fault(das_dir["paths"][2], "raise-on-nth-read", fail_reads=1)
        gm = GapMap()
        out = read_sample_range(files, 250, 350, on_error="mask", gaps=gm, retries=2)
        np.testing.assert_array_equal(out, das_dir["full"][:, 250:350])
        assert len(gm) == 0
