"""Event extraction from streamed detector columns + the JSONL sink.

The batch :func:`~repro.core.detection.detect_events` thresholds at
``median + k·MAD`` of the *whole* map — a global statistic no unbounded
stream can know.  The service therefore uses a fixed absolute threshold
with column-coverage triggering: a detector column is *hot* when at
least ``min_fraction`` of channels exceed ``threshold``, and a maximal
run of consecutive hot columns is one event.  The open run is the only
carried state, so the assembly is exactly streamable: feeding the map
column-interval by column-interval (as the seam scheduler emits it)
yields the identical event list to one pass over the whole map
(:func:`map_events`), including events straddling file seams.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.detection import DetectedEvent
from repro.errors import ConfigError

STATE_VERSION = 1


@dataclass(frozen=True)
class EventPolicy:
    """Streamable trigger/classify parameters.

    ``threshold`` is an absolute score cut (similarity in [-1, 1] or an
    STA/LTA ratio); ``min_fraction`` is the channel coverage that makes
    a column hot; runs shorter than ``min_columns`` are discarded as
    single-column glitches.  Classification mirrors the batch detector:
    near-full channel span with no coherent slope → earthquake, a
    coherent moving ridge → vehicle, anything else unclassified.
    """

    threshold: float = 0.5
    min_fraction: float = 0.3
    min_columns: int = 2
    earthquake_span_fraction: float = 0.6
    min_vehicle_speed: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 < self.min_fraction <= 1.0):
            raise ConfigError("min_fraction must be in (0, 1]")
        if self.min_columns < 1:
            raise ConfigError("min_columns must be >= 1")
        if not (0.0 < self.earthquake_span_fraction <= 1.0):
            raise ConfigError("earthquake_span_fraction must be in (0, 1]")
        if self.min_vehicle_speed < 0:
            raise ConfigError("min_vehicle_speed must be >= 0")


@dataclass(frozen=True)
class SeamEvent:
    """A detected event plus its detector-column span.

    ``(j_start, j_end)`` is deterministic given the record — the same
    event re-finalised after a checkpoint replay lands on the same span
    — so it is the sink's dedup key, which is what keeps
    kill-and-resume from doubling events emitted between the last
    checkpoint and the kill.
    """

    event: DetectedEvent
    j_start: int
    j_end: int  # inclusive

    @property
    def key(self) -> tuple[int, int]:
        return (self.j_start, self.j_end)

    def to_json(self) -> dict:
        payload = asdict(self.event)
        payload["j_start"] = self.j_start
        payload["j_end"] = self.j_end
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "SeamEvent":
        payload = dict(payload)
        j_start = int(payload.pop("j_start"))
        j_end = int(payload.pop("j_end"))
        payload.pop("record", None)
        return cls(DetectedEvent(**payload), j_start, j_end)

    def rebased(self, channel_offset: int) -> "SeamEvent":
        """The same event with its channel span shifted into a global
        frame — a shard that owns channels ``[base, base+n)`` detects in
        local coordinates and rebases by ``base`` before publishing to
        the merged catalog."""
        if not channel_offset:
            return self
        moved = DetectedEvent(
            label=self.event.label,
            kind=self.event.kind,
            channel_lo=self.event.channel_lo + int(channel_offset),
            channel_hi=self.event.channel_hi + int(channel_offset),
            t_start=self.event.t_start,
            t_end=self.event.t_end,
            peak_similarity=self.event.peak_similarity,
            n_cells=self.event.n_cells,
            speed_channels_per_s=self.event.speed_channels_per_s,
        )
        return SeamEvent(moved, self.j_start, self.j_end)


class EventAssembler:
    """Streaming run-length event assembly with exact batch equivalence.

    :meth:`feed` consumes one emitted ``((j_lo, j_hi), block)`` interval
    at a time (intervals must tile the column axis, which the seam
    scheduler guarantees); a run of hot columns still open at the end of
    an interval is carried — with its slope-fit sums — into the next, so
    an event straddling a file seam is assembled once, not split or
    dropped.  The carried run round-trips through JSON for
    checkpoint/resume.
    """

    def __init__(
        self,
        policy: EventPolicy,
        fs: float,
        n_channels: int,
        channel_lo: int = 0,
        label_start: int = 1,
    ):
        if fs <= 0:
            raise ConfigError("event assembly needs fs > 0")
        if n_channels < 1:
            raise ConfigError("n_channels must be >= 1")
        self.policy = policy
        self.fs = float(fs)
        self.n_channels = int(n_channels)
        self.channel_lo = int(channel_lo)
        self._next_label = int(label_start)
        self._open: dict | None = None

    def feed(
        self, j_lo: int, centers: np.ndarray, block: np.ndarray
    ) -> list[SeamEvent]:
        """Consume columns ``[j_lo, j_lo + block.shape[1])``; returns the
        events finalised inside this interval.

        ``centers[k]`` is the absolute input-sample position of column
        ``j_lo + k`` (the similarity window centre, or the sample itself
        for STA/LTA) — event times are ``center / fs`` seconds into the
        record.
        """
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2:
            raise ConfigError("need a 2-D (channels, columns) block")
        centers = np.asarray(centers)
        if centers.shape != (block.shape[1],):
            raise ConfigError(
                f"{block.shape[1]} columns but {centers.shape} centers"
            )
        policy = self.policy
        finalized: list[SeamEvent] = []
        for k in range(block.shape[1]):
            j = j_lo + k
            column = block[:, k]
            hits = column > policy.threshold
            hot = hits.mean() >= policy.min_fraction
            run = self._open
            if run is not None and (not hot or j != run["j_end"] + 1):
                finalized.extend(self._finalize())
                run = None
            if not hot:
                continue
            t = float(centers[k]) / self.fs
            rows = np.flatnonzero(hits)
            channels = rows + self.channel_lo
            if run is None:
                self._open = run = {
                    "j_start": j,
                    "j_end": j,
                    "t_start": t,
                    "t_end": t,
                    "ch_min": int(channels.min()),
                    "ch_max": int(channels.max()),
                    "peak": float(column[rows].max()),
                    "n_cells": 0,
                    "s_t": 0.0,
                    "s_ch": 0.0,
                    "s_tch": 0.0,
                    "s_tt": 0.0,
                }
            else:
                run["j_end"] = j
                run["t_end"] = t
                run["ch_min"] = min(run["ch_min"], int(channels.min()))
                run["ch_max"] = max(run["ch_max"], int(channels.max()))
                run["peak"] = max(run["peak"], float(column[rows].max()))
            run["n_cells"] += int(len(rows))
            run["s_t"] += t * len(rows)
            run["s_ch"] += float(channels.sum())
            run["s_tch"] += t * float(channels.sum())
            run["s_tt"] += t * t * len(rows)
        return finalized

    def flush(self) -> list[SeamEvent]:
        """Finalise the run left open at the end of the record."""
        return self._finalize()

    def _finalize(self) -> list[SeamEvent]:
        run, self._open = self._open, None
        if run is None:
            return []
        if run["j_end"] - run["j_start"] + 1 < self.policy.min_columns:
            return []
        n = run["n_cells"]
        denom = n * run["s_tt"] - run["s_t"] ** 2
        if denom > 1e-12:
            slope = (n * run["s_tch"] - run["s_t"] * run["s_ch"]) / denom
        else:
            slope = 0.0
        duration = run["t_end"] - run["t_start"]
        span = run["ch_max"] - run["ch_min"] + 1
        span_fraction = span / self.n_channels
        if (
            span_fraction >= self.policy.earthquake_span_fraction
            and abs(slope) * max(duration, 1e-12) < 0.5 * self.n_channels
        ):
            kind = "earthquake"
        elif abs(slope) >= self.policy.min_vehicle_speed:
            kind = "vehicle"
        else:
            kind = "unclassified"
        event = DetectedEvent(
            label=self._next_label,
            kind=kind,
            channel_lo=run["ch_min"],
            channel_hi=run["ch_max"],
            t_start=run["t_start"],
            t_end=run["t_end"],
            peak_similarity=run["peak"],
            n_cells=n,
            speed_channels_per_s=slope,
        )
        self._next_label += 1
        return [SeamEvent(event, run["j_start"], run["j_end"])]

    # -- checkpoint/resume --------------------------------------------------
    def export_state(self) -> dict:
        """JSON-safe carried state: the open run plus the label counter."""
        return {
            "version": STATE_VERSION,
            "next_label": self._next_label,
            "open": dict(self._open) if self._open is not None else None,
        }

    def import_state(self, payload: dict) -> None:
        if payload.get("version") != STATE_VERSION:
            raise ConfigError(
                f"assembler state version {payload.get('version')!r} unsupported"
            )
        self._next_label = int(payload["next_label"])
        run = payload.get("open")
        self._open = dict(run) if run is not None else None


def map_events(
    block: np.ndarray,
    centers: np.ndarray,
    fs: float,
    policy: EventPolicy | None = None,
    n_channels: int | None = None,
    channel_lo: int = 0,
) -> list[SeamEvent]:
    """Batch reference: the same extraction over a whole detector map.

    The seam-equivalence tests compare the service's streamed event log
    against this single-pass result.
    """
    if policy is None:
        policy = EventPolicy()
    block = np.asarray(block, dtype=np.float64)
    if n_channels is None:
        n_channels = block.shape[0] + 2 * channel_lo
    assembler = EventAssembler(policy, fs, n_channels, channel_lo=channel_lo)
    events = assembler.feed(0, centers, block)
    events.extend(assembler.flush())
    return events


class EventSink:
    """Append-only JSONL event log with resume dedup.

    Each line is one event (``repro.core.detection.DetectedEvent``
    fields plus ``record``, ``j_start``, ``j_end``).  On open, existing
    ``(record, j_start, j_end)`` keys are loaded so a resumed service
    that re-finalises an already-logged event skips it instead of
    doubling it.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._keys: set[tuple[str, int, int]] = set()
        self.count = 0
        if os.path.exists(self.path):
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    self._keys.add(
                        (
                            str(entry.get("record", "")),
                            int(entry["j_start"]),
                            int(entry["j_end"]),
                        )
                    )
                    self.count += 1

    def emit(self, events: list[SeamEvent], record: str = "") -> list[SeamEvent]:
        """Append the not-yet-logged events; returns what was written."""
        written: list[SeamEvent] = []
        if not events:
            return written
        with open(self.path, "a", encoding="utf-8") as handle:
            for seam_event in events:
                key = (str(record), seam_event.j_start, seam_event.j_end)
                if key in self._keys:
                    continue
                payload = seam_event.to_json()
                payload["record"] = str(record)
                handle.write(json.dumps(payload) + "\n")
                self._keys.add(key)
                self.count += 1
                written.append(seam_event)
            handle.flush()
            os.fsync(handle.fileno())
        return written

    def load(self) -> list[SeamEvent]:
        """Read the full log back as :class:`SeamEvent` rows."""
        return [event for _, event in self.load_records()]

    def load_records(self) -> list[tuple[str, SeamEvent]]:
        """Read the full log back as ``(record, event)`` rows — the
        record is part of the cross-shard idempotency key, so a shard
        replaying its log to the aggregator must keep it."""
        rows: list[tuple[str, SeamEvent]] = []
        if not os.path.exists(self.path):
            return rows
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entry = json.loads(line)
                    rows.append(
                        (str(entry.get("record", "")), SeamEvent.from_json(entry))
                    )
        return rows
