"""Tests for detrend, resample, interp1, fft helpers, windows, whitening,
moving statistics."""

import numpy as np
import pytest
import scipy.fft
import scipy.signal as sps

from repro.daslib import (
    decimate,
    demean,
    detrend,
    fft,
    get_window,
    ifft,
    interp1,
    irfft,
    moving_average,
    next_fast_len,
    resample,
    rfft,
    sliding_windows,
    taper,
    upfirdn,
    whiten,
)


class TestDetrend:
    def test_constant_removes_mean(self):
        x = np.arange(10.0) + 5.0
        out = detrend(x, type="constant")
        assert out.mean() == pytest.approx(0.0, abs=1e-12)

    def test_linear_removes_line_exactly(self):
        t = np.arange(100.0)
        x = 3.0 * t + 7.0
        np.testing.assert_allclose(detrend(x), 0.0, atol=1e-9)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200) + 0.05 * np.arange(200)
        np.testing.assert_allclose(detrend(x), sps.detrend(x), atol=1e-9)

    def test_2d_per_row(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 100)) + np.linspace(0, 3, 100)
        got = detrend(x, axis=-1)
        np.testing.assert_allclose(got, sps.detrend(x, axis=-1), atol=1e-9)

    def test_axis0(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 4))
        np.testing.assert_allclose(
            detrend(x, axis=0), sps.detrend(x, axis=0), atol=1e-9
        )

    def test_demean(self):
        x = np.random.default_rng(3).normal(size=(3, 50)) + 10
        out = demean(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-12)

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            detrend(np.zeros(4), type="quadratic")

    def test_preserves_signal_shape(self):
        x = np.sin(np.linspace(0, 20, 500)) + np.linspace(-2, 2, 500)
        out = detrend(x)
        # the sinusoid survives detrending
        assert np.std(out) > 0.5


class TestResample:
    def test_length_matlab_convention(self):
        x = np.zeros(1000)
        assert resample(x, 1, 4).shape == (250,)
        assert resample(x, 2, 3).shape == (-(-1000 * 2 // 3),)
        assert resample(x, 1, 1).shape == (1000,)

    def test_downsample_preserves_low_frequency(self):
        fs = 500.0
        t = np.arange(0, 8.0, 1 / fs)
        x = np.sin(2 * np.pi * 3.0 * t)
        y = resample(x, 1, 4)
        t_dec = np.arange(len(y)) * 4 / fs
        expected = np.sin(2 * np.pi * 3.0 * t_dec)
        core = slice(50, -50)
        np.testing.assert_allclose(y[core], expected[core], atol=0.02)

    def test_upsample_preserves_signal(self):
        fs = 100.0
        t = np.arange(0, 4.0, 1 / fs)
        x = np.sin(2 * np.pi * 2.0 * t)
        y = resample(x, 3, 1)
        t_up = np.arange(len(y)) / (3 * fs)
        core = slice(60, -60)
        np.testing.assert_allclose(
            y[core], np.sin(2 * np.pi * 2.0 * t_up)[core], atol=0.02
        )

    def test_antialiasing(self):
        """A tone above the output Nyquist must be attenuated."""
        fs = 500.0
        t = np.arange(0, 8.0, 1 / fs)
        x = np.sin(2 * np.pi * 100.0 * t)  # above 62.5 Hz output Nyquist
        y = resample(x, 1, 4)
        assert np.sqrt(np.mean(y[100:-100] ** 2)) < 0.05

    def test_2d_along_axis(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 400))
        y = resample(x, 1, 2, axis=-1)
        assert y.shape == (3, 200)
        y0 = resample(x[0], 1, 2)
        np.testing.assert_allclose(y[0], y0, atol=1e-12)

    def test_gcd_reduction(self):
        x = np.random.default_rng(5).normal(size=300)
        np.testing.assert_allclose(resample(x, 2, 4), resample(x, 1, 2), atol=1e-12)

    def test_decimate(self):
        x = np.random.default_rng(6).normal(size=400)
        np.testing.assert_allclose(decimate(x, 4), resample(x, 1, 4), atol=1e-12)
        np.testing.assert_allclose(decimate(x, 1), x)

    def test_invalid(self):
        with pytest.raises(ValueError):
            resample(np.zeros(10), 0, 1)
        with pytest.raises(ValueError):
            decimate(np.zeros(10), 0)


class TestUpfirdn:
    def test_matches_scipy(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=100)
        taps = sps.firwin(31, 0.3)
        for up, down in ((1, 1), (2, 1), (1, 3), (3, 2)):
            got = upfirdn(taps, x, up, down)
            expected = sps.upfirdn(taps, x, up, down)
            np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_identity(self):
        x = np.arange(10.0)
        np.testing.assert_allclose(upfirdn([1.0], x), x, atol=1e-12)


class TestInterp1:
    def test_linear_exact_at_knots(self):
        x0 = np.array([0.0, 1.0, 2.0, 4.0])
        y0 = np.array([0.0, 10.0, 20.0, 40.0])
        np.testing.assert_allclose(interp1(x0, y0, x0), y0, atol=1e-12)

    def test_linear_midpoints(self):
        x0 = np.array([0.0, 2.0])
        y0 = np.array([0.0, 4.0])
        assert interp1(x0, y0, np.array([1.0]))[0] == pytest.approx(2.0)

    def test_matches_numpy_interp(self):
        rng = np.random.default_rng(8)
        x0 = np.sort(rng.uniform(0, 10, 20))
        y0 = rng.normal(size=20)
        x = rng.uniform(x0[0], x0[-1], 50)
        np.testing.assert_allclose(interp1(x0, y0, x), np.interp(x, x0, y0), atol=1e-12)

    def test_nearest(self):
        x0 = np.array([0.0, 1.0, 2.0])
        y0 = np.array([10.0, 20.0, 30.0])
        got = interp1(x0, y0, np.array([0.4, 0.6, 1.9]), kind="nearest")
        np.testing.assert_allclose(got, [10.0, 20.0, 30.0])

    def test_out_of_range_nan(self):
        x0 = np.array([0.0, 1.0])
        y0 = np.array([0.0, 1.0])
        out = interp1(x0, y0, np.array([-1.0, 2.0]))
        assert np.isnan(out).all()

    def test_extrapolate(self):
        x0 = np.array([0.0, 1.0])
        y0 = np.array([0.0, 2.0])
        out = interp1(x0, y0, np.array([2.0]), fill_value="extrapolate")
        assert out[0] == pytest.approx(4.0)

    def test_unsorted_input_sorted_internally(self):
        x0 = np.array([2.0, 0.0, 1.0])
        y0 = np.array([20.0, 0.0, 10.0])
        assert interp1(x0, y0, np.array([0.5]))[0] == pytest.approx(5.0)

    def test_2d_y(self):
        x0 = np.arange(5.0)
        y0 = np.vstack([x0, 2 * x0])
        out = interp1(x0, y0, np.array([0.5, 2.5]), axis=-1)
        np.testing.assert_allclose(out, [[0.5, 2.5], [1.0, 5.0]])

    def test_invalid(self):
        with pytest.raises(ValueError):
            interp1(np.array([0.0]), np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            interp1(np.array([0.0, 0.0]), np.array([1.0, 2.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            interp1(np.arange(3.0), np.arange(3.0), np.zeros(1), kind="cubic")


class TestFFTHelpers:
    def test_roundtrip(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=128)
        np.testing.assert_allclose(ifft(fft(x)).real, x, atol=1e-12)
        np.testing.assert_allclose(irfft(rfft(x), 128), x, atol=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 7, 11, 13, 97, 1000, 1024, 30000, 46656])
    def test_next_fast_len_matches_scipy(self, n):
        # scipy.fftpack's variant is the 5-smooth ("regular number")
        # definition we implement; scipy.fft's also admits 7/11 factors.
        import scipy.fftpack

        assert next_fast_len(n) == scipy.fftpack.next_fast_len(n)

    def test_next_fast_len_is_5_smooth(self):
        for n in (17, 123, 999, 12345):
            m = next_fast_len(n)
            assert m >= n
            for p in (2, 3, 5):
                while m % p == 0:
                    m //= p
            assert m == 1

    def test_next_fast_len_invalid(self):
        with pytest.raises(ValueError):
            next_fast_len(0)


class TestWindows:
    @pytest.mark.parametrize("name", ["hann", "hamming", "blackman"])
    def test_matches_scipy(self, name):
        got = get_window(name, 65)
        expected = sps.get_window(name, 65, fftbins=False)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_kaiser_matches_numpy(self):
        np.testing.assert_allclose(
            get_window(("kaiser", 5.0), 33), np.kaiser(33, 5.0), atol=1e-12
        )

    def test_boxcar(self):
        np.testing.assert_array_equal(get_window("boxcar", 8), np.ones(8))

    def test_length_one(self):
        for name in ("hann", "hamming", "blackman"):
            assert get_window(name, 1).shape == (1,)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_window("flattop9000", 8)
        with pytest.raises(ValueError):
            get_window(("gauss", 1.0), 8)
        with pytest.raises(ValueError):
            get_window("hann", 0)

    def test_taper_edges_to_zero_keeps_middle(self):
        x = np.ones(1000)
        y = taper(x, 0.1)
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[-1] == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(y[300:700], 1.0)

    def test_taper_zero_fraction_identity(self):
        x = np.random.default_rng(10).normal(size=50)
        np.testing.assert_allclose(taper(x, 0.0), x)

    def test_taper_invalid(self):
        with pytest.raises(ValueError):
            taper(np.ones(10), 0.9)


class TestWhiten:
    def test_flattens_amplitude(self):
        rng = np.random.default_rng(11)
        spec = rng.normal(size=256) * (1 + np.arange(256.0)) + 1j * rng.normal(size=256)
        white = whiten(spec)
        np.testing.assert_allclose(np.abs(white), 1.0, atol=1e-6)

    def test_preserves_phase(self):
        spec = np.array([3 + 4j, -2 + 0j, 0 + 5j])
        white = whiten(spec)
        np.testing.assert_allclose(np.angle(white), np.angle(spec), atol=1e-9)

    def test_smooth_bins(self):
        spec = np.ones(64, dtype=complex)
        spec[32] = 100.0
        white = whiten(spec, smooth_bins=8)
        # The spike is suppressed relative to raw whitening of neighbours
        assert np.abs(white[32]) < 100.0
        assert np.abs(white[0]) == pytest.approx(1.0, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            whiten(np.ones(4, dtype=complex), smooth_bins=0)


class TestMoving:
    def test_moving_average_flat(self):
        np.testing.assert_allclose(moving_average(np.ones(10), 3), 1.0)

    def test_matches_manual(self):
        x = np.arange(6.0)
        got = moving_average(x, 3)
        expected = np.array(
            [np.mean(x[max(0, i - 1) : i + 2]) for i in range(6)]
        )
        np.testing.assert_allclose(got, expected)

    def test_width_one_identity(self):
        x = np.random.default_rng(12).normal(size=20)
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_2d(self):
        x = np.vstack([np.arange(6.0), np.arange(6.0) * 2])
        got = moving_average(x, 3, axis=-1)
        np.testing.assert_allclose(got[1], 2 * got[0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    def test_sliding_windows_values(self):
        x = np.arange(10)
        w = sliding_windows(x, 4, step=2)
        np.testing.assert_array_equal(w[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(w[1], [2, 3, 4, 5])
        assert w.shape == (4, 4)

    def test_sliding_windows_no_copy(self):
        x = np.arange(10)
        w = sliding_windows(x, 3)
        assert w.base is not None

    def test_sliding_windows_2d(self):
        x = np.arange(20).reshape(2, 10)
        w = sliding_windows(x, 5, step=5, axis=-1)
        assert w.shape == (2, 2, 5)
        np.testing.assert_array_equal(w[1, 1], x[1, 5:10])

    def test_sliding_windows_invalid(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3), 5)
        with pytest.raises(ValueError):
            sliding_windows(np.arange(10), 0)
