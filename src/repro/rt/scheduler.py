"""Cross-file detection scheduling: the seam-state protocol.

The batch pipelines treat one acquisition file as one record.  A
monitoring service must treat the *stream of files* as one record: the
filtfilt settle halo and the similarity/STA-LTA lookback windows
straddle file boundaries, so processing each file independently drops
or distorts detections at every seam.  :class:`SeamScheduler` wraps the
:class:`~repro.core.pipeline.IncrementalRunner` — every pushed file is
just the next piece of an unbounded record, carried state threads the
halo from one file into the next, and the emitted output tiles exactly
what one batch run over the concatenated record would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.local_similarity import LocalSimilarityConfig, LocalSimilarityOp
from repro.core.pipeline import Operator, StreamPipeline
from repro.core.stalta import StaLtaOp
from repro.daslib import butter
from repro.errors import ConfigError

DETECTORS = ("local_similarity", "sta_lta")


@dataclass(frozen=True)
class DetectorConfig:
    """What the service computes per column of the incoming record.

    ``detector`` picks the map chain's terminal stage: Algorithm 2 local
    similarity (the paper's detector) or classic STA/LTA (the large-N
    baseline).  ``band`` prepends a zero-phase bandpass; ``None`` feeds
    the detector raw samples.
    """

    detector: str = "local_similarity"
    band: tuple[float, float] | None = (0.5, 12.0)
    filter_order: int = 4
    similarity: LocalSimilarityConfig = field(
        default_factory=LocalSimilarityConfig
    )
    nsta: int = 25
    nlta: int = 250

    def __post_init__(self) -> None:
        if self.detector not in DETECTORS:
            raise ConfigError(
                f"detector must be one of {DETECTORS}, got {self.detector!r}"
            )
        if self.band is not None and len(self.band) != 2:
            raise ConfigError("band must be (low_hz, high_hz) or None")

    def operators(self, fs: float) -> list[Operator]:
        """The map chain this detector runs (all stream-safe)."""
        ops: list[Operator] = []
        if self.band is not None:
            if fs <= 0:
                raise ConfigError("a bandpass detector needs fs > 0")
            b, a = butter(self.filter_order, self.band, "bandpass", fs=fs)
            ops.append(FiltFiltBand(b, a))
        if self.detector == "local_similarity":
            ops.append(LocalSimilarityOp(self.similarity))
        else:
            ops.append(StaLtaOp(self.nsta, self.nlta))
        return ops

    def centers(self, j_lo: int, j_hi: int) -> np.ndarray:
        """Absolute input-sample position of output columns [j_lo, j_hi)."""
        j = np.arange(j_lo, j_hi)
        if self.detector == "local_similarity":
            cfg = self.similarity
            return cfg.time_halo + j * cfg.stride
        return j

    @property
    def channel_lo(self) -> int:
        """Absolute channel of the detector's first output row."""
        if self.detector == "local_similarity":
            return self.similarity.channel_offset
        return 0


def FiltFiltBand(b, a):
    """The streaming zero-phase bandpass stage (import kept local so a
    band of ``None`` never touches the filter design path)."""
    from repro.core.operators import FiltFiltOp

    return FiltFiltOp(b, a)


class SeamScheduler:
    """Feeds acquisition files through one incremental runner, carrying
    filter/window state across file boundaries.

    The runner is built lazily from the first file's geometry
    (``n_channels``, ``fs``); later files must match or the caller
    quarantines them.  :meth:`export_state` / :meth:`import_state`
    round-trip the carried state for checkpoint/resume.
    """

    def __init__(self, config: DetectorConfig | None = None):
        self.config = config if config is not None else DetectorConfig()
        self._runner = None
        self.fs: float | None = None
        self.n_channels: int | None = None

    @property
    def started(self) -> bool:
        return self._runner is not None

    @property
    def seen(self) -> int:
        return self._runner.seen if self._runner is not None else 0

    @property
    def emitted(self) -> int:
        return self._runner.emitted if self._runner is not None else 0

    @property
    def pending_samples(self) -> int:
        return self._runner.pending_samples if self._runner is not None else 0

    def _build(self, n_channels: int, fs: float):
        # Route the chain through the query optimizer's fusion rewrite:
        # adjacent halo-compatible maps (e.g. bandpass + STA/LTA) run as
        # one incremental stage.  Fusion is restricted to operators whose
        # open-right-edge planning composes exactly, so seam equivalence
        # with batch execution is preserved bit for bit.
        from repro.core.optimizer import plan_incremental

        pipe = StreamPipeline(plan_incremental(self.config.operators(fs)))
        return pipe.incremental(n_channels, fs=fs)

    def _ensure(self, n_channels: int, fs: float) -> None:
        if self._runner is None:
            self._runner = self._build(n_channels, fs)
            self.n_channels = int(n_channels)
            self.fs = float(fs)
            return
        if int(n_channels) != self.n_channels or float(fs) != self.fs:
            raise ConfigError(
                f"file geometry ({n_channels} ch @ {fs} Hz) does not match "
                f"the running record ({self.n_channels} ch @ {self.fs} Hz)"
            )

    def process(
        self, data: np.ndarray, fs: float, timer=None
    ) -> list[tuple[tuple[int, int], np.ndarray]]:
        """Push the next file's samples; returns the newly emittable
        ``((j_lo, j_hi), block)`` detector-output intervals."""
        data = np.asarray(data)
        if data.ndim != 2:
            raise ConfigError("need a 2-D (channels, samples) array")
        self._ensure(data.shape[0], fs)
        return self._runner.push(data, timer=timer)

    def flush(self, timer=None) -> list[tuple[tuple[int, int], np.ndarray]]:
        """End the current record (acquisition gap or shutdown): clamp the
        right edge like batch execution and emit the deferred tail."""
        if self._runner is None:
            return []
        return self._runner.flush(timer=timer)

    def reset(self) -> None:
        """Forget the current record; the next file starts a new one."""
        self._runner = None
        self.fs = None
        self.n_channels = None

    # -- checkpoint/resume --------------------------------------------------
    def export_state(self) -> dict | None:
        """Carried state of the live record, or ``None`` between records."""
        if self._runner is None:
            return None
        return self._runner.export_state()

    def import_state(self, payload: dict, tail: np.ndarray) -> None:
        """Rebuild the runner from a checkpoint plus the re-read tail."""
        n_channels = int(payload["n_channels"])
        fs = float(payload["fs"])
        runner = self._build(n_channels, fs)
        runner.import_state(payload, tail)
        self._runner = runner
        self.n_channels = n_channels
        self.fs = fs
