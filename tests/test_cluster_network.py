"""Tests for the interconnect cost model."""

import math

import pytest

from repro.cluster.network import NetworkModel
from repro.errors import ConfigError


@pytest.fixture
def net():
    return NetworkModel(
        latency=1e-6, bandwidth=1e9, intra_latency=1e-7, intra_bandwidth=1e10
    )


class TestP2P:
    def test_latency_only(self, net):
        assert net.p2p_time(0) == pytest.approx(1e-6)

    def test_alpha_beta(self, net):
        assert net.p2p_time(10**9) == pytest.approx(1e-6 + 1.0)

    def test_intra_node_faster(self, net):
        assert net.p2p_time(2**20, same_node=True) < net.p2p_time(2**20)

    def test_negative_size_rejected(self, net):
        with pytest.raises(ConfigError):
            net.p2p_time(-1)

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ConfigError):
            NetworkModel(latency=-1)


class TestCollectives:
    def test_bcast_pipelined_form(self, net):
        """Latency scales with tree depth; the (chunk-pipelined) payload
        bandwidth term is paid once."""
        n = 2**20
        t8 = net.bcast_time(n, 8)
        assert t8 == pytest.approx(3 * net.latency + n / net.bandwidth)

    def test_bcast_single_rank_free(self, net):
        assert net.bcast_time(2**20, 1) == 0.0

    def test_bcast_nonpower_of_two(self, net):
        n = 1024
        assert net.bcast_time(n, 90) == pytest.approx(
            math.ceil(math.log2(90)) * net.latency + n / net.bandwidth
        )

    def test_bcast_grows_with_p(self, net):
        n = 2**20
        assert net.bcast_time(n, 1024) > net.bcast_time(n, 16)

    def test_allreduce_is_reduce_plus_bcast(self, net):
        n = 4096
        assert net.allreduce_time(n, 16) == pytest.approx(
            net.reduce_time(n, 16) + net.bcast_time(n, 16)
        )

    def test_barrier_latency_only(self, net):
        assert net.barrier_time(16) == pytest.approx(4 * net.latency)
        assert net.barrier_time(1) == 0.0

    def test_gather_scales_with_total_bytes(self, net):
        assert net.gather_time(1000, 64) > net.gather_time(1000, 8)
        assert net.gather_time(1000, 1) == 0.0

    def test_scatter_mirrors_gather(self, net):
        assert net.scatter_time(512, 32) == pytest.approx(net.gather_time(512, 32))

    def test_allgather_ring(self, net):
        n = 2048
        assert net.allgather_time(n, 10) == pytest.approx(9 * net.p2p_time(n))

    def test_alltoall_rounds(self, net):
        n = 2048
        assert net.alltoall_time(n, 10) == pytest.approx(9 * net.p2p_time(n))
        assert net.alltoall_time(n, 1) == 0.0

    def test_invalid_size_rejected(self, net):
        with pytest.raises(ConfigError):
            net.bcast_time(100, 0)

    def test_key_paper_inequality(self, net):
        """The core claim behind communication-avoiding I/O: for n files
        over p ranks, n broadcasts of (chunk) data cost much more than one
        all-to-all exchange of the same volume."""
        p = 90
        n_files = 720
        file_bytes = 700 * 2**20 // 100  # scaled file
        per_rank_share = file_bytes // p
        collective = n_files * net.bcast_time(file_bytes, p)
        # each rank reads n/p files then one alltoallv of shares
        avoiding = net.alltoallv_time(per_rank_share * (n_files // p), p)
        assert collective > 10 * avoiding
