"""Chunk sources — streaming time-blocks out of VCA/LAV/arrays.

The streaming execution core (:mod:`repro.core.pipeline`) never holds a
whole recording: it pulls ``(channels, time)`` blocks on demand through a
:class:`ChunkSource`.  Sources exist for in-memory arrays, open hdf5lite
datasets and LAVs, and VCA files; the VCA path threads the hdf5lite
:class:`~repro.hdf5lite.cache.BlockCache` / :class:`~repro.hdf5lite.cache.FilePool`
through, so the halo (ghost-zone) re-reads that overlap-aware chunking
issues are absorbed by the page cache instead of hitting the backend
twice.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.errors import ConfigError, ReproError, StorageError
from repro.utils.iostats import IOStats


def iter_intervals(total: int, chunk: int) -> Iterator[tuple[int, int]]:
    """Half-open core intervals ``[k*chunk, (k+1)*chunk)`` tiling
    ``range(total)``; the final interval is ragged when ``chunk`` does not
    divide ``total``."""
    if total < 0:
        raise ConfigError("total must be >= 0")
    if chunk < 1:
        raise ConfigError("chunk must be >= 1")
    for lo in range(0, total, chunk):
        yield lo, min(total, lo + chunk)


def auto_chunk_samples(
    n_channels: int,
    total: int | None = None,
    budget_bytes: int = 64 << 20,
    itemsize: int = 8,
    floor: int = 4096,
) -> int:
    """A chunk length (time samples) whose float64 block fits ``budget_bytes``.

    Never below ``floor`` (tiny chunks would drown in halo overlap) and
    never above ``total`` when given.
    """
    if n_channels < 1:
        raise ConfigError("n_channels must be >= 1")
    chunk = max(floor, budget_bytes // max(1, n_channels * itemsize))
    if total is not None:
        chunk = min(chunk, max(1, total))
    return int(chunk)


class ChunkSource:
    """A 2-D ``(channels, time)`` series that yields time-blocks on demand.

    Concrete sources implement :meth:`read_rows`; ``read`` is the common
    all-channels case.  ``bytes_streamed`` accumulates the float64 bytes
    handed out — the executor's denominator for read-amplification, and a
    backend-independent counterpart to :class:`~repro.utils.iostats.IOStats`
    byte counts.
    """

    n_channels: int = 0
    n_samples: int = 0
    fs: float = 0.0

    def __init__(self) -> None:
        self.bytes_streamed = 0

    def read_rows(self, r0: int, r1: int, t0: int, t1: int) -> np.ndarray:
        raise NotImplementedError

    def read(self, t0: int, t1: int) -> np.ndarray:
        return self.read_rows(0, self.n_channels, t0, t1)

    def read_strided(
        self, r0: int, r1: int, t0: int, t1: int, tstep: int = 1
    ) -> np.ndarray:
        """Rows ``[r0, r1)``, every ``tstep``-th sample of ``[t0, t1)``.

        The base implementation reads the bounding block and subsamples in
        memory; sources backed by sliceable datasets override this to push
        the stride into the storage layer so only the lattice's bytes move.
        """
        if tstep < 1:
            raise ConfigError("tstep must be >= 1")
        if tstep == 1:
            return self.read_rows(r0, r1, t0, t1)
        block = self.read_rows(r0, r1, t0, t1)[:, ::tstep]
        return np.ascontiguousarray(block)

    def _check(self, r0: int, r1: int, t0: int, t1: int) -> None:
        if not (0 <= r0 <= r1 <= self.n_channels):
            raise ConfigError(
                f"row range [{r0}, {r1}) outside {self.n_channels} channels"
            )
        if not (0 <= t0 <= t1 <= self.n_samples):
            raise ConfigError(
                f"time range [{t0}, {t1}) outside {self.n_samples} samples"
            )

    def close(self) -> None:  # sources owning handles override
        pass

    def __enter__(self) -> "ChunkSource":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ArraySource(ChunkSource):
    """A chunk source over an in-memory ``(channels, time)`` array."""

    def __init__(self, data: np.ndarray, fs: float = 0.0):
        super().__init__()
        data = np.asarray(data)
        if data.ndim != 2:
            raise ConfigError("ArraySource needs a 2-D (channels, time) array")
        self._data = data
        self.n_channels, self.n_samples = data.shape
        self.fs = float(fs)

    def read_rows(self, r0: int, r1: int, t0: int, t1: int) -> np.ndarray:
        self._check(r0, r1, t0, t1)
        block = np.asarray(self._data[r0:r1, t0:t1], dtype=np.float64)
        self.bytes_streamed += block.nbytes
        return block

    def read_strided(
        self, r0: int, r1: int, t0: int, t1: int, tstep: int = 1
    ) -> np.ndarray:
        if tstep < 1:
            raise ConfigError("tstep must be >= 1")
        self._check(r0, r1, t0, t1)
        block = np.ascontiguousarray(
            np.asarray(self._data[r0:r1, t0:t1:tstep], dtype=np.float64)
        )
        self.bytes_streamed += block.nbytes
        return block


class DatasetSource(ChunkSource):
    """A chunk source over anything sliceable with ``shape`` — an hdf5lite
    :class:`~repro.hdf5lite.dataset.Dataset`, a
    :class:`~repro.storage.lav.LAV`, or any 2-D array-like."""

    def __init__(self, dataset: object, fs: float = 0.0):
        super().__init__()
        shape = getattr(dataset, "shape", None)
        if shape is None or len(shape) != 2:
            raise ConfigError("DatasetSource needs a 2-D dataset with .shape")
        self._dataset = dataset
        self.n_channels, self.n_samples = int(shape[0]), int(shape[1])
        self.fs = float(fs)

    def read_rows(self, r0: int, r1: int, t0: int, t1: int) -> np.ndarray:
        self._check(r0, r1, t0, t1)
        block = np.asarray(self._dataset[r0:r1, t0:t1], dtype=np.float64)
        self.bytes_streamed += block.nbytes
        return block

    def read_strided(
        self, r0: int, r1: int, t0: int, t1: int, tstep: int = 1
    ) -> np.ndarray:
        if tstep < 1:
            raise ConfigError("tstep must be >= 1")
        self._check(r0, r1, t0, t1)
        # The dataset slice carries the stride all the way down: hdf5lite
        # reads only the lattice's byte runs (and skips missed chunks).
        block = np.ascontiguousarray(
            np.asarray(self._dataset[r0:r1, t0:t1:tstep], dtype=np.float64)
        )
        self.bytes_streamed += block.nbytes
        return block


class VCASource(DatasetSource):
    """A chunk source that owns an open VCA handle.

    ``pool`` / ``cache`` are the PR-1 read-side knobs: with a pool the VCA
    and its per-minute sources stay open across chunks, and with a cache
    the overlap (halo) samples that adjacent chunks both need are served
    from memory the second time.

    ``on_error`` / ``fill_value`` are the degraded-read knobs forwarded to
    :func:`~repro.storage.vca.open_vca`; when masking, the handle's
    :class:`~repro.storage.gaps.GapMap` is exposed as :attr:`gaps`.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        iostats: IOStats | None = None,
        pool: object = None,
        cache: object = None,
        on_error: str = "raise",
        fill_value: float = float("nan"),
    ):
        from repro.storage.vca import open_vca

        self._handle = open_vca(
            path,
            iostats=iostats,
            pool=pool,
            cache=cache,
            on_error=on_error,
            fill_value=fill_value,
        )
        try:
            super().__init__(
                self._handle.dataset, fs=self._handle.metadata.sampling_frequency
            )
        except (ReproError, OSError):
            self._handle.close()
            raise
        self.path = os.fspath(path)
        self.metadata = self._handle.metadata

    @property
    def gaps(self):
        """Masked spans accumulated by the degraded-read handle."""
        return self._handle.gaps

    def close(self) -> None:
        self._handle.close()


class SlicedSource(ChunkSource):
    """A pushdown view of another source: a channel range and a time stride.

    This is what the query optimizer lowers ``select_channels`` /
    ``decimate`` into: channel row ``r`` of this source is row
    ``channel_lo + r`` of ``inner``, and time sample ``t`` is inner sample
    ``t * step`` — the subsample lattice is anchored at inner sample 0, so
    reading through the view is bit-identical to subsampling in memory.
    ``bytes_streamed`` counts the bytes handed out (the reduced volume).
    """

    def __init__(
        self,
        inner: ChunkSource,
        channel_lo: int = 0,
        channel_hi: int | None = None,
        step: int = 1,
        owns_inner: bool = False,
    ):
        super().__init__()
        if channel_hi is None:
            channel_hi = inner.n_channels
        if not (0 <= channel_lo < channel_hi <= inner.n_channels):
            raise ConfigError(
                f"channel range [{channel_lo}, {channel_hi}) outside "
                f"{inner.n_channels} channels"
            )
        if step < 1:
            raise ConfigError("step must be >= 1")
        self._inner = inner
        self.channel_lo = int(channel_lo)
        self.channel_hi = int(channel_hi)
        self.step = int(step)
        self.n_channels = self.channel_hi - self.channel_lo
        self.n_samples = -(-inner.n_samples // self.step)
        self.fs = inner.fs / self.step if inner.fs else inner.fs
        self._owns = bool(owns_inner)

    @property
    def inner(self) -> ChunkSource:
        return self._inner

    @property
    def gaps(self):
        """Degraded-read gap map of the wrapped source (raw coordinates)."""
        return getattr(self._inner, "gaps", None)

    @property
    def path(self):
        """The wrapped source's path, so gap/profile labels survive
        pushdown unchanged."""
        return getattr(self._inner, "path", None)

    def read_rows(self, r0: int, r1: int, t0: int, t1: int) -> np.ndarray:
        self._check(r0, r1, t0, t1)
        if t1 <= t0 or r1 <= r0:
            return np.empty((r1 - r0, max(0, t1 - t0)), dtype=np.float64)
        raw_t0 = t0 * self.step
        raw_t1 = (t1 - 1) * self.step + 1
        block = self._inner.read_strided(
            r0 + self.channel_lo,
            r1 + self.channel_lo,
            raw_t0,
            raw_t1,
            self.step,
        )
        self.bytes_streamed += block.nbytes
        return block

    def close(self) -> None:
        if self._owns:
            self._inner.close()


class WindowSource(ChunkSource):
    """A time-window view ``[t0, t1)`` of another source.

    Local sample ``t`` is inner sample ``t0 + t``; channels pass through
    unchanged.  This is how the serving layer scopes a request to its
    window *before* planner lowering, so ``select_channels``/``decimate``
    pushdown — and the subsample lattice, which
    :class:`~repro.core.graph.SubsampleOp` anchors at input sample 0 —
    all operate in window coordinates (anchored at the window start).
    """

    def __init__(
        self,
        inner: ChunkSource,
        t0: int,
        t1: int,
        owns_inner: bool = False,
    ):
        super().__init__()
        if not (0 <= t0 < t1 <= inner.n_samples):
            raise ConfigError(
                f"window [{t0}, {t1}) outside {inner.n_samples} samples"
            )
        self._inner = inner
        self.t0 = int(t0)
        self.t1 = int(t1)
        self.n_channels = inner.n_channels
        self.n_samples = self.t1 - self.t0
        self.fs = inner.fs
        self._owns = bool(owns_inner)

    @property
    def inner(self) -> ChunkSource:
        return self._inner

    @property
    def gaps(self):
        """Degraded-read gap map of the wrapped source (raw coordinates)."""
        return getattr(self._inner, "gaps", None)

    @property
    def path(self):
        return getattr(self._inner, "path", None)

    def read_rows(self, r0: int, r1: int, t0: int, t1: int) -> np.ndarray:
        self._check(r0, r1, t0, t1)
        block = self._inner.read_rows(r0, r1, self.t0 + t0, self.t0 + t1)
        self.bytes_streamed += block.nbytes
        return block

    def read_strided(
        self, r0: int, r1: int, t0: int, t1: int, tstep: int = 1
    ) -> np.ndarray:
        self._check(r0, r1, t0, t1)
        block = self._inner.read_strided(
            r0, r1, self.t0 + t0, self.t0 + t1, tstep
        )
        self.bytes_streamed += block.nbytes
        return block

    def close(self) -> None:
        if self._owns:
            self._inner.close()


def open_stream(
    path: str | os.PathLike,
    iostats: IOStats | None = None,
    pool: object = None,
    cache: object = None,
    on_error: str = "raise",
    fill_value: float = float("nan"),
) -> VCASource:
    """Open a VCA file as a streaming chunk source (context manager)."""
    return VCASource(
        path,
        iostats=iostats,
        pool=pool,
        cache=cache,
        on_error=on_error,
        fill_value=fill_value,
    )


def as_source(source: object, fs: float | None = None) -> ChunkSource:
    """Coerce ``source`` into a :class:`ChunkSource`.

    Accepts an existing source (returned as-is), a numpy array, an open
    :class:`~repro.storage.vca.VCAHandle`, a :class:`~repro.storage.lav.LAV`,
    an hdf5lite dataset, or a VCA file path (which opens a handle the
    caller must ``close``).  ``fs`` overrides/supplies the sampling rate
    for sources that do not carry one.
    """
    if isinstance(source, ChunkSource):
        return source
    if isinstance(source, np.ndarray):
        return ArraySource(source, fs=fs if fs is not None else 0.0)
    if isinstance(source, (str, os.PathLike)):
        return open_stream(source)
    from repro.storage.vca import VCAHandle

    if isinstance(source, VCAHandle):
        rate = fs if fs is not None else source.metadata.sampling_frequency
        return DatasetSource(source.dataset, fs=rate)
    if hasattr(source, "shape") and hasattr(source, "__getitem__"):
        return DatasetSource(source, fs=fs if fs is not None else 0.0)
    raise StorageError(f"cannot stream from {type(source).__name__}")
