"""Property-based tests for the simulated MPI runtime.

Collective semantics are validated against single-process numpy
reference computations over random payloads, rank counts, and roots.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import MAX, MIN, SUM, run_spmd

sizes = st.integers(1, 6)
payload_lens = st.integers(1, 16)


@settings(max_examples=25, deadline=None)
@given(sizes, st.integers(0, 2**31 - 1))
def test_allreduce_sum_matches_numpy(size, seed):
    rng = np.random.default_rng(seed)
    contributions = rng.normal(size=(size, 5))

    def fn(comm):
        return comm.allreduce(contributions[comm.rank], SUM)

    result = run_spmd(fn, size)
    expected = contributions.sum(axis=0)
    for out in result.results:
        np.testing.assert_allclose(out, expected, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(sizes, st.integers(0, 2**31 - 1), st.sampled_from([MAX, MIN]))
def test_allreduce_extrema(size, seed, op):
    rng = np.random.default_rng(seed)
    values = rng.integers(-1000, 1000, size=size)

    def fn(comm):
        return comm.allreduce(int(values[comm.rank]), op)

    result = run_spmd(fn, size)
    expected = max(values) if op is MAX else min(values)
    assert all(r == expected for r in result.results)


@settings(max_examples=25, deadline=None)
@given(sizes, st.data())
def test_bcast_from_every_root(size, data):
    root = data.draw(st.integers(0, size - 1))
    payload = data.draw(st.lists(st.integers(-100, 100), max_size=5))

    def fn(comm):
        return comm.bcast(payload if comm.rank == root else None, root=root)

    result = run_spmd(fn, size)
    assert all(r == payload for r in result.results)


@settings(max_examples=25, deadline=None)
@given(sizes, st.integers(0, 2**31 - 1))
def test_scatter_gather_roundtrip(size, seed):
    rng = np.random.default_rng(seed)
    items = [float(v) for v in rng.normal(size=size)]

    def fn(comm):
        mine = comm.scatter(items if comm.rank == 0 else None, root=0)
        return comm.gather(mine, root=0)

    result = run_spmd(fn, size)
    assert result.results[0] == items


@settings(max_examples=25, deadline=None)
@given(sizes, st.integers(0, 2**31 - 1))
def test_alltoall_is_transpose(size, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 1000, size=(size, size))

    def fn(comm):
        return comm.alltoall([int(v) for v in matrix[comm.rank]])

    result = run_spmd(fn, size)
    for rank, row in enumerate(result.results):
        np.testing.assert_array_equal(row, matrix[:, rank])


@settings(max_examples=25, deadline=None)
@given(sizes)
def test_allgather_order(size):
    def fn(comm):
        return comm.allgather(comm.rank * 10)

    result = run_spmd(fn, size)
    expected = [r * 10 for r in range(size)]
    assert all(out == expected for out in result.results)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 5), st.integers(0, 2**31 - 1))
def test_ring_pass_accumulates(size, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 100, size=size)

    def fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        if comm.rank == 0:
            comm.send(int(values[0]), dest=right)
            return comm.recv(source=left)
        acc = comm.recv(source=left)
        comm.send(acc + int(values[comm.rank]), dest=right)
        return None

    result = run_spmd(fn, size)
    assert result.results[0] == int(values.sum())


@settings(max_examples=20, deadline=None)
@given(sizes, st.integers(0, 2**31 - 1))
def test_clocks_monotone_and_consistent(size, seed):
    """Virtual clocks never run backwards, and after a barrier all ranks
    agree on the time."""
    rng = np.random.default_rng(seed)
    delays = rng.uniform(0, 1, size=size)

    def fn(comm):
        t0 = comm.clock.now
        comm.clock.advance(float(delays[comm.rank]), phase="compute")
        comm.barrier()
        t1 = comm.clock.now
        assert t1 >= t0
        return t1

    result = run_spmd(fn, size)
    assert len({round(t, 9) for t in result.results}) == 1
    assert result.results[0] >= float(delays.max())
