"""The MATLAB-style baseline pipeline (the Fig. 9 comparison target).

The geophysics team's production code (per the paper) is MATLAB that

* processes the array **stage at a time**, materialising every
  intermediate,
* iterates channels in interpreted loops for the hand-written stages
  (only the built-in kernels — FFT, BLAS — use MATLAB's implicit
  threading), so "it is difficult for the whole MATLAB code pipeline to
  be parallelized",

whereas DASSA parallelises the *entire* fused pipeline across threads.
Both entry points here execute the *same* operator graph
(:func:`~repro.core.interferometry.interferometry_operators`) under the
two Fig. 9 policies: ``matlab_style_pipeline`` via
:func:`~repro.core.pipeline.run_materialized` (stage at a time,
interpreted channel loops, whole-array intermediates) and
``dassa_pipeline`` via :class:`~repro.core.pipeline.StreamPipeline`
(fused chain, thread-parallel channel blocks, shared master spectrum).
``Fig9Model`` is the corresponding analytic (Amdahl +
interpreter-overhead) model used to project the paper-scale 16x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.interferometry import (
    InterferometryConfig,
    interferometry_operators,
    master_spectrum,
)
from repro.core.pipeline import PipelineResult, StreamPipeline, run_materialized
from repro.errors import ConfigError
from repro.utils.timer import Timer


def matlab_style_pipeline(
    data: np.ndarray,
    config: InterferometryConfig,
    timer: Timer | None = None,
) -> np.ndarray:
    """Algorithm 3 the way the MATLAB codes run it: stage by stage over
    the whole array, channel loops interpreted, every intermediate
    materialised."""
    result = matlab_style_run(data, config, timer=timer)
    return result.output


def matlab_style_run(
    data: np.ndarray,
    config: InterferometryConfig,
    timer: Timer | None = None,
) -> PipelineResult:
    """Like :func:`matlab_style_pipeline` but returning the full
    :class:`~repro.core.pipeline.PipelineResult` (whole-array
    peak-resident bytes included — the materialising side of the Fig. 9
    memory comparison)."""
    return run_materialized(
        interferometry_operators(config),
        data,
        fs=config.fs,
        timer=timer,
        interpreted=True,
    )


def dassa_pipeline(
    data: np.ndarray,
    config: InterferometryConfig,
    threads: int = 12,
    timer: Timer | None = None,
) -> np.ndarray:
    """The DASSA execution of the same analysis: the whole fused pipeline
    runs on each thread's channel block concurrently (HAEE on one node),
    with the master spectrum computed once and shared."""
    result = dassa_run(data, config, threads=threads, timer=timer)
    return result.output


def dassa_run(
    data: np.ndarray,
    config: InterferometryConfig,
    threads: int = 12,
    timer: Timer | None = None,
    chunk_samples: int | None = None,
) -> PipelineResult:
    """The streaming-executor form of :func:`dassa_pipeline`.

    ``chunk_samples=None`` processes one whole-record chunk (the paper's
    single-node setting: the node's slab is in memory and only channels
    are split across threads); a finite value bounds the resident block
    as well — the same graph under a different chunking policy.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("need a 2-D (channels, time) array")
    if threads < 1:
        raise ConfigError("threads must be >= 1")
    # Master spectrum once (shared across threads, not duplicated).
    mc = config.master_channel
    mfft = master_spectrum(data[mc : mc + 1], config)
    pipe = StreamPipeline(interferometry_operators(config, master_fft=mfft))
    return pipe.run(
        data,
        chunk_samples=chunk_samples,
        threads=threads,
        timer=timer,
        fs=config.fs,
    )


@dataclass(frozen=True)
class Fig9Model:
    """Analytic single-node model of the MATLAB-vs-DASSA gap.

    MATLAB: only the built-in-kernel fraction ``parallel_fraction`` of
    the work uses the node's threads (Amdahl), and the interpreted
    stage-at-a-time structure costs ``interpreter_factor`` extra on the
    serial remainder.  DASSA: the whole pipeline is thread-parallel with
    ApplyMT's small coordination overhead.
    """

    threads: int = 12
    parallel_fraction: float = 0.38
    interpreter_factor: float = 2.3
    thread_coordination: float = 0.03

    def matlab_time(self, work_seconds: float) -> float:
        f = self.parallel_fraction
        serial = (1.0 - f) * work_seconds * self.interpreter_factor
        parallel = f * work_seconds / self.threads
        return serial + parallel

    def dassa_time(self, work_seconds: float) -> float:
        overhead = 1.0 + self.thread_coordination * math.log2(max(2, self.threads))
        return work_seconds / self.threads * overhead

    def speedup(self, work_seconds: float = 1.0) -> float:
        """DASSA's advantage; ~16x with the calibrated defaults."""
        return self.matlab_time(work_seconds) / self.dassa_time(work_seconds)
