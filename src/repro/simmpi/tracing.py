"""Per-operation tracing of the simulated MPI runtime.

Every communication or I/O charge appends a :class:`TraceEvent`.  The
trace serves two purposes:

* benchmark reporting (how much virtual time went to sends vs broadcasts
  vs reads), and
* **trace equivalence tests**: the discrete-event evaluation used for
  1000+-rank experiments must generate the same (op, bytes) schedule the
  threaded runtime actually executed at small rank counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One traced operation on one rank."""

    rank: int
    op: str  # "send", "recv", "bcast", "alltoallv", "read", ...
    nbytes: int
    peer: int  # destination/source/root; -1 for symmetric collectives
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Collects events for a single rank (thread-confined, no locking)."""

    __slots__ = ("rank", "events", "enabled")

    def __init__(self, rank: int, enabled: bool = True):
        self.rank = rank
        self.events: list[TraceEvent] = []
        self.enabled = enabled

    def record(self, op: str, nbytes: int, peer: int, t_start: float, t_end: float) -> None:
        if self.enabled:
            self.events.append(TraceEvent(self.rank, op, nbytes, peer, t_start, t_end))

    def by_op(self) -> dict[str, float]:
        """Total duration per op kind."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.op] = totals.get(event.op, 0.0) + event.duration
        return totals

    def schedule(self) -> list[tuple[str, int, int]]:
        """The (op, nbytes, peer) sequence — the timing-free schedule."""
        return [(e.op, e.nbytes, e.peer) for e in self.events]
