"""Checks fixture: simmpi protocol violations.

Expected: two CCM001 (a barrier only rank 0 enters; a reduce reached
only by rank 0 through a helper — the interprocedural case), one
CCM002 (a send whose peer arm never receives), and one CCM003 (every
rank blocks in recv before any rank sends).
"""


def lopsided_barrier(comm, rank):
    if rank == 0:
        comm.barrier()  # only rank 0 enters the collective
    else:
        prepare(comm)


def prepare(comm):
    return comm.size


def reduce_through_helper(comm, rank):
    if rank == 0:
        collect(comm)  # reaches comm.reduce one call deep
    else:
        idle()


def collect(comm):
    return comm.reduce(0, op="sum")


def idle():
    return None


def unmatched_send(comm, rank):
    if rank == 0:
        comm.send(b"work", dest=1, tag=7)  # nobody ever receives this
    else:
        spin()


def spin():
    return 0


def recv_before_send(comm, peer):
    payload = comm.recv(source=peer, tag=3)  # every rank blocks here first
    comm.send(payload, dest=peer, tag=3)
    return payload
