"""Execution engines: pure-MPI ArrayUDF vs. the Hybrid (HAEE) engine.

Two modes:

* :meth:`BaseEngine.run` — actually execute a UDF over a merged DAS
  array with simulated MPI ranks (threads), ghost-zone reads, ApplyMT,
  and result assembly.  Used at test scale.
* :meth:`BaseEngine.estimate` — evaluate the same execution's virtual
  time and memory against the machine model at any scale.  This is what
  reproduces Fig. 8 (the pure-MPI OOM at 91 nodes and its read-time
  blow-up at 728 nodes) and the Fig. 11 scaling curves.

The engines differ only in process/thread geometry:

=============  ==============  =================  ====================
Engine         ranks per node  threads per rank   master-channel copies
=============  ==============  =================  ====================
MPIEngine      cores (16)      1                  one per rank
HybridEngine   1               cores (16)         one per node
=============  ==============  =================  ====================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.arrayudf.apply_mt import apply_mt
from repro.arrayudf.partition import partition_rows
from repro.arrayudf.stencil import Stencil
from repro.cluster.machine import ClusterSpec
from repro.cluster.memory import MemoryTracker
from repro.errors import ConfigError, OutOfMemoryError
from repro.simmpi.executor import run_spmd
from repro.utils.units import format_bytes


@dataclass(frozen=True)
class ComputeModel:
    """Converts processed samples into virtual compute seconds.

    ``seconds_per_sample`` is the calibrated per-input-sample cost of the
    full UDF pipeline on one core; ``thread_coordination`` is the
    fractional overhead HAEE pays per doubling of threads (Algorithm 1's
    barrier + merge), the effect the paper cites for pure-MPI ArrayUDF's
    slight compute edge at mid scale."""

    seconds_per_sample: float = 2.0e-8
    thread_coordination: float = 0.03

    def time(self, n_samples: float, threads: int = 1) -> float:
        if n_samples < 0 or threads < 1:
            raise ConfigError("invalid compute model inputs")
        serial = n_samples * self.seconds_per_sample
        if threads == 1:
            return serial
        return serial / threads * (1.0 + self.thread_coordination * math.log2(threads))


@dataclass(frozen=True)
class WorkloadSpec:
    """Scale parameters of an analysis run (estimate mode).

    ``master_bytes`` is the cross-correlation master channel each worker
    needs resident (Algorithm 3's ``Mfft``); ``working_multiplier`` is
    the pipeline's working set in units of its input bytes (float64
    intermediates + FFT scratch ≈ 6x a float32 input).
    """

    total_bytes: int
    n_files: int
    master_bytes: int = 0
    working_multiplier: float = 6.0
    output_ratio: float = 0.1  # output bytes per input byte
    itemsize: int = 4

    @property
    def total_samples(self) -> float:
        return self.total_bytes / self.itemsize

    @property
    def file_bytes(self) -> int:
        return self.total_bytes // max(1, self.n_files)


@dataclass
class EngineReport:
    """Outcome of one engine configuration at one scale."""

    engine: str
    nodes: int
    ranks_per_node: int
    threads_per_rank: int
    read_time: float = 0.0
    compute_time: float = 0.0
    write_time: float = 0.0
    peak_node_bytes: int = 0
    n_read_requests: int = 0
    failed: str | None = None
    result: Any = None

    @property
    def ranks(self) -> int:
        return self.nodes * self.ranks_per_node

    @property
    def cores_used(self) -> int:
        return self.nodes * self.ranks_per_node * self.threads_per_rank

    @property
    def total_time(self) -> float:
        return self.read_time + self.compute_time + self.write_time

    def summary(self) -> str:
        if self.failed:
            return f"{self.engine}@{self.nodes}n: FAILED ({self.failed})"
        return (
            f"{self.engine}@{self.nodes}n: read={self.read_time:.2f}s "
            f"compute={self.compute_time:.2f}s write={self.write_time:.2f}s "
            f"peak={format_bytes(self.peak_node_bytes)}"
        )


class BaseEngine:
    """Shared machinery of the two engines."""

    name = "base"

    def __init__(
        self,
        cluster: ClusterSpec,
        nodes: int,
        ranks_per_node: int,
        threads_per_rank: int,
        compute: ComputeModel | None = None,
    ):
        if nodes < 1 or nodes > cluster.nodes:
            raise ConfigError(
                f"{nodes} nodes requested but cluster has {cluster.nodes}"
            )
        if ranks_per_node < 1 or threads_per_rank < 1:
            raise ConfigError("ranks/threads must be >= 1")
        if ranks_per_node * threads_per_rank > cluster.node.cores:
            raise ConfigError(
                f"{ranks_per_node} ranks x {threads_per_rank} threads exceed "
                f"{cluster.node.cores} cores/node"
            )
        self.cluster = cluster
        self.nodes = nodes
        self.ranks_per_node = ranks_per_node
        self.threads_per_rank = threads_per_rank
        self.compute = compute if compute is not None else ComputeModel()

    @property
    def ranks(self) -> int:
        return self.nodes * self.ranks_per_node

    # -- estimate mode ---------------------------------------------------------
    def plan_memory(self, workload: WorkloadSpec) -> MemoryTracker:
        """Account one node's memory for this geometry; raises
        :class:`OutOfMemoryError` exactly when an MPI job would die."""
        mem = MemoryTracker(self.cluster.node.memory, 1)
        node_input = workload.total_bytes // self.nodes
        mem.allocate(0, node_input, "input-block")
        if self.threads_per_rank == 1:
            # Pure MPI: every rank materialises its own float64 pipeline
            # over its whole block, and its own master-channel copy.
            mem.allocate(
                0, int(node_input * workload.working_multiplier), "working"
            )
            mem.allocate(
                0, self.ranks_per_node * workload.master_bytes, "master-copies"
            )
        else:
            # Hybrid: threads stream channel-by-channel; the working set
            # is per-thread channel buffers, and one shared master copy.
            mem.allocate(0, workload.master_bytes, "master")
            per_thread = int(workload.master_bytes * workload.working_multiplier)
            mem.allocate(
                0,
                self.ranks_per_node * self.threads_per_rank * per_thread,
                "thread-working",
            )
        return mem

    def estimate_read_time(
        self, workload: WorkloadSpec, read_pattern: str = "native"
    ) -> tuple[float, int]:
        """Read-phase time under one of two access patterns.

        ``"native"`` — ArrayUDF's own I/O (the Fig. 8 comparison): every
        rank pulls its channel block from each of the n files, p x n
        requests total, bounded by the slowest of (per-rank serial
        stream, file-system IOPS, aggregate bandwidth).

        ``"comm-avoiding"`` — DASSA's storage engine (Fig. 11): each rank
        reads whole files (n requests total) and one all-to-all
        redistributes, evaluated by the storage DES + network model.
        """
        storage = self.cluster.storage
        p = self.ranks
        n = workload.n_files
        if read_pattern == "comm-avoiding":
            from repro.storage.model import model_communication_avoiding

            cost = model_communication_avoiding(
                self.cluster, p, n, workload.file_bytes
            )
            return cost.total, cost.n_requests
        if read_pattern != "native":
            raise ConfigError(f"unknown read pattern {read_pattern!r}")
        per_rank_bytes = workload.total_bytes / p
        per_request = storage.open_overhead + storage.per_request_overhead
        per_rank_serial = n * per_request + per_rank_bytes / storage.client_bandwidth
        iops_bound = p * n * per_request / storage.ost_count
        bw_bound = workload.total_bytes / storage.aggregate_bandwidth
        return max(per_rank_serial, iops_bound, bw_bound), p * n

    def estimate_write_time(self, workload: WorkloadSpec) -> float:
        """Output written as one big collective array — identical for both
        engines (the paper's write bars match)."""
        storage = self.cluster.storage
        output_bytes = workload.total_bytes * workload.output_ratio
        per_rank = output_bytes / self.ranks
        return max(
            output_bytes / storage.aggregate_bandwidth,
            per_rank / storage.client_bandwidth
            + storage.per_request_overhead
            + storage.open_overhead,
            self.ranks * storage.per_request_overhead / storage.ost_count,
        )

    def estimate(
        self, workload: WorkloadSpec, read_pattern: str = "native"
    ) -> EngineReport:
        """Virtual-time/memory evaluation of this geometry at any scale."""
        report = EngineReport(
            engine=self.name,
            nodes=self.nodes,
            ranks_per_node=self.ranks_per_node,
            threads_per_rank=self.threads_per_rank,
        )
        try:
            mem = self.plan_memory(workload)
        except OutOfMemoryError as exc:
            report.failed = f"out of memory: {exc}"
            return report
        report.peak_node_bytes = mem.peak_node()[1]
        report.read_time, report.n_read_requests = self.estimate_read_time(
            workload, read_pattern
        )
        samples_per_worker = workload.total_samples / self.ranks
        report.compute_time = self.compute.time(
            samples_per_worker, self.threads_per_rank
        )
        report.write_time = self.estimate_write_time(workload)
        return report

    # -- real execution ------------------------------------------------------------
    def run(
        self,
        data_source: Any,
        udf: Callable[[Stencil], float],
        halo: int = 0,
        row_stride: int = 1,
        col_stride: int = 1,
        boundary: str = "error",
        assemble: bool = True,
    ) -> EngineReport:
        """Execute ``udf`` over a 2-D array source with this geometry.

        ``data_source`` is a numpy array, an hdf5lite :class:`Dataset`,
        or anything with ``shape`` + ``__getitem__`` (VCA dataset, LAV).
        Each rank reads its row block (+halo), runs ApplyMT with this
        engine's thread count, and rank 0 assembles the stacked output
        into ``report.result``.
        """
        shape = tuple(data_source.shape)
        if len(shape) != 2:
            raise ConfigError(f"need a 2-D source, got shape {shape}")
        p = self.ranks
        threads = self.threads_per_rank
        engine = self

        def rank_fn(comm):
            part = partition_rows(shape, p, comm.rank, halo=halo)
            block = np.asarray(data_source[part.read_row_lo : part.read_row_hi, :])
            comm.charge_io(
                engine.cluster.storage.sequential_read_time(
                    part.read_nbytes(), nrequests=1, nopens=1
                ),
                op="read",
                nbytes=part.read_nbytes(),
            )
            out = apply_mt(
                block,
                udf,
                threads=threads,
                core_rows=(part.core_offset, part.core_offset + part.core_rows),
                row_stride=row_stride,
                col_stride=col_stride,
                boundary=boundary,
            )
            comm.charge_compute(engine.compute.time(block.size, threads))
            if assemble:
                gathered = comm.gather(out, root=0)
                if comm.rank == 0:
                    return np.concatenate(gathered, axis=0)
                return None
            return out

        spmd = run_spmd(
            rank_fn,
            p,
            cluster=self.cluster,
            ranks_per_node=self.ranks_per_node,
        )
        report = EngineReport(
            engine=self.name,
            nodes=self.nodes,
            ranks_per_node=self.ranks_per_node,
            threads_per_rank=self.threads_per_rank,
        )
        phases = spmd.phase_totals()
        report.read_time = phases.get("io", 0.0)
        report.compute_time = phases.get("compute", 0.0)
        report.result = spmd.results[0] if assemble else spmd.results
        return report


    def run_chunked(
        self,
        data_source: Any,
        chunk_udf: Callable[[np.ndarray], np.ndarray],
        halo: int = 0,
        shared_state: Callable[[Any], Any] | None = None,
        output_path: str | None = None,
    ) -> EngineReport:
        """Execute a *vectorised* UDF over per-rank blocks.

        ``chunk_udf(block[, state])`` maps a rank's ``(rows, cols)`` read
        block (core rows only are kept from its output) to an output
        array whose first axis matches the block's core rows.  This is
        the batch execution interface production pipelines use (the
        authors' feature-extraction follow-up [32] calls it chunked
        processing); the per-cell :meth:`run` interface remains the
        literal ArrayUDF semantics.

        ``shared_state(data_source)`` is computed once on rank 0 and
        broadcast — the master-spectrum pattern of Algorithm 3.  With
        ``output_path``, rank outputs are written as one merged array
        (the paper's single-big-array write).
        """
        shape = tuple(data_source.shape)
        if len(shape) != 2:
            raise ConfigError(f"need a 2-D source, got shape {shape}")
        p = self.ranks
        engine = self

        def rank_fn(comm):
            state = None
            if shared_state is not None:
                state = shared_state(data_source) if comm.rank == 0 else None
                state = comm.bcast(state, root=0)
            part = partition_rows(shape, p, comm.rank, halo=halo)
            block = np.asarray(data_source[part.read_row_lo : part.read_row_hi, :])
            comm.charge_io(
                engine.cluster.storage.sequential_read_time(
                    part.read_nbytes(), nrequests=1, nopens=1
                ),
                op="read",
                nbytes=part.read_nbytes(),
            )
            out = chunk_udf(block, state) if shared_state is not None else chunk_udf(block)
            out = np.asarray(out)
            # Trim halo rows: the UDF's output rows align with block rows.
            if out.shape[0] == part.read_rows:
                out = out[part.core_offset : part.core_offset + part.core_rows]
            elif out.shape[0] != part.core_rows:
                raise ConfigError(
                    f"chunk UDF returned {out.shape[0]} rows for a block of "
                    f"{part.read_rows} read / {part.core_rows} core rows"
                )
            comm.charge_compute(engine.compute.time(block.size, engine.threads_per_rank))
            if output_path is not None:
                from repro.storage.parallel_write import write_output_parallel

                write_output_parallel(
                    comm,
                    output_path,
                    np.atleast_2d(out),
                    storage=engine.cluster.storage,
                )
            gathered = comm.gather(out, root=0)
            if comm.rank == 0:
                return np.concatenate(gathered, axis=0)
            return None

        spmd = run_spmd(
            rank_fn, p, cluster=self.cluster, ranks_per_node=self.ranks_per_node
        )
        report = EngineReport(
            engine=self.name,
            nodes=self.nodes,
            ranks_per_node=self.ranks_per_node,
            threads_per_rank=self.threads_per_rank,
        )
        phases = spmd.phase_totals()
        report.read_time = phases.get("io", 0.0)
        report.compute_time = phases.get("compute", 0.0)
        report.result = spmd.results[0]
        return report


class MPIEngine(BaseEngine):
    """Original ArrayUDF: one MPI rank per core, no threads."""

    name = "mpi-arrayudf"

    def __init__(
        self,
        cluster: ClusterSpec,
        nodes: int,
        ranks_per_node: int | None = None,
        compute: ComputeModel | None = None,
    ):
        super().__init__(
            cluster,
            nodes,
            ranks_per_node if ranks_per_node is not None else cluster.node.cores,
            threads_per_rank=1,
            compute=compute,
        )


class HybridEngine(BaseEngine):
    """HAEE: one MPI rank per node, OpenMP-style threads inside."""

    name = "hybrid-arrayudf"

    def __init__(
        self,
        cluster: ClusterSpec,
        nodes: int,
        threads_per_rank: int | None = None,
        compute: ComputeModel | None = None,
    ):
        super().__init__(
            cluster,
            nodes,
            ranks_per_node=1,
            threads_per_rank=(
                threads_per_rank if threads_per_rank is not None else cluster.node.cores
            ),
            compute=compute,
        )
