"""The MATLAB-style baseline pipeline (the Fig. 9 comparison target).

The geophysics team's production code (per the paper) is MATLAB that

* processes the array **stage at a time**, materialising every
  intermediate,
* iterates channels in interpreted loops for the hand-written stages
  (only the built-in kernels — FFT, BLAS — use MATLAB's implicit
  threading), so "it is difficult for the whole MATLAB code pipeline to
  be parallelized",

whereas DASSA parallelises the *entire* fused pipeline across threads.
``matlab_style_pipeline`` reproduces that structure faithfully — the
channel loops run the pure-Python/numpy filter recursion the way MATLAB
loops run interpreted statements — and ``dassa_pipeline`` is the fused,
thread-parallel counterpart.  ``Fig9Model`` is the corresponding
analytic (Amdahl + interpreter-overhead) model used to project the
paper-scale 16x.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.arrayudf.partition import partition_1d
from repro.core.interferometry import InterferometryConfig, interferometry_block
from repro.daslib import abscorr, detrend, fft, filtfilt, next_fast_len, resample
from repro.errors import ConfigError
from repro.utils.timer import Timer


def matlab_style_pipeline(
    data: np.ndarray,
    config: InterferometryConfig,
    timer: Timer | None = None,
) -> np.ndarray:
    """Algorithm 3 the way the MATLAB codes run it: stage by stage over
    the whole array, channel loops interpreted, every intermediate
    materialised."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("need a 2-D (channels, time) array")
    timer = timer if timer is not None else Timer()
    b, a = config.coefficients()
    n_channels = data.shape[0]

    with timer.phase("detrend"):
        detrended = np.empty_like(data)
        for channel in range(n_channels):  # interpreted channel loop
            detrended[channel] = detrend(data[channel])

    if config.taper_fraction > 0:
        with timer.phase("taper"):
            from repro.daslib import taper

            for channel in range(n_channels):
                detrended[channel] = taper(
                    detrended[channel], config.taper_fraction
                )

    with timer.phase("filtfilt"):
        filtered = np.empty_like(detrended)
        for channel in range(n_channels):
            # engine="numpy": the interpreted recursion, like a MATLAB
            # script loop (no compiled filter kernel).
            filtered[channel] = filtfilt(b, a, detrended[channel], engine="numpy")

    with timer.phase("resample"):
        out_len = -(-data.shape[1] // config.resample_q)
        resampled = np.empty((n_channels, out_len))
        for channel in range(n_channels):
            resampled[channel] = resample(filtered[channel], 1, config.resample_q)

    with timer.phase("fft"):
        nfft = next_fast_len(out_len)
        spectra = fft(resampled, n=nfft, axis=-1)  # built-in kernel: threaded

    with timer.phase("correlate"):
        master = spectra[config.master_channel]
        result = np.empty(n_channels)
        for channel in range(n_channels):
            result[channel] = abscorr(spectra[channel], master)
    return result


def dassa_pipeline(
    data: np.ndarray,
    config: InterferometryConfig,
    threads: int = 12,
    timer: Timer | None = None,
) -> np.ndarray:
    """The DASSA execution of the same analysis: the whole fused pipeline
    runs on each thread's channel block concurrently (HAEE on one node),
    with the master spectrum computed once and shared."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("need a 2-D (channels, time) array")
    if threads < 1:
        raise ConfigError("threads must be >= 1")
    timer = timer if timer is not None else Timer()
    n_channels = data.shape[0]
    threads = min(threads, n_channels)

    with timer.phase("compute"):
        # Master spectrum once (shared across threads, not duplicated).
        from repro.core.interferometry import master_spectrum

        mfft = master_spectrum(data[config.master_channel : config.master_channel + 1], config)
        result = np.empty(n_channels)
        errors: list[BaseException] = []

        def worker(thread_id: int) -> None:
            try:
                lo, hi = partition_1d(n_channels, threads, thread_id)
                if hi > lo:
                    result[lo:hi] = interferometry_block(
                        data[lo:hi], config, master_fft=mfft
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        if threads == 1:
            worker(0)
        else:
            pool = [
                threading.Thread(target=worker, args=(h,)) for h in range(threads)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
        if errors:
            raise errors[0]
    return result


@dataclass(frozen=True)
class Fig9Model:
    """Analytic single-node model of the MATLAB-vs-DASSA gap.

    MATLAB: only the built-in-kernel fraction ``parallel_fraction`` of
    the work uses the node's threads (Amdahl), and the interpreted
    stage-at-a-time structure costs ``interpreter_factor`` extra on the
    serial remainder.  DASSA: the whole pipeline is thread-parallel with
    ApplyMT's small coordination overhead.
    """

    threads: int = 12
    parallel_fraction: float = 0.38
    interpreter_factor: float = 2.3
    thread_coordination: float = 0.03

    def matlab_time(self, work_seconds: float) -> float:
        f = self.parallel_fraction
        serial = (1.0 - f) * work_seconds * self.interpreter_factor
        parallel = f * work_seconds / self.threads
        return serial + parallel

    def dassa_time(self, work_seconds: float) -> float:
        overhead = 1.0 + self.thread_coordination * math.log2(max(2, self.threads))
        return work_seconds / self.threads * overhead

    def speedup(self, work_seconds: float = 1.0) -> float:
        """DASSA's advantage; ~16x with the calibrated defaults."""
        return self.matlab_time(work_seconds) / self.dassa_time(work_seconds)
