"""The streaming chunked execution core.

DASSA's headline execution claim (Fig. 9) is that the *whole* DSP chain
runs fused over each data chunk, instead of MATLAB's stage-at-a-time
whole-array materialisation.  This module is that execution core:

* :class:`Operator` — one stage of a ``(channels, time)`` pipeline that
  declares its **overlap contract**: how many input samples of context
  (halo / ghost zone) each produced output needs (``in_needed``), how
  input intervals map to output intervals (``out_core`` / ``out_full``,
  covering decimation and strided window grids), and optional **carried
  state** filled by a streaming pre-pass (e.g. the global linear fit a
  ``detrend`` subtracts).
* :class:`SinkOp` — a terminal reduction with carried state that consumes
  the streamed chunks (an FFT accumulator, an NCF stacker); operators
  after a sink run once on its finalised output.
* :class:`StreamPipeline` — the runner: for each core time interval it
  plans the padded read by composing ``in_needed`` backwards through the
  chain, pulls the block from a :class:`~repro.storage.chunks.ChunkSource`
  (VCA/LAV/array — halo re-reads hit the hdf5lite block cache), executes
  the fused chain (optionally thread-parallel over channel blocks in the
  ApplyMT structure), and stitches the ghost zones away so streamed
  output is numerically equivalent to whole-array output.
* :func:`run_materialized` — the same operator graph executed MATLAB
  style: one stage at a time over the whole array, optionally with
  interpreted per-channel loops.  Both Fig. 9 execution styles are
  literally the same graph under different chunking policies.

Every run reports a :class:`PipelineProfile`: per-stage wall time
(:class:`~repro.utils.timer.Timer` phases), bytes streamed/read, and the
peak resident array bytes — the quantity chunking is meant to bound.

The original tiny :class:`Pipeline` stage list is kept for lightweight
composition and the Fig. 9 micro-comparisons.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from repro.arrayudf.fuse import map_blocks_mt
from repro.errors import ConfigError
from repro.faults.policy import RETRYABLE, FailurePolicy, retry_call
from repro.storage.chunks import ChunkSource, as_source, auto_chunk_samples, iter_intervals
from repro.storage.gaps import GapMap
from repro.utils.iostats import IOStats
from repro.utils.timer import Timer

__all__ = [
    "Stage",
    "Pipeline",
    "OpContext",
    "Operator",
    "SinkOp",
    "PipelineProfile",
    "PipelineResult",
    "StreamPipeline",
    "IncrementalRunner",
    "run_materialized",
    "auto_chunk_samples",
]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _clamp(lo: int, hi: int, total: int) -> tuple[int, int]:
    lo = min(max(lo, 0), total)
    hi = min(max(hi, lo), total)
    return lo, hi


# ---------------------------------------------------------------------------
# operator contract
# ---------------------------------------------------------------------------


@dataclass
class OpContext:
    """What an operator knows about the block it was handed.

    ``start``/``stop`` are the absolute sample interval of the block at
    this operator's *input* rate; ``total`` is the whole record's length
    at that rate, ``fs`` its sampling rate.  ``channel_lo`` is the
    absolute channel index of row 0 (thread partitions hand operators row
    slices).  ``state`` is whatever :meth:`Operator.bind` or the pre-pass
    produced.  ``interpreted`` asks for the MATLAB-faithful per-channel
    loop (only ever set by :func:`run_materialized`).
    """

    start: int
    stop: int
    total: int
    fs: float = 0.0
    channel_lo: int = 0
    state: Any = None
    interpreted: bool = False

    @property
    def whole(self) -> bool:
        return self.start == 0 and self.stop == self.total


class Operator:
    """One stage of a streaming pipeline over ``(channels, time)`` blocks.

    Subclasses implement :meth:`apply` and declare their geometry:

    ``halo``
        ``(left, right)`` input samples of context each produced output
        needs beyond its own interval (filter settling, window lookback).
    ``decimate``
        ``q``: output ``j`` corresponds to input ``j * q`` (1 for
        same-rate stages).  Stages with a non-affine grid (strided window
        centres) override the interval methods instead.
    ``channel_halo``
        ``K``: output row ``r`` needs input rows ``r .. r + 2K`` (0 for
        channel-wise stages).

    The three interval methods define the stitching algebra; the runner
    clamps every returned interval to the valid range:

    * ``out_core(lo, hi)`` — which outputs a core input interval *owns*
      (must tile the output axis over consecutive chunks),
    * ``out_full(a, b)`` — which outputs :meth:`apply` produces from a
      padded block covering ``[a, b)`` (core plus approximate fringe),
    * ``in_needed(lo, hi)`` — which inputs are needed to produce outputs
      ``[lo, hi)`` *accurately*.
    """

    name = "op"
    halo: tuple[int, int] = (0, 0)
    decimate: int = 1
    channel_halo: int = 0
    needs_prepass = False
    #: An operator is *stream-safe* when its output on any interval depends
    #: only on the declared input halo — never on the record's final length
    #: (``ctx.total``) or on whole-record statistics.  Only stream-safe
    #: operators may run incrementally over an unbounded record
    #: (:class:`IncrementalRunner`), where the end of the record is not
    #: known until :meth:`IncrementalRunner.flush`.
    stream_safe = True

    # -- geometry -----------------------------------------------------------
    def out_total(self, total_in: int) -> int:
        return _ceil_div(total_in, self.decimate)

    def out_fs(self, fs_in: float) -> float:
        return fs_in / self.decimate if fs_in else fs_in

    def out_channels(self, channels_in: int) -> int:
        return channels_in - 2 * self.channel_halo

    def in_rows(self, lo: int, hi: int) -> tuple[int, int]:
        return lo, hi + 2 * self.channel_halo

    def out_core(self, lo: int, hi: int) -> tuple[int, int]:
        q = self.decimate
        return _ceil_div(lo, q), _ceil_div(hi, q)

    def out_full(self, a: int, b: int) -> tuple[int, int]:
        return self.out_core(a, b)

    def in_needed(self, lo: int, hi: int) -> tuple[int, int]:
        q = self.decimate
        left, right = self.halo
        return lo * q - left, (hi - 1) * q + 1 + right

    # -- state --------------------------------------------------------------
    def bind(self, n_channels: int, total_in: int, fs_in: float) -> Any:
        """Per-run state computed from the record's geometry (no data)."""
        return None

    def prepass_init(self, n_channels: int, total_in: int) -> Any:
        raise NotImplementedError

    def prepass_update(self, acc: Any, chunk: np.ndarray, start: int) -> None:
        raise NotImplementedError

    def prepass_finalize(self, acc: Any) -> Any:
        raise NotImplementedError

    # -- execution ----------------------------------------------------------
    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class SinkOp:
    """A terminal reduction over the streamed chunks (carried state).

    The runner calls ``init`` once, ``consume`` per core chunk (in time
    order, ghost zones already stitched away), and ``finalize`` once;
    operators after the sink are applied to the finalised array.
    ``resident_bytes`` is the sink's contribution to the peak-memory
    accounting (accumulation buffers).
    """

    name = "sink"

    def init(self, n_channels: int, total_in: int, fs_in: float) -> Any:
        raise NotImplementedError

    def consume(self, state: Any, chunk: np.ndarray, ctx: OpContext) -> None:
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        raise NotImplementedError

    def resident_bytes(self, state: Any) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class FnOperator(Operator):
    """A same-geometry operator from a plain ``fn(block) -> block``."""

    def __init__(self, name: str, fn: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self._fn = fn

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        return self._fn(data)


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------


@dataclass
class PipelineProfile:
    """Per-run execution profile: where the time and the bytes went."""

    phases: dict[str, float] = field(default_factory=dict)
    n_chunks: int = 0
    chunk_samples: int = 0
    threads: int = 1
    bytes_streamed: int = 0
    bytes_read: int | None = None
    peak_resident_bytes: int = 0
    output_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> dict:
        return {
            "phases": dict(self.phases),
            "n_chunks": self.n_chunks,
            "chunk_samples": self.chunk_samples,
            "threads": self.threads,
            "bytes_streamed": self.bytes_streamed,
            "bytes_read": self.bytes_read,
            "peak_resident_bytes": self.peak_resident_bytes,
            "output_bytes": self.output_bytes,
            "total_seconds": self.total_seconds,
        }


@dataclass
class PipelineResult:
    """``output`` plus the run's profile; ``gaps`` (present when the run
    used a ``continue`` :class:`~repro.faults.policy.FailurePolicy`) lists
    final-level output spans filled because their chunk stayed broken
    after retries — coordinates are *output* samples, unlike the
    input-sample gaps a degraded :class:`~repro.storage.chunks.VCASource`
    reports."""

    output: Any
    profile: PipelineProfile
    gaps: GapMap | None = None


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class StreamPipeline:
    """An operator chain executed chunk-at-a-time with ghost-zone stitching.

    ``operators`` is a sequence of :class:`Operator` with at most one
    :class:`SinkOp`; operators after the sink run once on its finalised
    output (e.g. correlate after an FFT accumulator).
    """

    def __init__(self, operators: list):
        if not operators:
            raise ConfigError("empty pipeline")
        self.maps: list[Operator] = []
        self.sink: SinkOp | None = None
        self.post: list[Operator] = []
        for op in operators:
            if isinstance(op, SinkOp):
                if self.sink is not None:
                    raise ConfigError("a pipeline can hold at most one sink")
                self.sink = op
            elif isinstance(op, Operator):
                if self.sink is None:
                    self.maps.append(op)
                else:
                    self.post.append(op)
            else:
                raise ConfigError(f"not an operator: {op!r}")
        names = [op.name for op in self.operators]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate operator names in {names}")

    @property
    def operators(self) -> list:
        ops: list = list(self.maps)
        if self.sink is not None:
            ops.append(self.sink)
        ops.extend(self.post)
        return ops

    @property
    def names(self) -> list[str]:
        return [op.name for op in self.operators]

    # -- planning helpers ---------------------------------------------------
    def _levels(self, src: ChunkSource) -> tuple[list[int], list[float], list[int]]:
        totals = [src.n_samples]
        rates = [src.fs]
        channels = [src.n_channels]
        for op in self.maps:
            totals.append(op.out_total(totals[-1]))
            rates.append(op.out_fs(rates[-1]))
            channels.append(op.out_channels(channels[-1]))
            if channels[-1] < 1:
                raise ConfigError(
                    f"operator {op.name!r} needs more channels than the "
                    f"{channels[-2]} available"
                )
        return totals, rates, channels

    def _core_targets(
        self, c0: int, c1: int, totals: list[int], upto: int
    ) -> list[tuple[int, int]]:
        """Per-level core (owned) output intervals for source chunk [c0, c1)."""
        targets = [(c0, c1)]
        for k in range(upto):
            lo, hi = self.maps[k].out_core(*targets[-1])
            targets.append(_clamp(lo, hi, totals[k + 1]))
        return targets

    def _needed(
        self, target: tuple[int, int], totals: list[int], upto: int
    ) -> list[tuple[int, int]]:
        """Per-level padded input intervals required for ``target`` (level
        ``upto``), walking ``in_needed`` backwards with clamping at the
        true record edges."""
        needs = [target]
        for k in reversed(range(upto)):
            lo, hi = self.maps[k].in_needed(*needs[0])
            needs.insert(0, _clamp(lo, hi, totals[k]))
        return needs

    def _run_chain(
        self,
        block: np.ndarray,
        interval: tuple[int, int],
        target: tuple[int, int],
        totals: list[int],
        rates: list[float],
        states: list,
        channel_lo: int | list[int],
        upto: int,
        timer: Timer | None,
    ) -> tuple[np.ndarray, int]:
        """Run map operators ``[0, upto)`` on a padded block and trim to
        ``target``.  Returns ``(trimmed, peak_bytes)`` where ``peak_bytes``
        is the largest in+out footprint any stage held.

        ``channel_lo`` is either one absolute row offset shared by every
        level (the historical behaviour — correct while each level keeps
        row 0 aligned) or a per-level list, needed once a channel-mapping
        operator (e.g. a pushed-down selection) shifts row origins between
        levels."""
        a, b = interval
        cur = block
        peak = block.nbytes
        per_level = isinstance(channel_lo, (list, tuple))
        for k in range(upto):
            op = self.maps[k]
            ctx = OpContext(
                start=a,
                stop=b,
                total=totals[k],
                fs=rates[k],
                channel_lo=channel_lo[k] if per_level else channel_lo,
                state=states[k],
            )
            if timer is not None:
                with timer.phase(op.name):
                    nxt = op.apply(cur, ctx)
            else:
                nxt = op.apply(cur, ctx)
            lo, hi = _clamp(*op.out_full(a, b), totals[k + 1])
            if nxt.shape[-1] != hi - lo:
                raise ConfigError(
                    f"operator {op.name!r} produced {nxt.shape[-1]} samples "
                    f"for interval [{lo}, {hi})"
                )
            peak = max(peak, cur.nbytes + nxt.nbytes)
            cur, (a, b) = nxt, (lo, hi)
        lo, hi = target
        if not (a <= lo and hi <= b):
            raise ConfigError(
                f"chunk plan did not cover target [{lo}, {hi}) with [{a}, {b})"
            )
        return cur[..., lo - a : hi - a], peak

    # -- pre-passes ---------------------------------------------------------
    def _run_prepasses(
        self,
        src: ChunkSource,
        chunk: int,
        totals: list[int],
        rates: list[float],
        channels: list[int],
        states: list,
        timer: Timer,
    ) -> None:
        for j, op in enumerate(self.maps):
            if not op.needs_prepass:
                continue
            acc = op.prepass_init(channels[j], totals[j])
            with timer.phase(f"{op.name}:prepass"):
                for c0, c1 in iter_intervals(src.n_samples, chunk):
                    targets = self._core_targets(c0, c1, totals, j)
                    tgt = targets[j]
                    if tgt[1] <= tgt[0]:
                        continue
                    needs = self._needed(tgt, totals, j)
                    a, b = needs[0]
                    block = src.read(a, b)
                    level, _ = self._run_chain(
                        block, (a, b), tgt, totals, rates, states, 0, j, None
                    )
                    op.prepass_update(acc, level, tgt[0])
            states[j] = op.prepass_finalize(acc)

    # -- execution ----------------------------------------------------------
    def run(
        self,
        source: object,
        chunk_samples: int | None = None,
        threads: int = 1,
        timer: Timer | None = None,
        iostats: IOStats | None = None,
        fs: float | None = None,
        policy: FailurePolicy | None = None,
    ) -> PipelineResult:
        """Stream ``source`` through the chain.

        ``chunk_samples=None`` runs a single chunk covering the whole
        record (the materialising policy, with exact whole-array stage
        behaviour); any other value bounds the resident block to roughly
        ``channels * (chunk + halos) * 8`` bytes.  ``threads`` splits the
        output channels into ApplyMT-style static blocks per chunk.

        With a :class:`~repro.faults.policy.FailurePolicy`, each chunk's
        read-plus-compute is retried (``policy.retries`` with exponential
        ``policy.backoff``) on retryable faults; a chunk that stays broken
        either raises the typed error (``fail_fast``) or contributes a
        ``policy.fill``-valued output span recorded in the result's
        :attr:`~PipelineResult.gaps` (``continue``) — a bad chunk becomes
        a reported gap rather than a crash.
        """
        src = as_source(source, fs=fs)
        if src.n_samples < 1 or src.n_channels < 1:
            raise ConfigError("cannot stream an empty source")
        if threads < 1:
            raise ConfigError("threads must be >= 1")
        timer = timer if timer is not None else Timer()
        totals, rates, channels = self._levels(src)
        chunk = src.n_samples if chunk_samples is None else int(chunk_samples)
        if chunk < 1:
            raise ConfigError("chunk_samples must be >= 1")
        chunk = min(chunk, src.n_samples)
        n_chunks = _ceil_div(src.n_samples, chunk)

        streamed_before = src.bytes_streamed
        io_before = iostats.full_snapshot() if iostats is not None else None

        n_maps = len(self.maps)
        states: list = [
            op.bind(channels[k], totals[k], rates[k])
            for k, op in enumerate(self.maps)
        ]
        if n_chunks > 1:
            # A single whole-record chunk needs no pre-pass: every
            # operator sees ctx.whole and computes its global state in
            # place, exactly as the materialised execution does.
            self._run_prepasses(
                src, chunk, totals, rates, channels, states, timer
            )

        sink_state = (
            self.sink.init(channels[-1], totals[-1], rates[-1])
            if self.sink is not None
            else None
        )
        out_rows = channels[-1]
        use_threads = min(threads, out_rows)

        pieces: list[np.ndarray] = []
        pieces_bytes = 0
        peak_resident = 0
        gaps = GapMap() if policy is not None and not policy.fail_fast else None
        src_label = getattr(src, "path", None) or "stream"
        for c0, c1 in iter_intervals(src.n_samples, chunk):
            targets = self._core_targets(c0, c1, totals, n_maps)
            tgt = targets[-1]
            if tgt[1] <= tgt[0]:
                continue
            needs = self._needed(tgt, totals, n_maps)
            a, b = needs[0]

            def process_chunk() -> tuple[np.ndarray, int]:
                with timer.phase("read"):
                    block = src.read(a, b)

                if use_threads == 1:
                    return self._run_chain(
                        block, (a, b), tgt, totals, rates, states, 0, n_maps,
                        timer,
                    )
                thread_timers = [Timer() for _ in range(use_threads)]
                peaks = [0] * use_threads

                def worker(tid: int, lo: int, hi: int) -> np.ndarray:
                    rlo, rhi = lo, hi
                    offs = [0] * n_maps
                    for k in range(n_maps - 1, -1, -1):
                        rlo, rhi = self.maps[k].in_rows(rlo, rhi)
                        offs[k] = rlo
                    out, peak = self._run_chain(
                        block[rlo:rhi],
                        (a, b),
                        tgt,
                        totals,
                        rates,
                        states,
                        offs,
                        n_maps,
                        thread_timers[tid],
                    )
                    peaks[tid] = peak
                    return out

                parts = map_blocks_mt(out_rows, use_threads, worker)
                trimmed = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
                for sub in thread_timers:
                    timer.merge(sub)
                chain_peak = block.nbytes + sum(
                    max(0, p - block.nbytes) for p in peaks
                )
                return trimmed, chain_peak

            if policy is None:
                trimmed, chain_peak = process_chunk()
            else:
                try:
                    trimmed, chain_peak = retry_call(
                        process_chunk,
                        retries=policy.retries,
                        backoff=policy.backoff,
                    )
                except RETRYABLE as exc:
                    if policy.fail_fast:
                        raise
                    # The chunk stays broken: its owned output span becomes
                    # fill, reported as a gap instead of crashing the run.
                    trimmed = np.full(
                        (out_rows, tgt[1] - tgt[0]), policy.fill
                    )
                    chain_peak = trimmed.nbytes
                    gaps.record(
                        src_label,
                        tgt[0],
                        tgt[1],
                        f"{type(exc).__name__}: {exc}",
                        attempts=policy.retries + 1,
                    )

            if self.sink is not None:
                ctx = OpContext(
                    start=tgt[0],
                    stop=tgt[1],
                    total=totals[-1],
                    fs=rates[-1],
                    state=sink_state,
                )
                with timer.phase(self.sink.name):
                    self.sink.consume(sink_state, trimmed, ctx)
            else:
                piece = np.ascontiguousarray(trimmed)
                pieces.append(piece)
                pieces_bytes += piece.nbytes
            resident = chain_peak + pieces_bytes
            if self.sink is not None:
                resident += self.sink.resident_bytes(sink_state)
            peak_resident = max(peak_resident, resident)

        if self.sink is not None:
            with timer.phase(self.sink.name):
                output: Any = self.sink.finalize(sink_state)
            output = self._run_post(output, rates[-1], timer, interpreted=False)
        elif pieces:
            output = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=-1)
        else:
            output = np.zeros((out_rows, 0))
        if isinstance(output, np.ndarray):
            peak_resident = max(peak_resident, output.nbytes)

        profile = PipelineProfile(
            phases=dict(timer.phases),
            n_chunks=n_chunks,
            chunk_samples=chunk,
            threads=use_threads,
            bytes_streamed=src.bytes_streamed - streamed_before,
            bytes_read=(
                iostats.full_snapshot()["bytes_read"] - io_before["bytes_read"]
                if io_before is not None
                else None
            ),
            peak_resident_bytes=peak_resident,
            output_bytes=output.nbytes if isinstance(output, np.ndarray) else 0,
        )
        return PipelineResult(output=output, profile=profile, gaps=gaps)

    def _run_post(
        self, output: Any, fs: float, timer: Timer, interpreted: bool
    ) -> Any:
        for op in self.post:
            n = output.shape[-1] if isinstance(output, np.ndarray) else 0
            ctx = OpContext(
                start=0, stop=n, total=n, fs=fs, interpreted=interpreted
            )
            with timer.phase(op.name):
                output = op.apply(output, ctx)
        return output

    def stream(
        self,
        source: object,
        chunk_samples: int,
        timer: Timer | None = None,
        fs: float | None = None,
    ) -> Iterator[tuple[tuple[int, int], np.ndarray]]:
        """Generator form for map-only chains: yields ``((lo, hi), block)``
        core output intervals in order, holding one chunk at a time."""
        if self.sink is not None or self.post:
            raise ConfigError("stream() supports map-only pipelines")
        src = as_source(source, fs=fs)
        timer = timer if timer is not None else Timer()
        totals, rates, channels = self._levels(src)
        chunk = min(int(chunk_samples), src.n_samples)
        if chunk < 1:
            raise ConfigError("chunk_samples must be >= 1")
        n_maps = len(self.maps)
        states: list = [
            op.bind(c, t, r)
            for op, c, t, r in zip(self.maps, channels, totals, rates)
        ]
        if _ceil_div(src.n_samples, chunk) > 1:
            self._run_prepasses(
                src, chunk, totals, rates, channels, states, timer
            )
        for c0, c1 in iter_intervals(src.n_samples, chunk):
            tgt = self._core_targets(c0, c1, totals, n_maps)[-1]
            if tgt[1] <= tgt[0]:
                continue
            a, b = self._needed(tgt, totals, n_maps)[0]
            with timer.phase("read"):
                block = src.read(a, b)
            trimmed, _ = self._run_chain(
                block, (a, b), tgt, totals, rates, states, 0, n_maps, timer
            )
            yield tgt, trimmed

    def incremental(self, n_channels: int, fs: float = 0.0) -> "IncrementalRunner":
        """Carried-state execution over an *unbounded* record.

        Returns an :class:`IncrementalRunner` that accepts the record in
        arbitrary pieces (acquisition files as they arrive) and emits
        final-level outputs as soon as their full input halo is buffered,
        so outputs across piece boundaries equal one batch run over the
        concatenated record.  Map-only, stream-safe chains only.
        """
        return IncrementalRunner(self, n_channels, fs=fs)


class IncrementalRunner:
    """Drives a map-only operator chain across record-piece boundaries.

    The batch :class:`StreamPipeline` knows the record's total length up
    front and clamps every halo read at both edges.  A monitoring service
    does not: the record grows one acquisition file at a time and never
    ends until the acquisition stops.  This runner carries the chain's
    state across pieces:

    * a **tail buffer** of raw input samples — exactly the left context
      (filter settle, window lookback) the next emission still needs;
    * **watermarks** ``seen`` (absolute input samples appended) and
      ``emitted`` (absolute final-level outputs produced).

    :meth:`push` appends a piece and returns every final-level output
    interval whose *unclamped* right input need now fits inside the
    buffered record — outputs near the growing edge are deferred until
    the next piece supplies their right halo, which is what makes
    detections at file seams equal a batch run over the concatenated
    record.  :meth:`flush` declares the record finished: the right edge
    becomes a true record edge (clamped exactly as batch execution
    clamps it) and the deferred tail is emitted.

    :meth:`export_state` / :meth:`import_state` round-trip the carried
    state through JSON for checkpoint/resume: counters travel verbatim
    while the tail samples — re-readable from the durable acquisition
    files — are persisted as a SHA-256 digest and verified on import.
    """

    STATE_VERSION = 1

    def __init__(self, pipeline: StreamPipeline, n_channels: int, fs: float = 0.0):
        if pipeline.sink is not None or pipeline.post:
            raise ConfigError("incremental execution supports map-only pipelines")
        for op in pipeline.maps:
            if op.needs_prepass or not op.stream_safe:
                raise ConfigError(
                    f"operator {op.name!r} is not stream-safe: it depends on "
                    "whole-record state and cannot run over an unbounded record"
                )
        if n_channels < 1:
            raise ConfigError("n_channels must be >= 1")
        self._pipe = pipeline
        self.n_channels = int(n_channels)
        self.fs = float(fs)
        self._buf = np.zeros((self.n_channels, 0))
        self._buf_start = 0
        self._seen = 0
        self._emitted = 0
        self._finished = False

    # -- watermarks ---------------------------------------------------------
    @property
    def seen(self) -> int:
        """Absolute input samples appended so far."""
        return self._seen

    @property
    def emitted(self) -> int:
        """Absolute final-level outputs emitted so far."""
        return self._emitted

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def pending_samples(self) -> int:
        """Buffered raw samples awaiting their right halo."""
        return self._seen - self._buf_start

    # -- planning -----------------------------------------------------------
    def _levels(self) -> tuple[list[int], list[float], list[int]]:
        totals = [self._seen]
        rates = [self.fs]
        channels = [self.n_channels]
        for op in self._pipe.maps:
            totals.append(op.out_total(totals[-1]))
            rates.append(op.out_fs(rates[-1]))
            channels.append(op.out_channels(channels[-1]))
            if channels[-1] < 1:
                raise ConfigError(
                    f"operator {op.name!r} needs more channels than the "
                    f"{channels[-2]} available"
                )
        return totals, rates, channels

    def _needed_open(self, target: tuple[int, int]) -> list[tuple[int, int]]:
        """``in_needed`` composed backwards with the left edge clamped at 0
        (a true record edge) and the right edge left *open* — the record
        has not ended, so right-edge clamping would diverge from the
        eventual batch run."""
        needs = [target]
        for op in reversed(self._pipe.maps):
            lo, hi = op.in_needed(*needs[0])
            needs.insert(0, (max(lo, 0), hi))
        return needs

    def _safe_hi(self) -> int:
        """Largest final-level output index whose full (unclamped) right
        input context is already buffered."""
        start = self._emitted
        lo, hi = start, self._seen  # decimate >= 1 bounds outputs by inputs

        def covered(candidate: int) -> bool:
            if candidate <= start:
                return True
            return self._needed_open((start, candidate))[0][1] <= self._seen

        while lo < hi:
            mid = (lo + hi + 1) // 2
            if covered(mid):
                lo = mid
            else:
                hi = mid - 1
        return lo

    # -- execution ----------------------------------------------------------
    def push(
        self, block: np.ndarray, timer: Timer | None = None
    ) -> list[tuple[tuple[int, int], np.ndarray]]:
        """Append a ``(channels, time)`` piece of the record; returns the
        newly emittable ``((lo, hi), output)`` final-level intervals (in
        order, tiling the output axis across pushes)."""
        if self._finished:
            raise ConfigError("record already flushed; cannot push more samples")
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[0] != self.n_channels:
            raise ConfigError(
                f"need a ({self.n_channels}, n) block, got {block.shape}"
            )
        if block.shape[1]:
            if self._buf.shape[1]:
                self._buf = np.concatenate([self._buf, block], axis=1)
            else:
                self._buf = block.copy()
            self._seen += block.shape[1]
        return self._emit(at_edge=False, timer=timer)

    def flush(
        self, timer: Timer | None = None
    ) -> list[tuple[tuple[int, int], np.ndarray]]:
        """Declare the record finished and emit the deferred tail.

        The right edge is now a true record edge, clamped exactly as the
        batch runner clamps it, so the total emitted output equals one
        batch run over the whole concatenated record.
        """
        if self._finished:
            return []
        self._finished = True
        return self._emit(at_edge=True, timer=timer)

    def _emit(
        self, at_edge: bool, timer: Timer | None
    ) -> list[tuple[tuple[int, int], np.ndarray]]:
        totals, rates, channels = self._levels()
        n_maps = len(self._pipe.maps)
        hi = totals[-1] if at_edge else self._safe_hi()
        pieces: list[tuple[tuple[int, int], np.ndarray]] = []
        if hi > self._emitted:
            target = (self._emitted, hi)
            if at_edge:
                needs = self._pipe._needed(target, totals, n_maps)
            else:
                needs = self._needed_open(target)
            a, b = needs[0]
            if a < self._buf_start:
                raise ConfigError(
                    f"carried buffer starts at {self._buf_start} but the next "
                    f"emission needs samples from {a}"
                )
            states = [
                op.bind(channels[k], totals[k], rates[k])
                for k, op in enumerate(self._pipe.maps)
            ]
            block = self._buf[:, a - self._buf_start : b - self._buf_start]
            out, _ = self._pipe._run_chain(
                block, (a, b), target, totals, rates, states, 0, n_maps, timer
            )
            pieces.append((target, np.ascontiguousarray(out)))
            self._emitted = hi
        self._trim()
        return pieces

    def _trim(self) -> None:
        """Drop buffered samples no emission can need again: everything
        left of the next target's composed left context."""
        keep = self._needed_open((self._emitted, self._emitted + 1))[0][0]
        keep = min(max(keep, 0), self._seen)
        if keep > self._buf_start:
            self._buf = self._buf[:, keep - self._buf_start :].copy()
            self._buf_start = keep

    # -- carried-state export/import ---------------------------------------
    def export_state(self) -> dict:
        """JSON-safe carried state: watermarks plus a digest of the tail.

        The tail samples themselves are *not* serialised — they are
        re-readable from the durable acquisition files covering
        ``[buf_start, seen)`` — only their SHA-256, which
        :meth:`import_state` verifies after the caller re-reads them.
        """
        tail = np.ascontiguousarray(self._buf, dtype=np.float64)
        return {
            "version": self.STATE_VERSION,
            "operators": self._pipe.names,
            "n_channels": self.n_channels,
            "fs": self.fs,
            "seen": self._seen,
            "emitted": self._emitted,
            "buf_start": self._buf_start,
            "tail_samples": int(tail.shape[1]),
            "tail_sha256": hashlib.sha256(tail.tobytes()).hexdigest(),
        }

    def import_state(self, payload: dict, tail: np.ndarray) -> None:
        """Restore carried state exported by :meth:`export_state`.

        ``tail`` is the raw input block covering ``[buf_start, seen)``,
        re-read from storage by the caller; it is digest-verified so a
        checkpoint can never silently resume against different samples.
        """
        if payload.get("version") != self.STATE_VERSION:
            raise ConfigError(
                f"carried-state version {payload.get('version')!r} unsupported"
            )
        if payload.get("operators") != self._pipe.names:
            raise ConfigError(
                f"checkpoint was taken by chain {payload.get('operators')}, "
                f"this runner is {self._pipe.names}"
            )
        if int(payload["n_channels"]) != self.n_channels:
            raise ConfigError(
                f"checkpoint has {payload['n_channels']} channels, "
                f"runner has {self.n_channels}"
            )
        tail = np.ascontiguousarray(np.asarray(tail, dtype=np.float64))
        seen = int(payload["seen"])
        buf_start = int(payload["buf_start"])
        expect = (self.n_channels, seen - buf_start)
        if tail.ndim != 2 or tail.shape != expect:
            raise ConfigError(f"tail shape {tail.shape} != expected {expect}")
        digest = hashlib.sha256(tail.tobytes()).hexdigest()
        if digest != payload["tail_sha256"]:
            raise ConfigError(
                "carried-state digest mismatch: the re-read tail differs "
                "from the checkpointed samples"
            )
        self._buf = tail
        self._buf_start = buf_start
        self._seen = seen
        self._emitted = int(payload["emitted"])
        self._finished = False


def run_materialized(
    operators: list,
    data: np.ndarray,
    fs: float = 0.0,
    timer: Timer | None = None,
    interpreted: bool = False,
    iostats: IOStats | None = None,
) -> PipelineResult:
    """The MATLAB-style execution of the same operator graph: one stage at
    a time over the whole array, every intermediate materialised.

    With ``interpreted=True`` operators run their per-channel interpreted
    loops (the way MATLAB scripts iterate channels); built-in kernels
    (FFT) stay vectorised, as MATLAB's do.  Per-stage wall time lands in
    ``timer`` under the same phase names streamed execution uses —
    ``read`` for input coercion, ``{op}:prepass`` for whole-record state,
    one phase per stage — so streamed-vs-materialised profiles compare
    phase for phase; the profile's peak resident bytes reflect the
    whole-array intermediates — the Fig. 9 memory story.
    """
    pipe = operators if isinstance(operators, StreamPipeline) else StreamPipeline(operators)
    timer = timer if timer is not None else Timer()
    io_before = iostats.full_snapshot() if iostats is not None else None
    with timer.phase("read"):
        data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("need a 2-D (channels, time) array")
    cur = data
    total = data.shape[1]
    rate = fs
    peak = data.nbytes
    for op in pipe.maps:
        if op.needs_prepass:
            with timer.phase(f"{op.name}:prepass"):
                acc = op.prepass_init(cur.shape[0], total)
                op.prepass_update(acc, cur, 0)
                state = op.prepass_finalize(acc)
        else:
            state = op.bind(cur.shape[0], total, rate)
        ctx = OpContext(
            start=0,
            stop=total,
            total=total,
            fs=rate,
            state=state,
            interpreted=interpreted,
        )
        with timer.phase(op.name):
            nxt = op.apply(cur, ctx)
        peak = max(peak, cur.nbytes + nxt.nbytes)
        cur = nxt
        total = op.out_total(total)
        rate = op.out_fs(rate)
    output: Any = cur
    if pipe.sink is not None:
        state = pipe.sink.init(cur.shape[0], total, rate)
        ctx = OpContext(
            start=0, stop=total, total=total, fs=rate, state=state,
            interpreted=interpreted,
        )
        with timer.phase(pipe.sink.name):
            pipe.sink.consume(state, cur, ctx)
            output = pipe.sink.finalize(state)
        if isinstance(output, np.ndarray):
            peak = max(peak, cur.nbytes + output.nbytes)
    output = pipe._run_post(output, rate, timer, interpreted)
    profile = PipelineProfile(
        phases=dict(timer.phases),
        n_chunks=1,
        chunk_samples=data.shape[1],
        threads=1,
        bytes_streamed=data.nbytes,
        bytes_read=(
            iostats.full_snapshot()["bytes_read"] - io_before["bytes_read"]
            if io_before is not None
            else None
        ),
        peak_resident_bytes=peak,
        output_bytes=output.nbytes if isinstance(output, np.ndarray) else 0,
    )
    return PipelineResult(output=output, profile=profile)


# ---------------------------------------------------------------------------
# the original tiny stage list (kept for composition and the Fig. 9
# micro-comparisons)
# ---------------------------------------------------------------------------


@dataclass
class Stage:
    """One named transformation."""

    name: str
    fn: Callable[[Any], Any]


@dataclass
class Pipeline:
    """An ordered chain of stages."""

    stages: list[Stage] = field(default_factory=list)

    def add(self, name: str, fn: Callable[[Any], Any]) -> "Pipeline":
        if any(stage.name == name for stage in self.stages):
            raise ConfigError(f"duplicate stage name {name!r}")
        self.stages.append(Stage(name, fn))
        return self

    def run(self, data: Any, timer: Timer | None = None) -> Any:
        """Run all stages in order; per-stage wall time lands in ``timer``."""
        if not self.stages:
            raise ConfigError("empty pipeline")
        timer = timer if timer is not None else Timer()
        for stage in self.stages:
            with timer.phase(stage.name):
                data = stage.fn(data)
        return data

    def fused(self) -> Callable[..., Any]:
        """A single callable running the whole chain (DASSA's fusion).

        The callable accepts an optional ``timer`` and records the same
        per-stage phases as :meth:`run`, so baseline-vs-fused comparisons
        time identical stage sets.
        """
        if not self.stages:
            raise ConfigError("empty pipeline")

        def fused_fn(data: Any, timer: Timer | None = None) -> Any:
            if timer is None:
                for stage in self.stages:
                    data = stage.fn(data)
                return data
            for stage in self.stages:
                with timer.phase(stage.name):
                    data = stage.fn(data)
            return data

        return fused_fn

    def to_operators(self) -> list[Operator]:
        """Lift the stage list into streaming operators (same-geometry,
        no halo) runnable by :class:`StreamPipeline`."""
        return [FnOperator(stage.name, stage.fn) for stage in self.stages]

    @property
    def names(self) -> list[str]:
        return [stage.name for stage in self.stages]
