"""File and Group objects — the user-facing hdf5lite API.

A file holds a tree of groups; each group holds attributes, child groups,
and datasets.  The tree is kept in memory as plain dicts (mirroring the
JSON metadata footer) and flushed on close.

Example::

    with File("minute.h5", "w") as f:
        f.attrs["SamplingFrequency(HZ)"] = 500
        ds = f.create_dataset("DataCT", data=array_2d)
        ch = f.create_group("Measurement/1")
        ch.attrs["Array dimension"] = 1
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Sequence

import numpy as np

from repro.errors import ConfigError, FormatError
from repro.hdf5lite import dtype as _dtype
from repro.hdf5lite.attributes import Attributes
from repro.hdf5lite.binary import FORMAT_VERSION, HEADER_SIZE, FileBackend, Header
from repro.hdf5lite.cache import (
    BlockCache,
    CacheConfig,
    FilePool,
    normalize_file_key,
    resolve_cache,
)
from repro.hdf5lite.codecs import CODEC_ATTR, resolve_codec
from repro.hdf5lite.dataset import (
    LAYOUT_CHUNKED,
    LAYOUT_CONTIGUOUS,
    LAYOUT_VIRTUAL,
    Dataset,
    _chunk_key,
)
from repro.hdf5lite.virtual import VirtualSource, validate_sources
from repro.utils.iostats import IOStats


def _empty_node() -> dict[str, Any]:
    return {"attrs": {}, "groups": {}, "datasets": {}}


def _split_path(path: str) -> list[str]:
    parts = [p for p in path.strip("/").split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise FormatError(f"invalid path component {part!r}")
    return parts


class Group:
    """A node in the file's group tree."""

    def __init__(self, file: "File", path: str, node: dict[str, Any]):
        self._file = file
        self.path = path or "/"
        self._node = node
        self.attrs = Attributes(
            node.setdefault("attrs", {}),
            on_change=file._mark_dirty,
            writable=file.writable,
        )
        self._node["attrs"] = self.attrs._data

    def _child_path(self, name: str) -> str:
        if self.path == "/":
            return "/" + name
        return self.path + "/" + name

    # -- navigation ------------------------------------------------------------
    def __contains__(self, path: str) -> bool:
        try:
            self[path]
            return True
        except KeyError:
            return False

    def __getitem__(self, path: str) -> "Group | Dataset":
        parts = _split_path(path)
        if not parts:
            return self
        node = self._node
        walked = self.path.rstrip("/")
        for i, part in enumerate(parts):
            is_last = i == len(parts) - 1
            if is_last and part in node["datasets"]:
                return self._file._dataset_for(
                    walked + "/" + part, node["datasets"][part]
                )
            if part in node["groups"]:
                node = node["groups"][part]
                walked = walked + "/" + part
            else:
                raise KeyError(f"no such group or dataset: {path!r}")
        return Group(self._file, walked, node)

    def keys(self) -> list[str]:
        return sorted(self._node["groups"].keys() | self._node["datasets"].keys())

    def groups(self) -> list[str]:
        return sorted(self._node["groups"])

    def datasets(self) -> list[str]:
        return sorted(self._node["datasets"])

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._node["groups"]) + len(self._node["datasets"])

    def visit(self) -> Iterator[str]:
        """Depth-first iteration of all descendant paths."""
        for name in self.keys():
            child = self[name]
            yield child.path
            if isinstance(child, Group):
                yield from child.visit()

    # -- creation ---------------------------------------------------------------
    def create_group(self, path: str) -> "Group":
        """Create (or descend into existing) groups along ``path``."""
        if not self._file.writable:
            raise FormatError("file is not writable")
        parts = _split_path(path)
        if not parts:
            raise FormatError("empty group name")
        node = self._node
        walked = self.path.rstrip("/")
        for part in parts:
            if part in node["datasets"]:
                raise FormatError(f"{walked}/{part} is a dataset, not a group")
            node = node["groups"].setdefault(part, _empty_node())
            walked = walked + "/" + part
        self._file._mark_dirty()
        return Group(self._file, walked, node)

    def require_group(self, path: str) -> "Group":
        try:
            existing = self[path]
        except KeyError:
            return self.create_group(path)
        if not isinstance(existing, Group):
            raise FormatError(f"{path!r} exists and is not a group")
        return existing

    def create_dataset(
        self,
        name: str,
        data: object = None,
        shape: Sequence[int] | None = None,
        dtype: object = None,
        chunks: Sequence[int] | None = None,
        virtual_sources: Sequence[VirtualSource] | None = None,
        fill: float = 0,
        checksum: bool = False,
        checksum_block: int | None = None,
        codec: object = None,
    ) -> Dataset:
        """Create a dataset under this group.

        Exactly one of the three layouts is chosen:

        * ``virtual_sources`` given → virtual dataset (``shape`` required),
        * ``chunks`` given → chunked (``data`` required),
        * otherwise → contiguous (``data`` or ``shape``+``dtype``).

        ``checksum=True`` stores a per-block CRC32 sidecar (see
        :mod:`repro.hdf5lite.checksum`) verified on every subsequent read;
        ``checksum_block`` overrides the contiguous block size.  Virtual
        datasets hold no local bytes, so the flag is a no-op for them.

        ``codec`` — a codec spec string (``"delta-zlib"``,
        ``"transpose-zlib"``, ``"quantize:1e-3"``) or
        :class:`~repro.hdf5lite.codecs.Codec` instance: each chunk is
        stored encoded and the choice recorded in the ``repro:codec``
        attribute, so files without a codec stay readable unchanged.
        Codecs require a chunked layout (contiguous offset arithmetic
        assumes fixed-size elements); combined with ``checksum=True`` the
        CRCs cover the *encoded* bytes — corruption is caught before any
        decode.
        """
        if not self._file.writable:
            raise FormatError("file is not writable")
        if codec is not None and chunks is None:
            raise FormatError(
                "codec requires a chunked layout (pass chunks=...)"
            )
        parts = _split_path(name)
        if not parts:
            raise FormatError("empty dataset name")
        *group_parts, ds_name = parts
        parent = self.create_group("/".join(group_parts)) if group_parts else self
        if ds_name in parent._node["datasets"] or ds_name in parent._node["groups"]:
            raise FormatError(f"object {ds_name!r} already exists in {parent.path}")

        if virtual_sources is not None:
            if shape is None:
                raise FormatError("virtual datasets require an explicit shape")
            token = _dtype.dtype_token(dtype if dtype is not None else np.float32)
            sources = list(virtual_sources)
            validate_sources(shape, sources)
            meta: dict[str, Any] = {
                "shape": [int(s) for s in shape],
                "dtype": token,
                "layout": LAYOUT_VIRTUAL,
                "sources": [s.to_dict() for s in sources],
                "fill": fill,
                "attrs": {},
            }
        elif chunks is not None:
            if data is None:
                raise FormatError("chunked datasets require data at creation")
            arr = np.ascontiguousarray(data)
            token = _dtype.dtype_token(dtype if dtype is not None else arr.dtype)
            arr = arr.astype(_dtype.token_dtype(token), copy=False)
            chunks = tuple(int(c) for c in chunks)
            if len(chunks) != arr.ndim or any(c <= 0 for c in chunks):
                raise FormatError(
                    f"chunk shape {chunks} invalid for data of rank {arr.ndim}"
                )
            resolved = resolve_codec(codec) if codec is not None else None
            index: dict[str, int] = {}
            enc_sizes: dict[str, int] = {}
            grid = [
                (dim + c - 1) // c for dim, c in zip(arr.shape, chunks)
            ]
            coord = [0] * arr.ndim
            while True:
                slicer = tuple(
                    slice(ci * c, min((ci + 1) * c, dim))
                    for ci, c, dim in zip(coord, chunks, arr.shape)
                )
                chunk_data = np.ascontiguousarray(arr[slicer])
                payload = (
                    resolved.encode(chunk_data)
                    if resolved is not None
                    else chunk_data.tobytes()
                )
                offset = self._file._append_data(payload)
                index[_chunk_key(coord)] = offset
                if resolved is not None:
                    enc_sizes[_chunk_key(coord)] = len(payload)
                dim_idx = arr.ndim - 1
                while dim_idx >= 0:
                    coord[dim_idx] += 1
                    if coord[dim_idx] < grid[dim_idx]:
                        break
                    coord[dim_idx] = 0
                    dim_idx -= 1
                if dim_idx < 0 or arr.ndim == 0:
                    break
            meta = {
                "shape": [int(s) for s in arr.shape],
                "dtype": token,
                "layout": LAYOUT_CHUNKED,
                "chunks": list(chunks),
                "chunk_index": index,
                "attrs": {},
            }
            if resolved is not None:
                meta["chunk_enc"] = enc_sizes
        else:
            if data is not None:
                arr = np.ascontiguousarray(data)
                token = _dtype.dtype_token(dtype if dtype is not None else arr.dtype)
                arr = arr.astype(_dtype.token_dtype(token), copy=False)
                if shape is not None and tuple(shape) != arr.shape:
                    raise FormatError(
                        f"shape {tuple(shape)} contradicts data shape {arr.shape}"
                    )
                offset = self._file._append_data(arr.tobytes())
                final_shape = arr.shape
            else:
                if shape is None:
                    raise FormatError("need data or shape to create a dataset")
                token = _dtype.dtype_token(dtype if dtype is not None else np.float32)
                nbytes = int(np.prod(shape, dtype=np.int64)) * _dtype.itemsize(token)
                offset = self._file._append_data(bytes(nbytes))
                final_shape = tuple(int(s) for s in shape)
            meta = {
                "shape": [int(s) for s in final_shape],
                "dtype": token,
                "layout": LAYOUT_CONTIGUOUS,
                "offset": offset,
                "attrs": {},
            }

        parent._node["datasets"][ds_name] = meta
        self._file._mark_dirty()
        ds = self._file._dataset_for(parent._child_path(ds_name), meta)
        if meta["layout"] == LAYOUT_CHUNKED and "chunk_enc" in meta:
            # Record the codec before checksumming: the sidecar must
            # cover exactly the encoded bytes the index points at.
            ds.attrs[CODEC_ATTR] = resolved.spec
        if checksum and meta["layout"] != LAYOUT_VIRTUAL:
            from repro.hdf5lite.checksum import DEFAULT_CHECKSUM_BLOCK, checksum_dataset

            checksum_dataset(
                ds,
                block_size=(
                    checksum_block if checksum_block is not None else DEFAULT_CHECKSUM_BLOCK
                ),
            )
        return ds

    def __repr__(self) -> str:
        return f"<Group {self.path!r} ({len(self)} members)>"


class File(Group):
    """An hdf5lite file handle (also the root group).

    Modes: ``"r"`` read-only, ``"r+"`` read-write existing, ``"w"``
    create/truncate, ``"a"`` read-write, creating if missing.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        mode: str = "r",
        iostats: IOStats | None = None,
        cache: BlockCache | CacheConfig | None = None,
        pool: FilePool | None = None,
        verify_checksums: bool = True,
    ):
        """Open a file.

        ``cache`` — an optional read-side block cache (see
        :mod:`repro.hdf5lite.cache`): a shared :class:`BlockCache`, a
        :class:`CacheConfig` (a private cache is built), or ``None`` /
        budget-0 config for the exact uncached behaviour.
        ``pool`` — an optional :class:`FilePool`; when given, virtual-source
        files are acquired from the pool (shared, kept open) instead of
        being opened privately by this handle.
        ``verify_checksums`` — when True (default), reads of datasets that
        carry a ``repro:crc32`` sidecar verify each block as it is loaded
        and raise :class:`~repro.errors.CorruptDataError` on mismatch;
        False skips verification (unchecksummed files are unaffected
        either way).
        """
        path = os.fspath(path)
        if mode == "a":
            mode = "r+" if os.path.exists(path) else "w"
        if mode not in ("r", "r+", "w"):
            raise ConfigError(f"unsupported file mode {mode!r}")
        self.filename = path
        self.mode = mode
        self.writable = mode != "r"
        self.verify_checksums = bool(verify_checksums)
        #: Degraded-read hook for virtual datasets: ``handler(source,
        #: overlap, exc) -> fill | None`` — return a fill value to mask the
        #: failed source's span, or ``None`` to re-raise.  Installed by
        #: ``storage.open_vca(on_error="mask"/"skip")``; ``None`` (default)
        #: keeps reads fail-fast.
        self.on_source_error = None
        #: Source paths (as written in the virtual layout) to skip without
        #: attempting a read; their spans are filled with ``source_fill``
        #: (or the dataset fill when ``None``).
        self.skip_sources: set[str] = set()
        self.source_fill: float | None = None
        self._dirty = False
        # Parsed checksum sidecars by dataset path (Dataset objects are
        # created per access, so the parse cache must live on the file).
        self._crc_cache: dict[str, Any] = {}
        self._source_cache: dict[str, File] = {}
        self._cache = resolve_cache(cache)
        self._pool = pool
        self._cache_key = normalize_file_key(path)
        if self._cache is not None and mode == "w":
            # Truncating invalidates anything a shared cache knew about us.
            self._cache.invalidate_file(self._cache_key)

        if mode == "w":
            self._backend = FileBackend(path, "w+b", iostats)
            self._backend.write_header(Header(FORMAT_VERSION, HEADER_SIZE, 0))
            self._data_end = HEADER_SIZE
            root = _empty_node()
        else:
            backend_mode = "rb" if mode == "r" else "r+b"
            self._backend = FileBackend(path, backend_mode, iostats)
            header = self._backend.read_header()
            if header.meta_len == 0:
                root = _empty_node()
                self._data_end = header.meta_offset
            else:
                raw = self._backend.read_at(header.meta_offset, header.meta_len)
                try:
                    root = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise FormatError(f"corrupt metadata footer: {exc}") from exc
                self._data_end = header.meta_offset

        super().__init__(self, "/", root)

    # -- plumbing used by Group/Dataset ------------------------------------------
    def _mark_dirty(self) -> None:
        self._dirty = True

    def _append_data(self, payload: bytes) -> int:
        """Append raw dataset bytes to the data region; return the offset."""
        offset = self._data_end
        self._backend.write_at(offset, payload)
        self._data_end = offset + len(payload)
        self._dirty = True
        self._invalidate_cache()
        return offset

    def _invalidate_cache(self) -> None:
        """Drop this file's cached blocks after any mutation."""
        if self._cache is not None:
            self._cache.invalidate_file(self._cache_key)

    def _dataset_for(self, path: str, meta: dict[str, Any]) -> Dataset:
        return Dataset(self, path, meta)

    def _resolve_source(self, source_path: str) -> "File":
        """Open (and cache) a source file referenced by a virtual dataset.

        With a :class:`FilePool` attached, handles come from (and belong
        to) the pool — shared across every file using that pool, never
        re-opened per read.  Otherwise this handle keeps its own private
        source handles, closed together with it.
        """
        if not os.path.isabs(source_path):
            source_path = os.path.join(os.path.dirname(self.filename), source_path)
        source_path = os.path.normpath(source_path)
        if self._pool is not None:
            return self._pool.acquire(source_path, iostats=self._backend.iostats)
        cached = self._source_cache.get(source_path)
        if cached is not None and not cached._backend.closed:
            return cached
        src = File(
            source_path,
            "r",
            iostats=self._backend.iostats,
            cache=self._cache,
            verify_checksums=self.verify_checksums,
        )
        self._source_cache[source_path] = src
        return src

    def dataset(self, path: str) -> Dataset:
        """Fetch a dataset by absolute path, with a clear error otherwise."""
        obj = self[path]
        if not isinstance(obj, Dataset):
            raise FormatError(f"{path!r} is a group, not a dataset")
        return obj

    # -- lifecycle ---------------------------------------------------------------
    @property
    def iostats(self) -> IOStats:
        return self._backend.iostats

    @property
    def cache(self) -> BlockCache | None:
        return self._cache

    def set_iostats(self, iostats: IOStats) -> None:
        """Re-point I/O accounting at ``iostats`` (pooled-handle reuse)."""
        self._backend.iostats = iostats
        for src in self._source_cache.values():
            if not src.closed:
                src.set_iostats(iostats)

    def flush(self) -> None:
        """Write the metadata footer and header if anything changed."""
        if not self.writable or not self._dirty:
            return
        payload = json.dumps(self._node, separators=(",", ":")).encode("utf-8")
        self._backend.write_at(self._data_end, payload)
        self._backend.truncate(self._data_end + len(payload))
        self._backend.write_header(
            Header(FORMAT_VERSION, self._data_end, len(payload))
        )
        self._backend.flush()
        self._dirty = False

    def close(self) -> None:
        if self._backend.closed:
            return
        for src in self._source_cache.values():
            src.close()
        self._source_cache.clear()
        self.flush()
        self._backend.close()

    @property
    def closed(self) -> bool:
        return self._backend.closed

    def __enter__(self) -> "File":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"mode={self.mode!r}"
        return f"<File {self.filename!r} {state}>"
