#!/usr/bin/env bash
# CI entry point: tier-1 test suite + benchmark smoke runs.
#
# The cache smoke run asserts the cached VCA read path issues strictly
# fewer file opens and backend read requests than the uncached path, and
# that a budget-0 cache reproduces uncached behaviour byte-for-byte
# (BENCH_cache.json).  The pipeline smoke run asserts the streaming
# chunked executor matches materialized execution to 1e-9 while its peak
# resident bytes stay strictly below (BENCH_pipeline.json).  The rt
# smoke run drip-feeds a spool through the monitoring service and
# asserts its event log is seam-equivalent to one batch run over the
# concatenated record (BENCH_rt.json).  The faults smoke run asserts
# checksum verification costs < 10% on the cached VCA read path and that
# masked degraded reads are equivalent to clean runs outside the masked
# spans (BENCH_faults.json).  The compress smoke run asserts the lossless
# codec roundtrip through storage is bit-identical and that compressed
# source files move strictly fewer backend bytes than raw on a full VCA
# read (BENCH_compress.json).  The planner smoke run asserts pushdown
# plans read strictly fewer backend bytes than their eager reference
# with bit-identical output, and that a shared-prefix two-detector
# co-run beats two single-detector runs in wall time and bytes read
# (BENCH_planner.json).  The serve smoke run asserts pyramid previews
# read strictly fewer backend bytes than raw-path decimation with
# identical pixels, served windows are bit-exact against a direct
# planner query, and a greedy tenant saturating its quota leaves a
# polite tenant's p95 latency within the configured isolation bound
# (BENCH_serve.json).  repro.checks rejects new lock-discipline,
# exception-taxonomy, operator-contract, planner-geometry, public-API,
# simmpi-protocol, resource-lifecycle, and atomic-persistence findings
# not in scripts/checks_baseline.json; the incremental smoke then
# proves --changed-since on the unchanged tree re-analyzes zero
# modules and replays the full run's findings byte-for-byte.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m repro.checks --baseline scripts/checks_baseline.json
python - <<'EOF'
import json, subprocess, sys, time

def run_checks(*args):
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.checks", "--json",
         "--baseline", "scripts/checks_baseline.json", *args],
        capture_output=True, text=True,
    )
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stderr)
        raise SystemExit(proc.returncode)
    return json.loads(proc.stdout), time.perf_counter() - started

full, full_s = run_checks()
incr, incr_s = run_checks("--changed-since", "HEAD")
state = incr["incremental"]
assert state["modules_reanalyzed"] == [], state
assert json.dumps(incr["findings"]) == json.dumps(full["findings"])
print(f"checks incremental smoke: full {full_s:.2f}s -> --changed-since "
      f"{incr_s:.2f}s, {state['modules_replayed']} modules replayed, "
      f"findings byte-identical")
EOF
python -m pytest -x -q
python benchmarks/bench_cache.py --smoke
python benchmarks/bench_pipeline.py --smoke
python benchmarks/bench_rt_service.py --smoke
python benchmarks/bench_faults.py --smoke
python benchmarks/bench_compress.py --smoke
python benchmarks/bench_planner.py --smoke
python benchmarks/bench_serve.py --smoke
