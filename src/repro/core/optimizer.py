"""Rule-based optimizer lowering expression graphs to physical plans.

Takes one or more :class:`~repro.core.graph.Query` expressions sharing a
scan and produces a :class:`PhysicalPlan` via four rewrites:

1. **Pushdown** — a leading run of
   :class:`~repro.core.graph.ChannelSelectOp` /
   :class:`~repro.core.graph.SubsampleOp` is absorbed into a
   :class:`~repro.storage.chunks.SlicedSource`, so a decimate-by-``q``
   query issues strided backend reads (~``1/q`` of the bytes) and a
   channel selection never reads unselected rows.
2. **Fusion** — maximal runs of adjacent *halo-compatible* maps (same
   rate, default interval algebra, no pre-pass) collapse into one
   :class:`FusedOp` chain stage.
3. **Common-subexpression sharing** — queries branching from the same
   node execute the shared prefix once per chunk and fan its output out
   to every branch tail.
4. **Auto-tuning** — when no chunk size is given and a cluster model is
   supplied, chunk/thread selection comes from
   :func:`~repro.core.planner.tune_stream` over the declared halo
   geometry.

Equivalence contract (asserted by the test suite):

* a **single-output** optimized plan is *bit-identical* to the eager
  :class:`~repro.core.pipeline.StreamPipeline` run of the same operator
  list (``naive=True`` executes exactly that eager form);
* a **multi-output** plan's ``naive=True`` mode plans the same
  union-interval chunks but re-computes the shared prefix per branch,
  unfused and without pushdown — optimized output is bit-identical to
  that reference by construction.  Co-run branches are *not* claimed
  bit-identical to independent single runs: interval-sensitive kernels
  (IIR settling, running-sum ratios) legitimately differ in final bits
  when evaluated over the union of two branches' halos.

Fusion is restricted to operators whose interval methods are the
defaults with ``decimate == 1``: for those, composing ``in_needed`` /
``out_full`` without internal clamping is provably identical (after the
runner's single clamp) to per-level clamped eager execution, which is
what makes fused output bitwise equal — and keeps
:class:`~repro.core.pipeline.IncrementalRunner`'s open-right-edge
planning consistent, so the RT scheduler can fuse its detector chains
without disturbing seam equivalence.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.graph import (
    ChannelSelectOp,
    CoordFrame,
    Query,
    SubsampleOp,
    verify_geometry,
)
from repro.core.pipeline import (
    FnOperator,
    OpContext,
    Operator,
    PipelineProfile,
    PipelineResult,
    SinkOp,
    StreamPipeline,
    _ceil_div,
    _clamp,
)
from repro.errors import ConfigError
from repro.faults.policy import FailurePolicy
from repro.storage.chunks import (
    SlicedSource,
    as_source,
    auto_chunk_samples,
    iter_intervals,
)
from repro.utils.iostats import IOStats
from repro.utils.timer import Timer

__all__ = [
    "BranchPlan",
    "FusedOp",
    "LogicalChain",
    "PhysicalPlan",
    "execute",
    "explain",
    "fuse_operators",
    "optimize",
    "plan_incremental",
]


# ---------------------------------------------------------------------------
# operator fusion
# ---------------------------------------------------------------------------


def _fusable(op: Operator) -> bool:
    """Halo-compatible: fusing must be provably bit-exact *and* planning-
    transparent, so only same-rate maps with the default interval algebra
    and no whole-record pre-pass qualify."""
    t = type(op)
    return (
        isinstance(op, Operator)
        and op.decimate == 1
        and not op.needs_prepass
        and t.out_total is Operator.out_total
        and t.out_fs is Operator.out_fs
        and t.out_channels is Operator.out_channels
        and t.in_rows is Operator.in_rows
        and t.out_core is Operator.out_core
        and t.out_full is Operator.out_full
        and t.in_needed is Operator.in_needed
    )


class FusedOp(Operator):
    """Adjacent halo-compatible maps executed as one chain stage.

    Declares the summed halo ``(sum L, sum R)`` and channel halo; because
    every member keeps the default interval algebra at ``decimate == 1``,
    the composed stage's default declarations reproduce the per-member
    composition exactly, and running the members back-to-back on the
    padded block equals eager per-level execution bit for bit (each
    member sees the same absolute interval it would have seen unfused).
    """

    def __init__(self, members: Sequence[Operator]):
        members = list(members)
        if len(members) < 2:
            raise ConfigError("fusion needs at least two operators")
        for m in members:
            if not _fusable(m):
                raise ConfigError(f"operator {m.name!r} is not fusable")
        self.members = members
        self.name = "fused(" + "+".join(m.name for m in members) + ")"
        self.halo = (
            sum(m.halo[0] for m in members),
            sum(m.halo[1] for m in members),
        )
        self.channel_halo = sum(m.channel_halo for m in members)
        self.stream_safe = all(m.stream_safe for m in members)

    def bind(self, n_channels: int, total_in: int, fs_in: float) -> list:
        states = []
        ch, tot, fs = n_channels, total_in, fs_in
        for m in self.members:
            states.append(m.bind(ch, tot, fs))
            ch = m.out_channels(ch)
            tot = m.out_total(tot)
            fs = m.out_fs(fs)
        return states

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        cur = data
        # ctx.total is only folded through each member's out_total so
        # every member sees its own level geometry; stream-safety is
        # inherited from the members.
        tot, fs = ctx.total, ctx.fs  # noqa: OPC001 - per-level geometry fold
        for m, state in zip(self.members, ctx.state):
            mctx = OpContext(
                start=ctx.start,
                stop=ctx.stop,
                total=tot,
                fs=fs,
                channel_lo=ctx.channel_lo,
                state=state,
                interpreted=ctx.interpreted,
            )
            cur = m.apply(cur, mctx)
            tot = m.out_total(tot)
            fs = m.out_fs(fs)
        return cur


def fuse_operators(operators: Iterable[Operator]) -> list:
    """Replace maximal runs (length >= 2) of fusable adjacent maps with a
    :class:`FusedOp`; everything else passes through unchanged."""
    out: list = []
    run: list = []

    def flush() -> None:
        if len(run) >= 2:
            out.append(FusedOp(list(run)))
        else:
            out.extend(run)
        run.clear()

    for op in operators:
        if isinstance(op, Operator) and not isinstance(op, SinkOp) and _fusable(op):
            run.append(op)
        else:
            flush()
            out.append(op)
    flush()
    return out


def plan_incremental(operators: Sequence[Operator]) -> list:
    """Optimize an eager map chain for incremental (RT) execution.

    Currently fusion only — pushdown/CSE need a planned batch source.
    Fused chains keep :class:`~repro.core.pipeline.IncrementalRunner`'s
    open-right-edge planning and therefore seam equivalence.
    """
    return fuse_operators(list(operators))


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


@dataclass
class LogicalChain:
    """One query's eager operator chain (the 'before' of the rewrite)."""

    label: str
    maps: list
    sink: SinkOp | None
    post: list

    def op_names(self) -> list[str]:
        ops = list(self.maps) + ([self.sink] if self.sink else []) + self.post
        return [op.name for op in ops]


@dataclass
class BranchPlan:
    """One branch's optimized tail (after the shared prefix)."""

    label: str
    maps: list
    sink: SinkOp | None
    post: list


@dataclass
class PhysicalPlan:
    """An optimized, executable plan for one or more queries.

    ``chains`` keeps the eager form (``naive=True`` runs it verbatim);
    ``select``/``step``/``prefix``/``branches`` are the rewritten form.
    ``shared_len`` counts the *logical* shared map prefix (including the
    ``pushed_ops`` absorbed into the source).
    """

    source: Any
    fs: float | None
    chains: list[LogicalChain]
    shared_len: int
    pushed_ops: int
    select: tuple[int, int] | None
    step: int
    prefix: list
    branches: list[BranchPlan]
    chunk_samples: int | None
    threads: int
    cluster: Any = None
    tune: bool = False
    verify: bool = True
    frame: CoordFrame = field(default_factory=CoordFrame)
    notes: list[str] = field(default_factory=list)

    @property
    def pushed(self) -> bool:
        return self.select is not None or self.step > 1

    def note(self, message: str) -> None:
        if message not in self.notes:
            self.notes.append(message)


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------


def optimize(
    queries: Query | Sequence[Query],
    chunk_samples: int | None = None,
    threads: int = 1,
    cluster: Any = None,
    tune: bool = False,
    pushdown: bool = True,
    fuse: bool = True,
    verify: bool = True,
) -> PhysicalPlan:
    """Lower one or more queries sharing a scan into a physical plan."""
    if isinstance(queries, Query):
        queries = [queries]
    queries = list(queries)
    if not queries:
        raise ConfigError("optimize needs at least one query")
    if threads < 1:
        raise ConfigError("threads must be >= 1")

    chains: list[LogicalChain] = []
    id_lists: list[list[int]] = []
    root = None
    for i, q in enumerate(queries):
        if not isinstance(q, Query):
            raise ConfigError(f"not a query: {q!r}")
        nodes = q.chain()
        if root is None:
            root = nodes[0]
        elif nodes[0] is not root:
            raise ConfigError(
                "all queries in one plan must branch from the same scan"
            )
        maps: list = []
        map_ids: list[int] = []
        sink: SinkOp | None = None
        post: list = []
        for n in nodes[1:]:
            if n.kind == "map":
                maps.append(n.op)
                map_ids.append(n.id)
            elif n.kind == "sink":
                sink = n.op
            else:
                post.append(n.op)
        chains.append(
            LogicalChain(label=q.label or f"q{i}", maps=maps, sink=sink, post=post)
        )
        id_lists.append(map_ids)
    labels = [c.label for c in chains]
    if len(set(labels)) != len(labels):
        for i, c in enumerate(chains):
            c.label = f"{c.label}#{i}"

    # Shared logical prefix, by node identity (single query: all maps).
    if len(chains) == 1:
        shared_len = len(id_lists[0])
    else:
        shared_len = 0
        limit = min(len(ids) for ids in id_lists)
        while shared_len < limit and all(
            ids[shared_len] == id_lists[0][shared_len] for ids in id_lists
        ):
            shared_len += 1

    notes: list[str] = []

    # Rule 1: pushdown of a leading selection/subsample run.
    select: tuple[int, int] | None = None
    step = 1
    n_push = 0
    if pushdown:
        for op in chains[0].maps[:shared_len]:
            if isinstance(op, ChannelSelectOp):
                base = 0 if select is None else select[0]
                width = None if select is None else select[1] - select[0]
                if width is not None and op.hi > width:
                    break  # invalid composition; let the eager run raise
                select = (base + op.lo, base + op.hi)
                n_push += 1
            elif isinstance(op, SubsampleOp):
                step *= op.step
                n_push += 1
            else:
                break
    if n_push:
        lo, hi = select if select is not None else (0, -1)
        what = []
        if select is not None:
            what.append(f"channels[{lo}:{hi}]")
        if step > 1:
            what.append(f"1-in-{step} samples")
        notes.append(
            f"pushdown: {' + '.join(what)} lowered into a strided source "
            f"read ({n_push} op{'s' if n_push > 1 else ''} absorbed)"
        )

    shared_rest = chains[0].maps[n_push:shared_len]

    # Rules 2+3: fuse, and split shared prefix from branch tails.
    def _maybe_fuse(ops: list) -> list:
        return fuse_operators(ops) if fuse else list(ops)

    if len(chains) > 1:
        prefix = _maybe_fuse(shared_rest)
        branches = [
            BranchPlan(
                label=c.label,
                maps=_maybe_fuse(c.maps[shared_len:]),
                sink=c.sink,
                post=list(c.post),
            )
            for c in chains
        ]
        if shared_len > n_push or n_push:
            notes.append(
                f"cse: {shared_len}-op shared prefix computed once per "
                f"chunk for {len(chains)} branches"
            )
    else:
        prefix = []
        c = chains[0]
        branches = [
            BranchPlan(
                label=c.label,
                maps=_maybe_fuse(c.maps[n_push:]),
                sink=c.sink,
                post=list(c.post),
            )
        ]
    for op in list(prefix) + [op for b in branches for op in b.maps]:
        if isinstance(op, FusedOp):
            notes.append(f"fuse: {op.name} runs as one chain stage")

    payload = root.payload
    return PhysicalPlan(
        source=payload.get("source"),
        fs=payload.get("fs"),
        chains=chains,
        shared_len=shared_len,
        pushed_ops=n_push,
        select=select,
        step=step,
        prefix=prefix,
        branches=branches,
        chunk_samples=chunk_samples,
        threads=int(threads),
        cluster=cluster,
        tune=tune,
        verify=verify,
        frame=CoordFrame(
            channel_lo=select[0] if select is not None else 0,
            channel_hi=select[1] if select is not None else None,
            sample_step=step,
        ),
        notes=notes,
    )


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def _composed_halo(maps: Sequence[Operator]) -> tuple[int, int]:
    """Composed (left, right) input-halo of a map chain, from probing the
    unclamped ``in_needed`` composition of one output sample."""
    lo, hi = 0, 1
    for op in reversed(list(maps)):
        lo, hi = op.in_needed(lo, hi)
    return max(0, -lo), max(0, hi - 1)


def _verify_plan(plan: PhysicalPlan, src) -> None:
    for chain in plan.chains:
        total = src.n_samples
        for op in chain.maps:
            if total < 1:
                raise ConfigError(
                    f"record exhausted before operator {op.name!r} "
                    f"(branch {chain.label!r})"
                )
            verify_geometry(op, total)
            total = op.out_total(total)


def _resolve_execution(plan: PhysicalPlan, src) -> tuple[int, int]:
    """The raw-level chunk size and thread count this run will use."""
    chunk = plan.chunk_samples
    threads = plan.threads
    if chunk is None:
        if plan.tune and plan.cluster is not None:
            from repro.core.planner import tune_stream

            halo = _composed_halo(plan.chains[0].maps)
            tuning = tune_stream(
                plan.cluster, src.n_channels, src.n_samples, halo=halo
            )
            chunk, threads = tuning.chunk_samples, tuning.threads
            plan.note(
                f"tuned: chunk={chunk} threads={threads} "
                f"(est {tuning.est_seconds:.3g}s, halo={halo})"
            )
        else:
            chunk = auto_chunk_samples(src.n_channels, src.n_samples)
    chunk = int(chunk)
    if chunk < 1:
        raise ConfigError("chunk_samples must be >= 1")
    if plan.step > 1:
        # Raw chunks must align on the subsample lattice so optimized and
        # eager runs tile identical core targets.
        chunk = _ceil_div(chunk, plan.step) * plan.step
    return chunk, threads


def execute(
    plan: PhysicalPlan,
    source: object = None,
    naive: bool = False,
    timer: Timer | None = None,
    iostats: IOStats | None = None,
    policy: FailurePolicy | None = None,
) -> list[PipelineResult]:
    """Run a physical plan; returns one result per branch (query order).

    ``naive=True`` executes the equivalence reference instead: the eager
    un-rewritten form (single output), or the union-interval plan with
    per-branch prefix recomputation (multi output).  ``source`` overrides
    the plan's scan payload (e.g. an already-open source).
    """
    spec = source if source is not None else plan.source
    if spec is None:
        raise ConfigError("plan has no source: pass one to execute()")
    src = as_source(spec, fs=plan.fs)
    close_after = not isinstance(spec, type(src)) and isinstance(
        spec, (str, os.PathLike)
    )
    try:
        if plan.verify:
            _verify_plan(plan, src)
        timer = timer if timer is not None else Timer()
        chunk, threads = _resolve_execution(plan, src)
        if len(plan.chains) == 1:
            return [
                _execute_single(
                    plan, src, chunk, threads, naive, timer, iostats, policy
                )
            ]
        if policy is not None:
            raise ConfigError(
                "failure policies are not supported for multi-output plans"
            )
        return _execute_multi(plan, src, chunk, naive, timer, iostats)
    finally:
        if close_after:
            src.close()


def _wrap_pushdown(plan: PhysicalPlan, src, chunk: int):
    """The optimized run's source and chunk at that source's level."""
    if not plan.pushed:
        return src, chunk
    lo, hi = plan.select if plan.select is not None else (0, src.n_channels)
    return (
        SlicedSource(src, lo, hi, plan.step),
        max(1, chunk // plan.step),
    )


def _passthrough() -> FnOperator:
    """Identity stage for plans whose every operator was pushed into the
    source (a pure select/decimate read): :class:`StreamPipeline` refuses
    an empty operator list, and the identity has no halo and no rate
    change, so the run is exactly the chunked read."""
    return FnOperator("read", lambda block: block)


def _execute_single(
    plan: PhysicalPlan,
    src,
    chunk: int,
    threads: int,
    naive: bool,
    timer: Timer,
    iostats: IOStats | None,
    policy: FailurePolicy | None,
) -> PipelineResult:
    chain = plan.chains[0]
    if naive:
        ops = list(chain.maps)
        if chain.sink is not None:
            ops.append(chain.sink)
        ops.extend(chain.post)
        pipe = StreamPipeline(ops or [_passthrough()])
        return pipe.run(
            src,
            chunk_samples=chunk,
            threads=threads,
            timer=timer,
            iostats=iostats,
            policy=policy,
        )
    branch = plan.branches[0]
    ops = list(plan.prefix) + list(branch.maps)
    if branch.sink is not None:
        ops.append(branch.sink)
    ops.extend(branch.post)
    run_src, run_chunk = _wrap_pushdown(plan, src, chunk)
    pipe = StreamPipeline(ops or [_passthrough()])
    return pipe.run(
        run_src,
        chunk_samples=run_chunk,
        threads=threads,
        timer=timer,
        iostats=iostats,
        policy=policy,
    )


def _execute_multi(
    plan: PhysicalPlan,
    src,
    chunk: int,
    naive: bool,
    timer: Timer,
    iostats: IOStats | None,
) -> list[PipelineResult]:
    """Union-interval execution of a multi-branch plan.

    Per chunk the branch targets are planned through each full chain,
    their needs are unioned at the source and at the prefix/tail
    boundary, the prefix runs on the union interval, and every branch
    tail consumes its slice of the prefix output.  ``naive`` recomputes
    the prefix per branch (identical arguments, so hoisting it — the CSE
    rewrite — is bitwise safe) and runs the eager unfused, un-pushed
    operator forms.
    """
    share = not naive
    if naive:
        psrc, run_chunk = src, chunk
        prefix_maps = list(plan.chains[0].maps[: plan.shared_len])
        tails = [
            (c.label, list(c.maps[plan.shared_len :]), c.sink, list(c.post))
            for c in plan.chains
        ]
    else:
        psrc, run_chunk = _wrap_pushdown(plan, src, chunk)
        prefix_maps = list(plan.prefix)
        tails = [
            (b.label, list(b.maps), b.sink, list(b.post))
            for b in plan.branches
        ]

    if psrc.n_samples < 1 or psrc.n_channels < 1:
        raise ConfigError("cannot stream an empty source")
    run_chunk = min(max(1, run_chunk), psrc.n_samples)
    n_chunks = _ceil_div(psrc.n_samples, run_chunk)
    n_prefix = len(prefix_maps)

    streamed_before = psrc.bytes_streamed
    io_before = iostats.full_snapshot() if iostats is not None else None

    # Levels: shared prefix, then per-branch tails from the prefix output.
    p_tot = [psrc.n_samples]
    p_rate = [psrc.fs]
    p_ch = [psrc.n_channels]
    for op in prefix_maps:
        p_tot.append(op.out_total(p_tot[-1]))
        p_rate.append(op.out_fs(p_rate[-1]))
        p_ch.append(op.out_channels(p_ch[-1]))
        if p_ch[-1] < 1:
            raise ConfigError(
                f"operator {op.name!r} needs more channels than available"
            )
    pre_sp = StreamPipeline(prefix_maps) if prefix_maps else None
    prefix_states = [
        op.bind(p_ch[k], p_tot[k], p_rate[k])
        for k, op in enumerate(prefix_maps)
    ]

    branch_info = []
    for label, maps, sink, post in tails:
        t_tot, t_rate, t_ch = [p_tot[-1]], [p_rate[-1]], [p_ch[-1]]
        for op in maps:
            t_tot.append(op.out_total(t_tot[-1]))
            t_rate.append(op.out_fs(t_rate[-1]))
            t_ch.append(op.out_channels(t_ch[-1]))
            if t_ch[-1] < 1:
                raise ConfigError(
                    f"operator {op.name!r} needs more channels than available"
                )
            if op.needs_prepass and n_chunks > 1:
                raise ConfigError(
                    f"pre-pass operator {op.name!r} must sit in the shared "
                    "prefix of a multi-output plan"
                )
        branch_info.append(
            {
                "label": label,
                "maps": maps,
                "sink": sink,
                "post": post,
                "sp": StreamPipeline(maps) if maps else None,
                "tot": t_tot,
                "rate": t_rate,
                "ch": t_ch,
                "full_maps": prefix_maps + maps,
                "full_tot": p_tot + t_tot[1:],
                "states": [
                    op.bind(t_ch[k], t_tot[k], t_rate[k])
                    for k, op in enumerate(maps)
                ],
                "pieces": [],
                "sink_state": None,
            }
        )
    if n_chunks > 1 and pre_sp is not None and any(
        op.needs_prepass for op in prefix_maps
    ):
        pre_sp._run_prepasses(
            psrc, run_chunk, p_tot, p_rate, p_ch, prefix_states, timer
        )
    for bi in branch_info:
        if bi["sink"] is not None:
            bi["sink_state"] = bi["sink"].init(
                bi["ch"][-1], bi["tot"][-1], bi["rate"][-1]
            )

    cse_hits = 0
    for c0, c1 in iter_intervals(psrc.n_samples, run_chunk):
        active = []
        for bi in branch_info:
            full_maps, full_tot = bi["full_maps"], bi["full_tot"]
            t = (c0, c1)
            for k, op in enumerate(full_maps):
                t = _clamp(*op.out_core(*t), full_tot[k + 1])
            if t[1] <= t[0]:
                continue
            needs = [t]
            for k in reversed(range(len(full_maps))):
                needs.insert(
                    0, _clamp(*full_maps[k].in_needed(*needs[0]), full_tot[k])
                )
            active.append((bi, t, needs[0], needs[n_prefix]))
        if not active:
            continue
        A = min(n0[0] for _, _, n0, _ in active)
        B = max(n0[1] for _, _, n0, _ in active)
        Ta = min(np_[0] for _, _, _, np_ in active)
        Tb = max(np_[1] for _, _, _, np_ in active)
        with timer.phase("read"):
            block = psrc.read(A, B)

        def run_prefix() -> np.ndarray:
            if pre_sp is None:
                return block[..., Ta - A : Tb - A]
            out, _ = pre_sp._run_chain(
                block, (A, B), (Ta, Tb), p_tot, p_rate, prefix_states,
                0, n_prefix, timer,
            )
            return out

        shared_out = run_prefix() if share else None
        if share:
            cse_hits += max(0, len(active) - 1)
        for bi, tgt, _n0, (ta, tb) in active:
            pre = shared_out if share else run_prefix()
            seg = pre[..., ta - Ta : tb - Ta]
            if bi["sp"] is not None:
                out, _ = bi["sp"]._run_chain(
                    seg, (ta, tb), tgt, bi["tot"], bi["rate"], bi["states"],
                    0, len(bi["maps"]), timer,
                )
            else:
                out = seg[..., tgt[0] - ta : tgt[1] - ta]
            if bi["sink"] is not None:
                ctx = OpContext(
                    start=tgt[0],
                    stop=tgt[1],
                    total=bi["tot"][-1],
                    fs=bi["rate"][-1],
                    state=bi["sink_state"],
                )
                with timer.phase(bi["sink"].name):
                    bi["sink"].consume(bi["sink_state"], out, ctx)
            else:
                bi["pieces"].append(np.ascontiguousarray(out))

    output_bytes = 0
    for bi in branch_info:
        if bi["sink"] is not None:
            with timer.phase(bi["sink"].name):
                output: Any = bi["sink"].finalize(bi["sink_state"])
            for op in bi["post"]:
                n = output.shape[-1] if isinstance(output, np.ndarray) else 0
                ctx = OpContext(
                    start=0, stop=n, total=n, fs=bi["rate"][-1]
                )
                with timer.phase(op.name):
                    output = op.apply(output, ctx)
        elif bi["pieces"]:
            output = (
                bi["pieces"][0]
                if len(bi["pieces"]) == 1
                else np.concatenate(bi["pieces"], axis=-1)
            )
        else:
            output = np.zeros((bi["ch"][-1], 0))
        bi["output"] = output
        if isinstance(output, np.ndarray):
            output_bytes += output.nbytes

    profile = PipelineProfile(
        phases=dict(timer.phases),
        n_chunks=n_chunks,
        chunk_samples=run_chunk,
        threads=1,
        bytes_streamed=psrc.bytes_streamed - streamed_before,
        bytes_read=(
            iostats.full_snapshot()["bytes_read"] - io_before["bytes_read"]
            if io_before is not None
            else None
        ),
        peak_resident_bytes=0,
        output_bytes=output_bytes,
    )
    profile.cse_hits = cse_hits  # plan-level extra, shared by every branch
    return [
        PipelineResult(output=bi["output"], profile=profile, gaps=None)
        for bi in branch_info
    ]


# ---------------------------------------------------------------------------
# explain
# ---------------------------------------------------------------------------


def _describe_source(source: Any) -> str:
    if source is None:
        return "<bound at execute>"
    path = getattr(source, "path", None)
    if path:
        return os.path.basename(os.fspath(path))
    if isinstance(source, (str, os.PathLike)):
        return os.path.basename(os.fspath(source))
    if isinstance(source, np.ndarray):
        return f"array{source.shape}"
    return type(source).__name__


def explain(plan: PhysicalPlan) -> str:
    """A human-readable before/after dump of the plan's rewrites."""
    lines = [f"== logical plan ({len(plan.chains)} branch"
             f"{'es' if len(plan.chains) > 1 else ''}) =="]
    lines.append(f"scan {_describe_source(plan.source)}")
    if len(plan.chains) > 1 and plan.shared_len:
        shared = plan.chains[0].maps[: plan.shared_len]
        lines.append("shared: " + " | ".join(op.name for op in shared))
    for c in plan.chains:
        ops = c.maps[plan.shared_len :] if len(plan.chains) > 1 else c.maps
        names = [op.name for op in ops]
        if c.sink is not None:
            names.append(c.sink.name)
        names.extend(op.name for op in c.post)
        lines.append(f"branch {c.label}: " + " | ".join(names or ["<pass>"]))

    lines.append("== physical plan ==")
    if plan.pushed:
        lo, hi = plan.select if plan.select is not None else (0, -1)
        parts = []
        if plan.select is not None:
            parts.append(f"channels[{lo}:{hi}]")
        if plan.step > 1:
            parts.append(f"step={plan.step}")
        lines.append(
            f"source: SlicedSource({', '.join(parts)}) — strided backend read"
        )
    else:
        lines.append("source: full-resolution scan")
    if plan.prefix:
        lines.append(
            "shared prefix (once per chunk): "
            + " | ".join(op.name for op in plan.prefix)
        )
    for b in plan.branches:
        names = [op.name for op in b.maps]
        if b.sink is not None:
            names.append(b.sink.name)
        names.extend(op.name for op in b.post)
        lines.append(f"branch {b.label}: " + " | ".join(names or ["<pass>"]))
    chunk = plan.chunk_samples if plan.chunk_samples is not None else (
        "tuned" if plan.tune and plan.cluster is not None else "auto"
    )
    lines.append(f"chunking: {chunk} samples, threads={plan.threads}")
    for note in plan.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
