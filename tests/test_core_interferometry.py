"""Tests for the traffic-noise interferometry case study (Algorithm 3)."""

import numpy as np
import pytest

from repro.arrayudf import apply
from repro.core.interferometry import (
    InterferometryConfig,
    interferometry_block,
    master_spectrum,
    noise_correlation_functions,
    preprocess,
    traffic_noise_udf,
)
from repro.errors import ConfigError


@pytest.fixture
def config():
    return InterferometryConfig(fs=100.0, band=(0.5, 10.0), resample_q=4)


class TestConfig:
    def test_out_fs(self, config):
        assert config.out_fs == 25.0

    def test_band_validation(self):
        with pytest.raises(ConfigError):
            InterferometryConfig(fs=100.0, band=(10.0, 5.0))
        with pytest.raises(ConfigError):
            InterferometryConfig(fs=100.0, band=(0.5, 60.0))
        with pytest.raises(ConfigError):
            InterferometryConfig(fs=100.0, band=(0.0, 10.0))

    def test_aliasing_guard(self):
        with pytest.raises(ConfigError, match="alias"):
            InterferometryConfig(fs=100.0, band=(0.5, 12.0), resample_q=8)

    def test_coefficients_are_bandpass(self, config):
        import scipy.signal as sps

        b, a = config.coefficients()
        b_s, a_s = sps.butter(4, (0.5, 10.0), "bandpass", fs=100.0)
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        np.testing.assert_allclose(a, a_s, atol=1e-10)


class TestPreprocess:
    def test_output_rate(self, config):
        data = np.random.default_rng(0).normal(size=(3, 1000))
        out = preprocess(data, config)
        assert out.shape == (3, 250)

    def test_removes_trend_and_out_of_band(self, config):
        t = np.arange(2000) / config.fs
        trend = 5.0 + 0.3 * t
        inband = np.sin(2 * np.pi * 3.0 * t)
        hum = np.sin(2 * np.pi * 30.0 * t)  # outside the 0.5-10 Hz band
        out = preprocess((trend + inband + hum)[None, :], config)[0]
        t_dec = np.arange(len(out)) / config.out_fs
        expected = np.sin(2 * np.pi * 3.0 * t_dec)
        core = slice(40, -40)
        residual = out[core] - expected[core]
        assert np.sqrt(np.mean(residual**2)) < 0.12

    def test_1d_input(self, config):
        out = preprocess(np.random.default_rng(1).normal(size=1000), config)
        assert out.shape == (1, 250)


class TestBlockKernel:
    def test_master_correlates_with_itself(self, config):
        data = np.random.default_rng(2).normal(size=(5, 1000))
        out = interferometry_block(data, config)
        assert out.shape == (5,)
        assert out[config.master_channel] == pytest.approx(1.0)
        assert np.all((out >= 0) & (out <= 1 + 1e-12))

    def test_identical_channels_score_one(self, config):
        base = np.random.default_rng(3).normal(size=1000)
        data = np.tile(base, (4, 1))
        out = interferometry_block(data, config)
        np.testing.assert_allclose(out, 1.0, atol=1e-9)

    def test_shared_master_fft(self, config):
        """Engine path: the master spectrum computed once and passed in
        gives the same answer as the in-block master."""
        data = np.random.default_rng(4).normal(size=(6, 800))
        inline = interferometry_block(data, config)
        mfft = master_spectrum(data[0:1], config)
        shared = interferometry_block(data, config, master_fft=mfft)
        np.testing.assert_allclose(shared, inline, atol=1e-10)

    def test_matches_udf_transcription(self, config):
        """The vectorised kernel equals Algorithm 3 applied channel by
        channel through the Stencil interface."""
        data = np.random.default_rng(5).normal(size=(4, 600))
        mfft = master_spectrum(data[0:1], config)
        batch = interferometry_block(data, config, master_fft=mfft)

        udf = traffic_noise_udf(config, mfft, series_len=600)
        per_channel = apply(data, udf, core_cols=(0, 1))
        np.testing.assert_allclose(per_channel[:, 0], batch, atol=1e-9)

    def test_whitening_option(self):
        config = InterferometryConfig(
            fs=100.0, band=(0.5, 10.0), resample_q=4, whiten_spectra=True
        )
        data = np.random.default_rng(6).normal(size=(3, 1000))
        out = interferometry_block(data, config)
        assert out[0] == pytest.approx(1.0)

    def test_non_2d_rejected(self, config):
        with pytest.raises(ConfigError):
            interferometry_block(np.zeros(100), config)


class TestNoiseCorrelations:
    def test_shapes_and_zero_lag(self, config):
        data = np.random.default_rng(7).normal(size=(4, 1200))
        lags, ncfs = noise_correlation_functions(data, config)
        assert ncfs.shape[0] == 4
        assert len(lags) == ncfs.shape[1]
        assert lags[len(lags) // 2] == pytest.approx(0.0)

    def test_master_autocorrelation_peaks_at_zero(self, config):
        data = np.random.default_rng(8).normal(size=(3, 2000))
        lags, ncfs = noise_correlation_functions(data, config)
        master_row = ncfs[config.master_channel]
        assert abs(lags[np.argmax(master_row)]) < 1e-9

    def test_recovers_interchannel_delay(self):
        """A common signal delayed by d samples on channel 1 puts the NCF
        peak at lag d/out_fs — the physics interferometry relies on."""
        config = InterferometryConfig(fs=100.0, band=(1.0, 10.0), resample_q=2)
        rng = np.random.default_rng(9)
        common = rng.normal(size=4000)
        delay = 40  # samples at 100 Hz -> 0.4 s
        ch0 = common
        ch1 = np.roll(common, delay)
        data = np.stack([ch0, ch1])
        lags, ncfs = noise_correlation_functions(
            data, config, max_lag_seconds=2.0
        )
        peak_lag = lags[np.argmax(np.abs(ncfs[1]))]
        assert peak_lag == pytest.approx(delay / 100.0, abs=0.1)

    def test_max_lag_trim(self, config):
        data = np.random.default_rng(10).normal(size=(2, 1000))
        lags, ncfs = noise_correlation_functions(data, config, max_lag_seconds=1.0)
        assert np.all(np.abs(lags) <= 1.0 + 1e-9)
