"""Ablations for the design choices DESIGN.md calls out.

Not paper figures — these probe the sensitivity of the design:

* threads-per-node sweep (1..32) for HAEE: compute time vs. coordination
  overhead vs. per-node memory,
* ghost-zone (halo) sweep: extra bytes read vs. communication avoided,
* Lustre stripe-count sweep: what striping does to the RCA parallel
  read (the property that makes comm-avoiding beat a merged file),
* storage tier: disk Lustre vs. burst buffer on the small-request-heavy
  pure-MPI pattern.
"""

import numpy as np
import pytest

from repro.arrayudf import apply_mt, partition_rows
from repro.arrayudf.engine import HybridEngine, MPIEngine, WorkloadSpec
from repro.cluster import burst_buffer_cori, cori_haswell
from repro.cluster.storage import BurstBufferModel, IORequest, StorageModel
from repro.storage.model import model_rca_read

WORKLOAD = WorkloadSpec(
    total_bytes=int(1.9 * 2**40),
    n_files=2880,
    master_bytes=30000 * 1440 * 2 * 8,
)


def test_ablation_threads_sweep(benchmark, report):
    benchmark.pedantic(_threads_sweep, args=(report,), rounds=1, iterations=1)


def _threads_sweep(report):
    nodes = 364
    cluster = cori_haswell(nodes)
    lines = [
        "Ablation - HAEE threads per node (364 nodes, 1.9 TB)",
        "",
        f"{'threads':>8} {'compute(s)':>11} {'peak mem/node':>15} {'status':>8}",
    ]
    previous = None
    for threads in (1, 2, 4, 8, 16, 32):
        engine = HybridEngine(cluster, nodes, threads_per_rank=threads)
        result = engine.estimate(WORKLOAD)
        if result.failed:
            lines.append(f"{threads:>8} {'-':>11} {'-':>15} {'OOM':>8}")
            continue
        lines.append(
            f"{threads:>8} {result.compute_time:>11.2f} "
            f"{result.peak_node_bytes / 2**30:>13.1f}GB {'ok':>8}"
        )
        if previous is not None and previous.failed is None:
            # More threads always help compute, sub-linearly.
            assert result.compute_time < previous.compute_time
            ideal = previous.compute_time / (threads / previous.threads_per_rank)
            assert result.compute_time >= ideal * 0.999
        previous = result
    lines += ["", "compute scales with threads but pays coordination overhead;",
              "memory grows with per-thread working sets."]
    report("ablation_threads", lines)


def test_ablation_halo_sweep(benchmark, report):
    benchmark.pedantic(_halo_sweep, args=(report,), rounds=1, iterations=1)


def _halo_sweep(report):
    rows, cols, ranks = 512, 2048, 16
    total = rows * cols * 4
    lines = [
        "Ablation - ghost zone (halo) size, 16 ranks over a 512x2048 array",
        "",
        f"{'halo':>6} {'extra bytes read':>17} {'overhead %':>11}",
    ]
    for halo in (0, 1, 2, 4, 8, 16, 32):
        read = sum(
            partition_rows((rows, cols), ranks, r, halo=halo).read_nbytes(4)
            for r in range(ranks)
        )
        extra = read - total
        lines.append(f"{halo:>6} {extra:>17,} {100.0 * extra / total:>10.2f}%")
        # Halo cost: at most 2*halo rows per rank, linear growth.
        assert extra <= 2 * halo * ranks * cols * 4
    lines += ["", "ghost zones trade a linear-in-halo read overhead for zero",
              "neighbour communication during Apply (paper SS II-B)."]
    report("ablation_halo", lines)

    # Correctness across halos: a +-2-row stencil with halo>=2 must match
    # the single-block reference everywhere, including rank boundaries.
    data = np.random.default_rng(0).normal(size=(48, 64))
    udf = lambda s: s(-2, 0) + s(2, 0)  # noqa: E731
    padded = np.pad(data, ((2, 2), (0, 0)), mode="edge")
    expected = padded[:-4, :] + padded[4:, :]
    pieces = []
    for r in range(4):
        part = partition_rows(data.shape, 4, r, halo=2)
        block = data[part.read_row_lo : part.read_row_hi]
        out = apply_mt(
            block,
            udf,
            threads=2,
            core_rows=(part.core_offset, part.core_offset + part.core_rows),
            boundary="clamp",
        )
        pieces.append(out)
    np.testing.assert_allclose(np.concatenate(pieces, axis=0), expected)


def test_ablation_stripe_sweep(benchmark, report):
    benchmark.pedantic(_stripe_sweep, args=(report,), rounds=1, iterations=1)


def _stripe_sweep(report):
    p = 90
    total = 2880 * 700 * 2**20
    lines = [
        "Ablation - Lustre stripe count of the merged RCA (90 readers, 2 TB)",
        "",
        f"{'stripes':>8} {'RCA read(s)':>12}",
    ]
    times = {}
    for stripes in (1, 2, 4, 8, 16, 32, 64, 128, 248):
        base = cori_haswell(p)
        storage = StorageModel(
            ost_count=base.storage.ost_count,
            ost_bandwidth=base.storage.ost_bandwidth,
            client_bandwidth=base.storage.client_bandwidth,
            open_overhead=base.storage.open_overhead,
            per_request_overhead=base.storage.per_request_overhead,
            default_stripe_count=stripes,
        )
        cluster = base.with_nodes(p)
        cluster = type(cluster)(
            nodes=cluster.nodes,
            node=cluster.node,
            network=cluster.network,
            storage=storage,
            name=cluster.name,
            core_flops=cluster.core_flops,
        )
        t = model_rca_read(cluster, p, total).total
        times[stripes] = t
        lines.append(f"{stripes:>8} {t:>12.1f}")
    # Wider striping monotonically improves the shared-file read.
    ordered = [times[s] for s in (1, 2, 4, 8, 16, 32, 64)]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    lines += ["", "a single merged file is only as parallel as its stripe",
              "count - the reason file-per-process reads (comm-avoiding)",
              "outrun the RCA despite identical byte counts."]
    report("ablation_stripes", lines)


def test_ablation_storage_tier(benchmark, report):
    benchmark.pedantic(_storage_tier, args=(report,), rounds=1, iterations=1)


def _storage_tier(report):
    """Disk vs burst buffer under the request-heavy pure-MPI pattern."""
    nodes = 728
    lines = [
        "Ablation - storage tier under pure-MPI ArrayUDF I/O (728 nodes)",
        "",
        f"{'tier':<16} {'read(s)':>9}",
    ]
    results = {}
    for name, cluster in (
        ("disk lustre", cori_haswell(nodes)),
        ("burst buffer", burst_buffer_cori(nodes)),
    ):
        engine = MPIEngine(cluster, nodes, ranks_per_node=16)
        result = engine.estimate(WORKLOAD)
        results[name] = result.read_time
        lines.append(f"{name:<16} {result.read_time:>9.1f}")
    assert results["burst buffer"] < results["disk lustre"] / 3
    lines += ["", "the paper's SS VI-E remedy: the burst buffer's IOPS headroom",
              "absorbs the 33M small requests that swamp the disk system."]
    report("ablation_storage_tier", lines)


def test_ablation_applymt_thread_correctness(benchmark):
    """Real ApplyMT across thread counts on this machine (single core:
    we verify identical results and report, not assert, timing)."""
    data = np.random.default_rng(1).normal(size=(64, 256))
    udf = lambda s: (s(0, -1) + s(0, 0) + s(0, 1)) / 3  # noqa: E731

    def sweep():
        outputs = [
            apply_mt(data, udf, threads=t, boundary="clamp") for t in (1, 2, 4, 8)
        ]
        for out in outputs[1:]:
            np.testing.assert_allclose(out, outputs[0])
        return outputs[0]

    result = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert result.shape == data.shape
