"""Atomic JSON checkpoints for kill-and-resume.

A checkpoint is one JSON document: the list of fully-processed files
(with their sample counts), the seam scheduler's carried state (tail
digest + watermarks — the raw tail samples are *not* serialised, they
are re-read from the durable acquisition files on resume), the open
event run, and the queue position.  Writes go through a temp file and
``os.replace`` so a kill mid-write leaves the previous checkpoint
intact, never a torn one.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import ReproError, StorageError
from repro.faults.policy import retry_call
from repro.storage.dasfile import DASFile
from repro.storage.gaps import GapMap

CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = ".das_rt_checkpoint.json"


class CheckpointStore:
    """Load/save/clear one atomic JSON checkpoint file."""

    def __init__(self, path: str):
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, payload: dict) -> None:
        """Atomically persist ``payload`` (version stamp added here)."""
        document = {"version": CHECKPOINT_VERSION}
        document.update(payload)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def load(self) -> dict | None:
        """The last checkpoint, or ``None`` when none was ever taken."""
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"unreadable checkpoint {self.path}: {exc}")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise StorageError(
                f"checkpoint version {payload.get('version')!r} unsupported"
            )
        return payload

    def clear(self) -> None:
        if os.path.exists(self.path):
            os.remove(self.path)


def read_sample_range(
    files: list[tuple[str, int]],
    lo: int,
    hi: int,
    on_error: str = "raise",
    fill_value: float = float("nan"),
    gaps: GapMap | None = None,
    retries: int = 1,
    backoff: float = 0.0,
) -> np.ndarray:
    """Re-read raw samples ``[lo, hi)`` of the concatenated record.

    ``files`` lists ``(path, n_samples)`` in record order — the
    checkpoint's ``files_done``.  Only the overlapping slice of each
    file is read (partial reads through :class:`DASFile`), which is how a
    resume rebuilds the carried tail without re-reading whole files.

    Each file read is retried up to ``retries`` times (exponential
    ``backoff``) — the same degraded-read semantics as the parallel VCA
    readers.  With ``on_error="mask"``, a file that stays unreadable
    (corrupted, truncated, vanished) contributes a ``fill_value`` span
    recorded in ``gaps`` instead of killing the whole range read; with
    the default ``"raise"`` the typed error propagates.  At least one
    file must be readable in mask mode — the channel count comes from a
    real block.
    """
    if lo < 0 or hi < lo:
        raise StorageError(f"bad sample range [{lo}, {hi})")
    if on_error not in ("raise", "mask"):
        raise StorageError(f"on_error must be 'raise' or 'mask', got {on_error!r}")
    # (absolute_lo, width, array-or-None, path, reason)
    pieces: list[tuple[int, int, np.ndarray | None, str, str | None]] = []
    offset = 0
    for path, n_samples in files:
        n_samples = int(n_samples)
        file_lo, file_hi = offset, offset + n_samples
        offset = file_hi
        if file_hi <= lo or file_lo >= hi:
            continue
        a = max(lo, file_lo) - file_lo
        b = min(hi, file_hi) - file_lo

        def read_slice() -> np.ndarray:
            with DASFile(path) as handle:
                return np.asarray(handle.data[:, a:b], dtype=np.float64)

        try:
            block = retry_call(
                read_slice,
                retries=retries,
                backoff=backoff,
                retry_on=(ReproError, OSError, KeyError),
            )
            pieces.append((file_lo + a, b - a, block, path, None))
        except (ReproError, OSError, KeyError) as exc:
            if on_error == "raise":
                raise
            reason = f"{type(exc).__name__}: {exc}"
            pieces.append((file_lo + a, b - a, None, path, reason))
    if offset < hi:
        raise StorageError(
            f"checkpointed files cover {offset} samples but the carried "
            f"tail needs [{lo}, {hi})"
        )
    real = [block for _, _, block, _, _ in pieces if block is not None]
    if not real:
        if any(block is None for _, _, block, _, _ in pieces):
            raise StorageError(
                f"every file covering [{lo}, {hi}) is unreadable; cannot "
                "even determine the channel count"
            )
        n_channels = 0
        if files:
            with DASFile(files[0][0]) as handle:
                n_channels = handle.data.shape[0]
        return np.zeros((n_channels, 0))
    n_channels = real[0].shape[0]
    out: list[np.ndarray] = []
    for abs_lo, width, block, path, reason in pieces:
        if block is None:
            block = np.full((n_channels, width), fill_value)
            if gaps is not None:
                gaps.record(
                    path, abs_lo, abs_lo + width, reason, attempts=retries + 1
                )
        out.append(block)
    return np.concatenate(out, axis=1)
