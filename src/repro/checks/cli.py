"""``python -m repro.checks`` — run the analyzer suite.

Exit status: 0 when every finding is baselined (or none exist),
1 when new findings surface, 2 on usage errors.

The baseline defaults to ``<root>/scripts/checks_baseline.json`` when
present; ``--no-baseline`` ignores it, ``--update-baseline`` rewrites
its ``findings`` list from the current run (waivers are preserved).
``--json`` emits a stable, sorted document suitable for diffing, with
per-analyzer wall times.

``--changed-since <rev>`` is the diff-aware mode: only modules whose
content digest misses the cache (plus their reverse import closure)
are re-analyzed; everything else replays byte-for-byte from the
per-module result cache (``.checks_cache.json`` under the root, keyed
on content digest + analyzer versions).  Full runs prime the same
cache.  ``--sarif FILE`` additionally writes the *new* (post-baseline)
findings as SARIF 2.1.0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.cache import (
    DEFAULT_CACHE,
    ResultCache,
    incremental_scope,
    merge_incremental,
    prime_cache,
)
from repro.checks.registry import all_analyzers
from repro.checks.runner import load_project, run_analyzers
from repro.checks.sarif import to_sarif
from repro.errors import ConfigError, ReproError

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE = "scripts/checks_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="AST-based concurrency & contract checks for the repro tree",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: src/repro benchmarks examples)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a stable sorted JSON document instead of text",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} under --root when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline's findings list from this run and exit 0",
    )
    parser.add_argument(
        "--only", default=None, metavar="RULES",
        help="comma-separated rule families or codes "
             "(e.g. exception-taxonomy or TAX001,LCK001)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--changed-since", default=None, metavar="REV",
        help="incremental mode: re-analyze only modules whose content "
             "changed since the cached run (REV labels that run) plus "
             "their import dependents; replay the rest from the cache",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write new (post-baseline) findings as SARIF 2.1.0",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help=f"result cache location (default: {DEFAULT_CACHE} under --root)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    return parser


def _list_rules() -> int:
    for analyzer in all_analyzers():
        print(f"{analyzer.name}: {analyzer.description}")
        for code, text in sorted(analyzer.codes.items()):
            print(f"  {code}  {text}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    root = Path(args.root).resolve()
    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            if not baseline_path.is_absolute():
                baseline_path = root / baseline_path
        elif (root / DEFAULT_BASELINE).exists():
            baseline_path = root / DEFAULT_BASELINE

    only = args.only.split(",") if args.only else None
    # The cache stores full-engine, full-tree results; a filtered run
    # would poison it, so those runs neither read nor write it.
    use_cache = not (args.no_cache or only or args.paths)
    cache_path = Path(args.cache) if args.cache else root / DEFAULT_CACHE
    if not cache_path.is_absolute():
        cache_path = root / cache_path

    timings: dict[str, float] = {}
    incremental = None
    try:
        if args.changed_since is not None and (only or args.paths or args.no_cache):
            raise ConfigError(
                "--changed-since needs the full engine over the full tree "
                "(drop --only / explicit paths / --no-cache)"
            )
        project = load_project(root, args.paths or None)
        if args.changed_since is not None:
            cache = ResultCache.load(cache_path, all_analyzers())
            scope, _changed = incremental_scope(project, cache)
            project.scope = scope
            fresh = run_analyzers(project, only=None, timings=timings)
            incremental = merge_incremental(project, cache, fresh, scope)
            findings = incremental.findings
            cache.save()
        else:
            findings = run_analyzers(project, only=only, timings=timings)
            if use_cache:
                cache = ResultCache.load(cache_path, all_analyzers())
                prime_cache(project, cache, findings)
                cache.save()
        baseline = Baseline.load(baseline_path)
    except ConfigError as exc:
        print(f"repro.checks: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:  # any other framework failure is a usage error here
        print(f"repro.checks: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline_path is None:
            baseline_path = root / DEFAULT_BASELINE
        baseline.save(baseline_path, findings)
        pinned = len(baseline.updated_document(findings)["findings"])
        print(f"repro.checks: baseline updated ({pinned} findings pinned) "
              f"-> {baseline_path}")
        return 0

    new, baselined = baseline.split(findings)

    if args.sarif:
        sarif_path = Path(args.sarif)
        sarif_doc = to_sarif(new, all_analyzers())
        sarif_path.write_text(
            json.dumps(sarif_doc, indent=2) + "\n", encoding="utf-8"
        )  # noqa: ATM001 - report artifact, regenerated every run

    if args.as_json:
        document = {
            "root": str(root),
            "modules_scanned": len(project.modules),
            "findings": [f.to_dict() for f in new],
            "baselined": len(baselined),
            "timings_ms": timings,
        }
        if incremental is not None:
            document["incremental"] = {
                "changed_since": args.changed_since,
                "modules_reanalyzed": incremental.reanalyzed,
                "modules_replayed": incremental.replayed,
            }
        print(json.dumps(document, indent=2, sort_keys=False))
    else:
        for finding in new:
            print(finding.format())
        summary = (
            f"repro.checks: {len(new)} new finding(s), "
            f"{len(baselined)} baselined, {len(project.modules)} modules scanned"
        )
        if incremental is not None:
            summary += (
                f" ({len(incremental.reanalyzed)} re-analyzed, "
                f"{incremental.replayed} replayed from cache)"
            )
        print(summary if new else f"{summary} — OK")
    return 1 if new else 0
