"""Checks fixture: resource-lifecycle violations.

Expected RES001: ``leak_on_return`` leaks its handle on both the
return path and the exception path (two findings, one line);
``leak_on_exception`` closes on the happy path but leaks when the read
between open and close raises (one finding).  Expected RES002: a
socket recv and a sleep inside ``with self._lock:``, plus a recv in a
``# holds-lock`` method whose class declares guarded state (three
findings).
"""

import threading
import time


def leak_on_return(path):
    fh = open(path, "w")
    fh.write("x")
    return True


def leak_on_exception(path):
    fh = open(path)
    text = fh.read()  # raises -> fh is still open on the exception edge
    fh.close()
    return text


class ChannelMonitor:
    def __init__(self):
        self._lock = threading.Lock()
        self.sock = None
        self.rows = []  # guarded-by: _lock

    def fetch(self):
        with self._lock:
            return self.sock.recv(1024)  # every contender stalls on the read

    def nap(self):
        with self._lock:
            time.sleep(0.5)

    def drain(self):  # holds-lock
        return self.sock.recv(4096)
