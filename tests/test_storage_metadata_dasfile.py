"""Tests for DAS metadata, timestamps, and the per-minute file format."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.dasfile import (
    DASFile,
    das_filename,
    read_das_file,
    read_das_metadata,
    write_das_file,
)
from repro.storage.metadata import (
    DASMetadata,
    format_timestamp,
    parse_timestamp,
    timestamp_add_seconds,
)


class TestTimestamps:
    def test_parse_roundtrip(self):
        stamp = "170728224510"
        assert format_timestamp(parse_timestamp(stamp)) == stamp

    def test_parse_fields(self):
        when = parse_timestamp("170620100545")
        assert (when.year, when.month, when.day) == (2017, 6, 20)
        assert (when.hour, when.minute, when.second) == (10, 5, 45)

    def test_add_seconds(self):
        assert timestamp_add_seconds("170620100545", 60) == "170620100645"
        assert timestamp_add_seconds("170620235930", 60) == "170621000030"

    def test_add_crosses_midnight_and_year(self):
        assert timestamp_add_seconds("171231235959", 2) == "180101000001"

    @pytest.mark.parametrize("bad", ["17062010054", "1706201005456", "abc", "17062a100545"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(StorageError):
            parse_timestamp(bad)

    def test_lexicographic_order_is_time_order(self):
        stamps = ["170620100545", "170620100645", "171231235959", "180101000001"]
        parsed = [parse_timestamp(s) for s in stamps]
        assert sorted(stamps) == [format_timestamp(p) for p in sorted(parsed)]


class TestDASMetadata:
    def test_attrs_roundtrip(self):
        meta = DASMetadata(500.0, 2.0, "170620100545", 11648, extras={"site": "westSac"})
        rebuilt = DASMetadata.from_attrs(meta.to_attrs())
        assert rebuilt == meta

    def test_fig4_keys_present(self):
        attrs = DASMetadata().to_attrs()
        assert "SamplingFrequency(HZ)" in attrs
        assert "SpatialResolution(m)" in attrs
        assert "TimeStamp(yymmddhhmmss)" in attrs
        assert "Number of objects" in attrs

    def test_missing_key_rejected(self):
        with pytest.raises(StorageError, match="not a DAS file"):
            DASMetadata.from_attrs({"SamplingFrequency(HZ)": 500})

    def test_duration(self):
        meta = DASMetadata(sampling_frequency=500.0)
        assert meta.duration_seconds(30000) == pytest.approx(60.0)

    def test_invalid_values(self):
        with pytest.raises(StorageError):
            DASMetadata(sampling_frequency=0)
        with pytest.raises(StorageError):
            DASMetadata(spatial_resolution=-1)
        with pytest.raises(StorageError):
            DASMetadata(timestamp="nope")
        with pytest.raises(StorageError):
            DASMetadata(n_channels=-1)


class TestDASFileIO:
    def test_filename_convention(self):
        assert das_filename("170620100545") == "westSac_170620100545.h5"

    def test_write_read_roundtrip(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(8, 50)).astype(np.float32)
        meta = DASMetadata(500.0, 2.0, "170620100545", 8)
        path = str(tmp_path / "f.h5")
        write_das_file(path, data, meta)
        back, meta_back = read_das_file(path)
        np.testing.assert_array_equal(back, data)
        assert meta_back.timestamp == meta.timestamp
        assert meta_back.n_channels == 8

    def test_metadata_only_read(self, tmp_path):
        data = np.zeros((4, 30), dtype=np.float32)
        path = str(tmp_path / "f.h5")
        write_das_file(path, data, DASMetadata(n_channels=4))
        meta, shape = read_das_metadata(path)
        assert shape == (4, 30)
        assert meta.sampling_frequency == 500.0

    def test_channel_groups_written(self, tmp_path):
        data = np.zeros((3, 10), dtype=np.float32)
        path = str(tmp_path / "f.h5")
        write_das_file(path, data, DASMetadata(n_channels=3), channel_groups=True)
        with DASFile(path) as das:
            info = das.channel_metadata(2)
            assert info["Array dimension"] == 1
            assert info["Number of raw data values"] == 10

    def test_channel_metadata_missing(self, tmp_path):
        path = str(tmp_path / "f.h5")
        write_das_file(path, np.zeros((3, 10)), DASMetadata(n_channels=3), channel_groups=False)
        with DASFile(path) as das:
            with pytest.raises(StorageError):
                das.channel_metadata(1)

    def test_partial_read_via_handle(self, tmp_path):
        data = np.arange(200, dtype=np.float32).reshape(10, 20)
        path = str(tmp_path / "f.h5")
        write_das_file(path, data, DASMetadata(n_channels=10))
        with DASFile(path) as das:
            assert das.n_channels == 10
            assert das.n_samples == 20
            np.testing.assert_array_equal(das.data[3:5, ::2], data[3:5, ::2])

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            write_das_file(str(tmp_path / "f.h5"), np.zeros(10), DASMetadata())

    def test_channel_count_mismatch_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            write_das_file(
                str(tmp_path / "f.h5"), np.zeros((4, 10)), DASMetadata(n_channels=5)
            )

    def test_opening_non_das_file_fails_cleanly(self, tmp_path):
        from repro.hdf5lite import File

        path = str(tmp_path / "not_das.h5")
        with File(path, "w") as f:
            f.attrs["hello"] = "world"
        with pytest.raises(StorageError):
            DASFile(path)
