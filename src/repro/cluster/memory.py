"""Per-node memory accounting.

Pure-MPI ArrayUDF replicates the master channel on every rank of a node
(16 copies/node in the paper's Fig. 8 test), which makes the 91-node case
run out of memory.  ``MemoryTracker`` performs that bookkeeping: engines
register their allocations per node and an :class:`OutOfMemoryError` is
raised the moment a node exceeds its capacity — before any (simulated)
compute is charged, matching how an MPI job dies on allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, OutOfMemoryError


@dataclass
class MemoryTracker:
    """Tracks live allocations per node of a cluster."""

    node_memory: int
    nodes: int
    _used: dict[int, int] = field(default_factory=dict)
    _labels: dict[int, dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.node_memory <= 0 or self.nodes < 1:
            raise ConfigError("invalid memory tracker configuration")

    def used(self, node: int) -> int:
        return self._used.get(node, 0)

    def available(self, node: int) -> int:
        return self.node_memory - self.used(node)

    def allocate(self, node: int, nbytes: int, label: str = "anon") -> None:
        """Charge ``nbytes`` against ``node``; raise if it doesn't fit."""
        if not (0 <= node < self.nodes):
            raise ConfigError(f"node {node} out of range [0, {self.nodes})")
        if nbytes < 0:
            raise ConfigError("cannot allocate a negative amount")
        new_used = self.used(node) + nbytes
        if new_used > self.node_memory:
            raise OutOfMemoryError(node, float(new_used), float(self.node_memory))
        self._used[node] = new_used
        per_label = self._labels.setdefault(node, {})
        per_label[label] = per_label.get(label, 0) + nbytes

    def allocate_all(self, nbytes_per_node: int, label: str = "anon") -> None:
        """Charge the same allocation on every node (SPMD allocations)."""
        for node in range(self.nodes):
            self.allocate(node, nbytes_per_node, label)

    def free(self, node: int, nbytes: int, label: str = "anon") -> None:
        current = self.used(node)
        if nbytes > current:
            raise ConfigError(
                f"freeing {nbytes} bytes but node {node} only holds {current}"
            )
        self._used[node] = current - nbytes
        per_label = self._labels.get(node, {})
        if label in per_label:
            per_label[label] = max(0, per_label[label] - nbytes)

    def peak_node(self) -> tuple[int, int]:
        """(node, bytes) of the most loaded node; (0, 0) when untouched."""
        if not self._used:
            return (0, 0)
        node = max(self._used, key=lambda n: self._used[n])
        return node, self._used[node]

    def breakdown(self, node: int) -> dict[str, int]:
        """Per-label allocation breakdown for diagnostics."""
        return dict(self._labels.get(node, {}))
