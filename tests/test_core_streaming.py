"""The streaming execution core: chunk-boundary equivalence.

The contract under test: running an operator chain chunk-at-a-time with
overlap-aware ghost zones produces the *same numbers* as running it on
the whole array — across chunk sizes (including chunks smaller than the
filtfilt halo and a ragged final chunk), thread counts, and both
Algorithm 2 and Algorithm 3 graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import dassa_run, matlab_style_run
from repro.core.interferometry import (
    InterferometryConfig,
    interferometry_block,
    master_spectrum,
    preprocess,
    preprocess_operators,
    streamed_interferometry,
)
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    local_similarity_block,
    streamed_local_similarity,
)
from repro.core.operators import DetrendOp, FFTSink, FiltFiltOp
from repro.core.pipeline import (
    OpContext,
    Pipeline,
    StreamPipeline,
    run_materialized,
)
from repro.core.stacking import (
    linear_stack,
    phase_weighted_stack,
    streamed_stack,
    window_ncfs,
)
from repro.core.stalta import classic_sta_lta, streamed_sta_lta
from repro.daslib import settle_length
from repro.errors import ConfigError
from repro.storage.chunks import ArraySource, iter_intervals
from repro.utils.timer import Timer


@pytest.fixture(scope="module")
def noise():
    rng = np.random.default_rng(11)
    # A slope + offset per channel makes detrend's global fit matter.
    data = rng.standard_normal((6, 4000))
    data += np.linspace(-2, 2, 6)[:, None]
    data += np.linspace(0, 1.5, 4000)[None, :] * np.arange(1, 7)[:, None]
    return data


CFG = InterferometryConfig(fs=200.0, band=(2.0, 30.0), resample_q=3)


class TestInterferometryStreaming:
    def reference(self, noise):
        mc = CFG.master_channel
        mfft = master_spectrum(noise[mc : mc + 1], CFG)
        return interferometry_block(noise, CFG, master_fft=mfft)

    @pytest.mark.parametrize("chunk", [None, 50, 333, 1024])
    def test_equivalence_across_chunk_sizes(self, noise, chunk):
        # chunk=50 is far below the filtfilt halo; 333 leaves a ragged
        # final chunk (4000 = 12*333 + 4).
        b, a = CFG.coefficients()
        assert settle_length(b, a) > 333
        result = streamed_interferometry(noise, CFG, chunk_samples=chunk)
        assert result.output == pytest.approx(self.reference(noise), abs=1e-9)
        assert result.profile.n_chunks == (
            1 if chunk is None else -(-4000 // chunk)
        )

    def test_threads_match_single_thread(self, noise):
        ref = streamed_interferometry(noise, CFG, chunk_samples=700, threads=1)
        multi = streamed_interferometry(noise, CFG, chunk_samples=700, threads=3)
        assert multi.output == pytest.approx(ref.output, abs=1e-12)

    def test_preprocess_chain_matches_whole_array(self, noise):
        whole = preprocess(noise, CFG)
        pipe = StreamPipeline(preprocess_operators(CFG))
        result = pipe.run(noise, chunk_samples=257, fs=CFG.fs)
        assert result.output.shape == whole.shape
        assert result.output == pytest.approx(whole, abs=1e-9)

    def test_stream_generator_tiles_output(self, noise):
        whole = preprocess(noise, CFG)
        pipe = StreamPipeline(preprocess_operators(CFG))
        seen = 0
        for (lo, hi), block in pipe.stream(noise, chunk_samples=900, fs=CFG.fs):
            assert lo == seen
            assert block == pytest.approx(whole[:, lo:hi], abs=1e-9)
            seen = hi
        assert seen == whole.shape[-1]

    def test_profile_accounts_bytes_and_phases(self, noise):
        result = streamed_interferometry(noise, CFG, chunk_samples=800)
        profile = result.profile
        # Halo re-reads make streamed bytes exceed the raw array.
        assert profile.bytes_streamed > noise.nbytes
        assert profile.peak_resident_bytes > 0
        for name in ("read", "detrend", "filtfilt", "resample", "fft", "correlate"):
            assert name in profile.phases

    def test_streamed_peak_below_materialized(self, noise):
        materialized = matlab_style_run(noise, CFG)
        streamed = dassa_run(noise, CFG, threads=1, chunk_samples=500)
        assert streamed.output == pytest.approx(materialized.output, abs=1e-9)
        assert (
            streamed.profile.peak_resident_bytes
            < materialized.profile.peak_resident_bytes
        )

    def test_baseline_and_streamed_share_phase_names(self, noise):
        mat_timer, str_timer = Timer(), Timer()
        matlab_style_run(noise, CFG, timer=mat_timer)
        dassa_run(noise, CFG, timer=str_timer, chunk_samples=1000)
        expected = {
            "read", "detrend:prepass", "detrend", "taper", "filtfilt",
            "resample", "fft", "correlate",
        }
        assert set(mat_timer.phases) == expected
        # Profiling parity: both policies populate the same phase set.
        assert set(str_timer.phases) == expected


SIMI_CFG = LocalSimilarityConfig(
    half_window=10, channel_offset=2, half_lag=3, stride=7
)


class TestLocalSimilarityStreaming:
    @pytest.mark.parametrize("chunk", [None, 29, 77, 250])
    def test_bit_exact_across_chunk_sizes(self, chunk):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((9, 500))
        ref, centers = local_similarity_block(data, SIMI_CFG)
        result, streamed_centers = streamed_local_similarity(
            data, SIMI_CFG, chunk_samples=chunk
        )
        assert np.array_equal(streamed_centers, centers)
        # Same kernel on the same windows: exact, not approximate.
        assert np.array_equal(result.output, ref)

    def test_threads_split_channel_axis(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((11, 400))
        ref, _ = local_similarity_block(data, SIMI_CFG)
        result, _ = streamed_local_similarity(
            data, SIMI_CFG, chunk_samples=90, threads=3
        )
        assert np.array_equal(result.output, ref)

    @settings(max_examples=20, deadline=None)
    @given(
        chunk=st.integers(8, 400),
        stride=st.integers(1, 30),
        half_window=st.integers(1, 12),
        half_lag=st.integers(0, 4),
    )
    def test_property_chunking_never_changes_output(
        self, chunk, stride, half_window, half_lag
    ):
        config = LocalSimilarityConfig(
            half_window=half_window,
            channel_offset=1,
            half_lag=half_lag,
            stride=stride,
        )
        rng = np.random.default_rng(half_window * 1000 + stride)
        data = rng.standard_normal((5, 300))
        ref, _ = local_similarity_block(data, config)
        result, _ = streamed_local_similarity(data, config, chunk_samples=chunk)
        assert result.output.shape == ref.shape
        assert np.array_equal(result.output, ref)


class TestStaLtaStreaming:
    @pytest.mark.parametrize("chunk", [37, 64, 500, None])
    def test_matches_whole_array(self, chunk):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((5, 2000))
        ref = classic_sta_lta(data, 20, 100, axis=-1)
        result = streamed_sta_lta(data, 20, 100, chunk_samples=chunk)
        assert result.output == pytest.approx(ref, rel=1e-7, abs=1e-10)

    def test_chunks_shorter_than_lta_window(self):
        # classic_sta_lta rejects records shorter than nlta outright;
        # the streamed form must still handle *chunks* that short.
        rng = np.random.default_rng(3)
        data = rng.standard_normal((3, 600))
        ref = classic_sta_lta(data, 10, 150, axis=-1)
        result = streamed_sta_lta(data, 10, 150, chunk_samples=60)
        assert result.output == pytest.approx(ref, rel=1e-7, abs=1e-10)


STACK_CFG = InterferometryConfig(fs=100.0, band=(1.0, 20.0), resample_q=2)


class TestStackingStreaming:
    @pytest.mark.parametrize("method", ["linear", "pws"])
    @pytest.mark.parametrize("chunk", [123, 700, None])
    def test_matches_window_cube_stack(self, method, chunk):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((4, 3000))
        lags, cube = window_ncfs(
            data, STACK_CFG, window_seconds=5.0, overlap=0.5, max_lag_seconds=2.0
        )
        whole = linear_stack(cube) if method == "linear" else phase_weighted_stack(cube)
        result = streamed_stack(
            data,
            STACK_CFG,
            5.0,
            overlap=0.5,
            max_lag_seconds=2.0,
            method=method,
            chunk_samples=chunk,
        )
        streamed_lags, streamed = result.output
        assert streamed_lags == pytest.approx(lags)
        assert streamed == pytest.approx(whole, rel=1e-9, abs=1e-12)

    def test_sink_never_holds_window_cube(self):
        rng = np.random.default_rng(8)
        data = rng.standard_normal((4, 3000))
        _, cube = window_ncfs(
            data, STACK_CFG, window_seconds=5.0, overlap=0.5, max_lag_seconds=2.0
        )
        result = streamed_stack(
            data, STACK_CFG, 5.0, overlap=0.5, max_lag_seconds=2.0,
            chunk_samples=300,
        )
        assert result.profile.peak_resident_bytes < cube.nbytes + data.nbytes


class TestStreamingFromStorage:
    def test_vca_stream_equals_materialized(self, das_dir, tmp_path):
        from repro.storage.chunks import open_stream
        from repro.storage.vca import create_vca
        from repro.utils.iostats import IOStats

        vca_path = create_vca(str(tmp_path / "merged.h5"), das_dir["paths"])
        config = InterferometryConfig(
            fs=2.0, band=(0.05, 0.4), filter_order=2, resample_q=2
        )
        full = das_dir["full"].astype(np.float64)
        mc = config.master_channel
        ref = interferometry_block(
            full, config, master_fft=master_spectrum(full[mc : mc + 1], config)
        )
        iostats = IOStats()
        with open_stream(vca_path, iostats=iostats) as src:
            assert src.fs == 2.0
            result = streamed_interferometry(
                src, config, chunk_samples=200, iostats=iostats
            )
        assert result.output == pytest.approx(ref, abs=1e-9)
        assert result.profile.bytes_read is not None
        assert result.profile.bytes_read > 0


class TestRunnerContracts:
    def test_detrend_prepass_matches_global_fit(self, noise):
        op = DetrendOp()
        acc = op.prepass_init(noise.shape[0], noise.shape[1])
        for lo, hi in iter_intervals(noise.shape[1], 613):
            op.prepass_update(acc, noise[:, lo:hi], lo)
        state = op.prepass_finalize(acc)
        from repro.daslib import detrend

        chunk = (1100, 2300)
        ctx = OpContext(
            start=chunk[0], stop=chunk[1], total=noise.shape[1], state=state
        )
        streamed = op.apply(noise[:, chunk[0] : chunk[1]], ctx)
        whole = detrend(noise, axis=-1)[:, chunk[0] : chunk[1]]
        assert streamed == pytest.approx(whole, abs=1e-9)

    def test_sink_rejects_out_of_order_chunks(self):
        sink = FFTSink()
        state = sink.init(2, 100, 10.0)
        sink.consume(state, np.zeros((2, 40)), OpContext(start=0, stop=40, total=100))
        with pytest.raises(ConfigError):
            sink.consume(
                state, np.zeros((2, 40)), OpContext(start=60, stop=100, total=100)
            )

    def test_at_most_one_sink(self):
        with pytest.raises(ConfigError):
            StreamPipeline([FFTSink(), FFTSink()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            StreamPipeline([])

    def test_run_materialized_phases_match_streamed(self, noise):
        timer = Timer()
        b, a = CFG.coefficients()
        run_materialized([FiltFiltOp(b, a)], noise, fs=CFG.fs, timer=timer)
        assert set(timer.phases) == {"read", "filtfilt"}

    def test_bytes_streamed_counts_halo_rereads(self, noise):
        src = ArraySource(noise, fs=CFG.fs)
        b, a = CFG.coefficients()
        StreamPipeline([FiltFiltOp(b, a)]).run(src, chunk_samples=400)
        assert src.bytes_streamed > noise.nbytes


class TestFusedTimer:
    def test_fused_records_per_stage_phases(self):
        pipe = (
            Pipeline()
            .add("double", lambda x: x * 2)
            .add("inc", lambda x: x + 1)
        )
        fused = pipe.fused()
        assert fused(3) == 7  # timer stays optional
        timer = Timer()
        assert fused(3, timer=timer) == 7
        assert set(timer.phases) == {"double", "inc"}
        assert all(v >= 0.0 for v in timer.phases.values())

    def test_fused_matches_run_phases(self):
        pipe = Pipeline().add("square", lambda x: x * x)
        run_timer, fused_timer = Timer(), Timer()
        assert pipe.run(4, timer=run_timer) == pipe.fused()(4, timer=fused_timer)
        assert set(run_timer.phases) == set(fused_timer.phases)
