"""Earthquake detection via local similarity (paper Algorithm 2).

For each channel and each time window, local similarity measures how
well the window correlates with the best-aligned window on each
neighbouring channel (±K channels, over ±L lags), averaging the two
sides:

    LS(c, t) = ( max_l |corr(W(c,t), W(c+K, t+l))|
               + max_l |corr(W(c,t), W(c-K, t+l))| ) / 2

Coherent signals (earthquake wavefronts, passing cars) light up; channel-
local noise does not.  Two implementations:

* :func:`local_similarity_udf` — the literal Algorithm 2 as an ArrayUDF
  user-defined function over a :class:`~repro.arrayudf.stencil.Stencil`,
* :func:`local_similarity_block` — a vectorised batch kernel computing
  the same map ~100x faster (what the engines call in production).

Tests assert the two agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.arrayudf.stencil import Stencil
from repro.daslib.correlate import abscorr
from repro.daslib.moving import sliding_windows
from repro.errors import ConfigError


@dataclass(frozen=True)
class LocalSimilarityConfig:
    """Algorithm 2 parameters.

    ``half_window`` is the paper's M (window width 2M+1); ``channel_offset``
    is K (neighbour distance); ``half_lag`` is L (2L+1 candidate
    alignments); ``stride`` is the hop between window centres (the paper
    samples a window per output cell; stride M keeps ~50 % overlap).
    """

    half_window: int = 25
    channel_offset: int = 1
    half_lag: int = 5
    stride: int = 25

    def __post_init__(self) -> None:
        if self.half_window < 1 or self.half_lag < 0:
            raise ConfigError("need half_window >= 1 and half_lag >= 0")
        if self.channel_offset < 1:
            raise ConfigError("channel_offset (K) must be >= 1")
        if self.stride < 1:
            raise ConfigError("stride must be >= 1")

    @property
    def window_len(self) -> int:
        return 2 * self.half_window + 1

    @property
    def time_halo(self) -> int:
        """Samples of time context a window centre needs on each side."""
        return self.half_window + self.half_lag

    @property
    def channel_halo(self) -> int:
        return self.channel_offset

    def centers(self, n_samples: int) -> np.ndarray:
        """Valid window-centre sample indices for a series of length n."""
        lo = self.time_halo
        hi = n_samples - self.time_halo
        if hi <= lo:
            return np.zeros(0, dtype=int)
        return np.arange(lo, hi, self.stride)


def local_similarity_udf(
    config: LocalSimilarityConfig,
) -> Callable[[Stencil], float]:
    """Algorithm 2, transcribed: the UDF DASSA hands to ApplyMT."""
    M = config.half_window
    K = config.channel_offset
    L = config.half_lag

    def LocalSimi(S: Stencil) -> float:
        W = S.window((0, 0), (-M, M))  # current window via S
        c_plus = 0.0
        c_minus = 0.0
        for lag in range(-L, L + 1):
            W1 = S.window(+K, (lag - M, lag + M))
            W2 = S.window(-K, (lag - M, lag + M))
            c_plus = max(c_plus, float(abscorr(W, W1)))
            c_minus = max(c_minus, float(abscorr(W, W2)))
        return 0.5 * (c_plus + c_minus)

    return LocalSimi


def local_similarity_block(
    data: np.ndarray,
    config: LocalSimilarityConfig,
    channel_range: tuple[int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised local-similarity map.

    Returns ``(similarity, centers)`` where ``similarity`` has shape
    ``(channels_evaluated, len(centers))`` and ``channel_range`` bounds
    the evaluated channels (default: all channels with both ±K
    neighbours in the block).  Channels at the array edge are skipped
    exactly as the ghost-zone engine would.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("local similarity needs a 2-D (channels, time) block")
    n_channels, n_samples = data.shape
    K = config.channel_offset
    c_lo, c_hi = channel_range if channel_range is not None else (K, n_channels - K)
    if not (0 <= c_lo - K and c_hi + K <= n_channels and c_lo <= c_hi):
        raise ConfigError(
            f"channel range ({c_lo}, {c_hi}) ±{K} outside block of {n_channels}"
        )
    centers = config.centers(n_samples)
    if len(centers) == 0 or c_hi == c_lo:
        return np.zeros((max(0, c_hi - c_lo), len(centers))), centers

    wlen = config.window_len
    M = config.half_window
    # All windows, every start position: (channels, n_samples - wlen + 1, wlen)
    windows = sliding_windows(data, wlen, axis=-1)
    norms = np.sqrt(np.einsum("ctw,ctw->ct", windows, windows))

    start = centers - M  # window start index per centre
    ref = windows[c_lo:c_hi][:, start]  # (C_eval, n_centers, wlen)
    ref_norm = norms[c_lo:c_hi][:, start]

    best_plus = np.zeros(ref.shape[:2])
    best_minus = np.zeros(ref.shape[:2])
    for lag in range(-config.half_lag, config.half_lag + 1):
        shifted = start + lag
        for sign, best in ((+1, best_plus), (-1, best_minus)):
            neigh = windows[c_lo + sign * K : c_hi + sign * K][:, shifted]
            dots = np.abs(np.einsum("ctw,ctw->ct", ref, neigh))
            denom = ref_norm * norms[c_lo + sign * K : c_hi + sign * K][:, shifted]
            with np.errstate(invalid="ignore", divide="ignore"):
                corr = np.where(denom > 0, dots / np.where(denom > 0, denom, 1.0), 0.0)
            np.maximum(best, corr, out=best)
    return 0.5 * (best_plus + best_minus), centers
