"""Service observability: latency, throughput, lag, queue depth.

The numbers the paper reports for the batch engine (Figs. 9-12) are
throughput numbers; a monitoring service is judged on *latency* — how
long after a file lands in the spool its events are in the log.  The
service records per-stage wall time (read / pipeline / events / total
per file), ingest lag (process time minus file mtime), queue depth and
files/sec, all snapshotable as plain dicts for the benchmark and
printable by the CLI.
"""

from __future__ import annotations

import time
from collections import deque

from repro.errors import ConfigError


def _interpolate(ordered: list[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of a pre-sorted sample list."""
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class LatencyStats:
    """Bounded-reservoir latency samples with exact percentiles.

    Keeps the most recent ``cap`` observations (a service runs forever;
    an unbounded list would not) — count and mean cover the full
    history, percentiles the retained window.
    """

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ConfigError("reservoir cap must be >= 1")
        self._samples: deque[float] = deque(maxlen=cap)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1
        self.total += float(seconds)

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile (0-100) of the retained window."""
        if not self._samples:
            return None
        return _interpolate(sorted(self._samples), q)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def snapshot(self) -> dict:
        # One copy, one sort: the deque may be appended to concurrently by
        # the service thread, so iterate it exactly once and derive every
        # statistic from that frozen copy.
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": _interpolate(ordered, 50) if ordered else None,
            "p95_s": _interpolate(ordered, 95) if ordered else None,
            "max_s": ordered[-1] if ordered else None,
        }


class RTMetrics:
    """Counters, gauges, and per-stage latency for one service run."""

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.started = clock()
        self.ticks = 0
        self.files_ingested = 0
        self.files_quarantined = 0
        self.files_requeued = 0
        self.events_emitted = 0
        self.records_finished = 0
        self.samples_in = 0
        self.columns_out = 0
        self.queue_depth = 0
        self.backlog = 0
        self.stages: dict[str, LatencyStats] = {}
        self.ingest_lag = LatencyStats()

    def stage(self, name: str) -> LatencyStats:
        """The named stage's latency histogram (created on first use)."""
        if name not in self.stages:
            self.stages[name] = LatencyStats()
        return self.stages[name]

    @property
    def elapsed(self) -> float:
        return self.clock() - self.started

    @property
    def files_per_second(self) -> float:
        elapsed = self.elapsed
        return self.files_ingested / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """Everything, as a JSON-safe dict (for the benchmark payload)."""
        return {
            "elapsed_s": self.elapsed,
            "ticks": self.ticks,
            "files_ingested": self.files_ingested,
            "files_quarantined": self.files_quarantined,
            "files_requeued": self.files_requeued,
            "events_emitted": self.events_emitted,
            "records_finished": self.records_finished,
            "samples_in": self.samples_in,
            "columns_out": self.columns_out,
            "queue_depth": self.queue_depth,
            "backlog": self.backlog,
            "files_per_second": self.files_per_second,
            "ingest_lag": self.ingest_lag.snapshot(),
            "stages": {
                name: stats.snapshot() for name, stats in self.stages.items()
            },
        }

    def report(self) -> str:
        """Aligned human-readable summary for the CLI."""
        lines = [
            f"{'files ingested':<18}{self.files_ingested}",
            f"{'quarantined':<18}{self.files_quarantined}",
            f"{'events emitted':<18}{self.events_emitted}",
            f"{'queue depth':<18}{self.queue_depth}",
            f"{'files/sec':<18}{self.files_per_second:.2f}",
        ]
        lag = self.ingest_lag.snapshot()
        if lag["count"]:
            lines.append(
                f"{'ingest lag':<18}p50 {lag['p50_s']:.3f}s  "
                f"p95 {lag['p95_s']:.3f}s"
            )
        for name, stats in sorted(self.stages.items()):
            snap = stats.snapshot()
            if snap["count"]:
                lines.append(
                    f"{'stage ' + name:<18}p50 {snap['p50_s'] * 1e3:.1f}ms  "
                    f"p95 {snap['p95_s'] * 1e3:.1f}ms  n={snap['count']}"
                )
        return "\n".join(lines)
