"""Property-based tests for storage invariants: VCA reads always equal
the numpy concatenation, for random file shapes and selections."""

import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.dasfile import write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.storage.parallel_read import channel_block
from repro.storage.vca import create_vca, open_vca


@st.composite
def vca_cases(draw):
    n_files = draw(st.integers(1, 5))
    channels = draw(st.integers(1, 12))
    lengths = [draw(st.integers(1, 30)) for _ in range(n_files)]
    seed = draw(st.integers(0, 2**31 - 1))
    return n_files, channels, lengths, seed


@settings(max_examples=30, deadline=None)
@given(vca_cases(), st.data())
def test_vca_read_equals_concatenation(tmp_path_factory, case, data):
    n_files, channels, lengths, seed = case
    rng = np.random.default_rng(seed)
    root = tmp_path_factory.mktemp("vca-prop")
    stamp = "170620100545"
    blocks = []
    paths = []
    for length in lengths:
        block = rng.normal(size=(channels, length)).astype(np.float32)
        path = os.path.join(str(root), f"f_{stamp}.h5")
        write_das_file(
            path,
            block,
            DASMetadata(
                sampling_frequency=100.0, timestamp=stamp, n_channels=channels
            ),
            channel_groups=False,
        )
        blocks.append(block)
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    full = np.concatenate(blocks, axis=1)

    vca_path = create_vca(os.path.join(str(root), "v.h5"), paths)
    with open_vca(vca_path) as vca:
        assert vca.shape == full.shape
        # Full read
        np.testing.assert_array_equal(vca.dataset.read(), full)
        # Random rectangular selection
        total = full.shape[1]
        c0 = data.draw(st.integers(0, channels - 1))
        c1 = data.draw(st.integers(c0 + 1, channels))
        t0 = data.draw(st.integers(0, total - 1))
        t1 = data.draw(st.integers(t0 + 1, total))
        step = data.draw(st.integers(1, 3))
        np.testing.assert_array_equal(
            vca.dataset[c0:c1, t0:t1:step], full[c0:c1, t0:t1:step]
        )


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 200), st.integers(1, 64))
def test_channel_block_partition_properties(n_channels, size):
    """Blocks are contiguous, ordered, disjoint, cover everything, and
    differ in size by at most one."""
    blocks = [channel_block(n_channels, size, r) for r in range(size)]
    assert blocks[0][0] == 0
    assert blocks[-1][1] == n_channels
    for (a, b), (c, d) in zip(blocks, blocks[1:]):
        assert b == c
        assert a <= b and c <= d
    sizes = [hi - lo for lo, hi in blocks]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == n_channels
