"""Fault-tolerance benchmark: checksum overhead and degraded-read equivalence.

Two claims are measured and asserted:

* **Checksum overhead** — per-chunk CRC32 sidecars are verified at cache
  admission only, so on the *cached* VCA read path (FilePool +
  BlockCache, warm) the checksum-on configuration must cost < 10 % over
  checksum-off.  Cold first passes are reported too, unasserted.
* **Degraded-read equivalence** — with 5 % of the VCA's source files
  fault-injected (seeded: bit-flip / truncate / vanish round-robin),
  ``on_error="mask"`` completes Algorithms 2 and 3 end to end.
  Algorithm 2's output is bit-identical to the clean run outside the
  affected window columns (windows are sample-local).  Algorithm 3
  correlates every channel against the master over the whole record, so
  a masked span touches *every* output; its masked run is instead checked
  bit-identical to the same algorithm on a materialised array with the
  identical spans filled — the documented fill-then-compute semantics.

Results land in ``BENCH_faults.json`` at the repo root.

Usage::

    python benchmarks/bench_faults.py --smoke     # small sizes, CI-friendly
    python benchmarks/bench_faults.py             # default sizes
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.framework import DASSA  # noqa: E402
from repro.core.interferometry import InterferometryConfig  # noqa: E402
from repro.core.local_similarity import LocalSimilarityConfig  # noqa: E402
from repro.faults.inject import FaultInjector  # noqa: E402
from repro.hdf5lite import BlockCache, CacheConfig, FilePool  # noqa: E402
from repro.storage.dasfile import das_filename, write_das_file  # noqa: E402
from repro.storage.metadata import (  # noqa: E402
    DASMetadata,
    timestamp_add_seconds,
)
from repro.storage.vca import VCAHandle, create_vca  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

FS = 50.0


def build_dataset(
    root: str, n_files: int, channels: int, spm: int, checksum: bool
) -> tuple[str, list[str], np.ndarray]:
    """``n_files`` per-minute files (+ a VCA); same bytes either way."""
    rng = np.random.default_rng(7)
    stamp = "170620100545"
    paths, blocks = [], []
    for _ in range(n_files):
        data = rng.normal(size=(channels, spm)).astype(np.float32)
        path = os.path.join(root, das_filename(stamp))
        write_das_file(
            path,
            data,
            DASMetadata(
                sampling_frequency=FS,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=channels,
            ),
            channel_groups=False,
            checksum=checksum,
        )
        paths.append(path)
        blocks.append(data)
        stamp = timestamp_add_seconds(stamp, 60)
    vca = create_vca(os.path.join(root, "day.h5"), paths)
    return vca, paths, np.concatenate(blocks, axis=1)


def timed_cached_passes(vca_path: str, repeats: int) -> dict:
    """Warm one pass through a FilePool+BlockCache, then time ``repeats``
    warm passes; returns cold/warm timings (medians over warm passes)."""
    cache = BlockCache(CacheConfig(byte_budget=256 * 2**20))
    with FilePool(cache=cache) as pool:
        t0 = time.perf_counter()
        with VCAHandle(vca_path, pool=pool) as vca:
            arr = vca.dataset.read()
        cold = time.perf_counter() - t0
        warm = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            with VCAHandle(vca_path, pool=pool) as vca:
                arr = vca.dataset.read()
            warm.append(time.perf_counter() - t0)
    return {
        "cold_s": cold,
        "warm_median_s": statistics.median(warm),
        "warm_min_s": min(warm),
        "warm_s": warm,
        "checksum_of_sum": float(np.float64(arr.sum())),
    }


def measure_checksum_overhead(n_files, channels, spm, repeats) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-faults-plain-") as plain_root:
        plain_vca, _, _ = build_dataset(plain_root, n_files, channels, spm, False)
        plain = timed_cached_passes(plain_vca, repeats)
    with tempfile.TemporaryDirectory(prefix="bench-faults-crc-") as crc_root:
        crc_vca, _, _ = build_dataset(crc_root, n_files, channels, spm, True)
        checked = timed_cached_passes(crc_vca, repeats)
    assert checked["checksum_of_sum"] == plain["checksum_of_sum"]
    # Best-of-N: the warm passes are ~2 ms, so medians pick up scheduler
    # noise from whatever else CI just ran; the minimum is the intrinsic
    # cost of each path.
    overhead = checked["warm_min_s"] / plain["warm_min_s"] - 1.0
    # The acceptance bar: verify-at-admission keeps the warm path free.
    assert overhead < 0.10, (
        f"checksum overhead {overhead:.1%} on the cached read path "
        f"(off {plain['warm_min_s']:.6f}s, on {checked['warm_min_s']:.6f}s)"
    )
    return {
        "checksum_off": plain,
        "checksum_on": checked,
        "warm_overhead_fraction": overhead,
        "bar": 0.10,
    }


def affected_columns(gaps, centers, extent, n_samples) -> np.ndarray:
    """Boolean mask over Algorithm 2 output columns whose window
    (``centers[j]`` ± ``extent``) touches any masked input span."""
    mask = gaps.time_mask(n_samples)
    out = np.zeros(len(centers), dtype=bool)
    for j, center in enumerate(np.asarray(centers, dtype=int)):
        lo = max(0, center - extent)
        hi = min(n_samples, center + extent + 1)
        out[j] = bool(mask[lo:hi].any())
    return out


def measure_degraded_equivalence(n_files, channels, spm, chunk) -> dict:
    sim = LocalSimilarityConfig(
        half_window=25, channel_offset=1, half_lag=5, stride=25
    )
    ifm = InterferometryConfig(fs=FS, band=(0.5, 12.0), resample_q=2)
    report: dict[str, object] = {}
    with tempfile.TemporaryDirectory(prefix="bench-faults-deg-") as root:
        vca, paths, full = build_dataset(root, n_files, channels, spm, True)
        n_samples = full.shape[1]

        clean = DASSA(threads=2)
        t0 = time.perf_counter()
        sim_clean, centers_clean = clean.local_similarity(
            vca, sim, chunk_samples=chunk
        )
        ifm_clean = clean.interferometry(vca, ifm, chunk_samples=chunk)
        report["clean_wall_s"] = time.perf_counter() - t0

        injector = FaultInjector(seed=17)
        victims = injector.choose(paths, fraction=0.05)
        kinds = ["bit-flip", "truncate", "vanish"]
        for i, victim in enumerate(victims):
            injector.inject(kinds[i % len(kinds)], victim)
        report["victims"] = [
            (kind, os.path.basename(path)) for kind, path in injector.injected
        ]

        masked = DASSA(threads=2, on_error="mask")
        t0 = time.perf_counter()
        sim_masked, centers_masked = masked.local_similarity(
            vca, sim, chunk_samples=chunk
        )
        sim_gaps = masked.last_gaps
        ifm_masked = masked.interferometry(vca, ifm, chunk_samples=chunk)
        ifm_gaps = masked.last_gaps
        report["masked_wall_s"] = time.perf_counter() - t0

        # Algorithm 2: bit-identical outside the affected window columns.
        assert sim_gaps is not None and len(sim_gaps) >= len(victims)
        np.testing.assert_array_equal(centers_clean, centers_masked)
        extent = sim.half_window + sim.half_lag
        cone = affected_columns(sim_gaps, centers_clean, extent, n_samples)
        assert cone.any() and not cone.all()
        np.testing.assert_array_equal(
            sim_masked[:, ~cone], sim_clean[:, ~cone]
        )
        report["alg2"] = {
            "gap_spans": sim_gaps.to_json(),
            "columns_total": int(cone.size),
            "columns_affected": int(cone.sum()),
            "bit_identical_outside_cone": True,
        }

        # Algorithm 3: every output couples to the master channel over the
        # whole record, so compare against the same algorithm on a
        # materialised array with the identical spans filled.
        assert ifm_gaps is not None and ifm_gaps
        filled = full.astype(np.float64).copy()
        for span in ifm_gaps:
            filled[:, span.t0 : span.t1] = np.nan
        reference = DASSA(threads=2).interferometry(
            filled, ifm, chunk_samples=chunk
        )
        np.testing.assert_array_equal(ifm_masked, reference)
        assert ifm_masked.shape == ifm_clean.shape
        report["alg3"] = {
            "gap_spans": ifm_gaps.to_json(),
            "matches_fill_then_compute_reference": True,
        }
    return report


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small sizes for CI")
    ap.add_argument("--files", type=int, default=None)
    ap.add_argument("--channels", type=int, default=None)
    ap.add_argument("--spm", type=int, default=None, help="samples per minute-file")
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--chunk", type=int, default=None, help="chunk_samples")
    ap.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_faults.json"),
        help="where to write the JSON results",
    )
    args = ap.parse_args()

    if args.smoke:
        n_files = args.files or 20
        channels = args.channels or 24
        spm = args.spm or 300
        chunk = args.chunk or 500
    else:
        n_files = args.files or 40
        channels = args.channels or 48
        spm = args.spm or 600
        chunk = args.chunk or 1000

    results: dict[str, object] = {
        "bench": "faults",
        "params": {
            "files": n_files,
            "channels": channels,
            "samples_per_file": spm,
            "repeats": args.repeats,
            "chunk_samples": chunk,
            "fault_fraction": 0.05,
        },
    }
    results["checksum_overhead"] = measure_checksum_overhead(
        n_files, channels, spm, args.repeats
    )
    results["degraded_equivalence"] = measure_degraded_equivalence(
        n_files, channels, spm, chunk
    )

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    overhead = results["checksum_overhead"]["warm_overhead_fraction"]
    print(f"checksum warm overhead: {overhead:+.2%} (bar: <10%)")
    print(f"degraded run victims: {results['degraded_equivalence']['victims']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
