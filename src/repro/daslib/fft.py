"""FFT helpers (``Das_fft`` / ``Das_ifft`` and friends).

Thin, documented wrappers over numpy's pocketfft plus ``next_fast_len``
(smallest 5-smooth size ≥ n), which the correlation and resampling code
uses to keep transform sizes fast.
"""

from __future__ import annotations

import numpy as np


def next_fast_len(n: int) -> int:
    """Smallest 5-smooth number (2^a 3^b 5^c) that is >= ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n <= 6:
        return n
    best = 1 << (n - 1).bit_length()  # fallback: next power of two
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            # smallest power of two lifting p35 to >= n
            quotient = -(-n // p35)
            p2 = 1 << (quotient - 1).bit_length()
            candidate = p2 * p35
            if candidate == n:
                return n
            if candidate < best:
                best = candidate
            p35 *= 3
        p5 *= 5
    return best


def fft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Complex FFT along ``axis`` (MATLAB ``fft`` semantics)."""
    return np.fft.fft(np.asarray(x), n=n, axis=axis)


def ifft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse complex FFT along ``axis``."""
    return np.fft.ifft(np.asarray(x), n=n, axis=axis)


def rfft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Real-input FFT (half spectrum)."""
    return np.fft.rfft(np.asarray(x, dtype=np.float64), n=n, axis=axis)


def irfft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`rfft`."""
    return np.fft.irfft(np.asarray(x), n=n, axis=axis)


def fftfreq(n: int, d: float = 1.0) -> np.ndarray:
    """Frequency bins of an ``n``-point FFT with sample spacing ``d``."""
    return np.fft.fftfreq(n, d=d)


def rfftfreq(n: int, d: float = 1.0) -> np.ndarray:
    """Frequency bins of an ``n``-point real FFT."""
    return np.fft.rfftfreq(n, d=d)
