"""Tests for repro.utils.units."""

import pytest

from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    TIB,
    format_bytes,
    format_count,
    format_seconds,
    parse_bytes,
)


class TestParseBytes:
    def test_plain_int(self):
        assert parse_bytes(4096) == 4096

    def test_float(self):
        assert parse_bytes(1.5) == 1

    def test_bare_number_string(self):
        assert parse_bytes("123") == 123

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", KIB),
            ("1kib", KIB),
            ("2MB", 2 * MIB),
            ("3GiB", 3 * GIB),
            ("1.9TB", int(1.9 * TIB)),
            ("700 MB", 700 * MIB),
            ("171MB", 171 * MIB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_bytes(text) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("lots of data")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("12parsecs")


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_gib(self):
        assert format_bytes(1.5 * GIB) == "1.50 GiB"

    def test_tib(self):
        assert format_bytes(1.9 * TIB) == "1.90 TiB"

    def test_negative(self):
        assert format_bytes(-2048) == "-2.00 KiB"

    def test_roundtrip_order_of_magnitude(self):
        # formatted value parses back to within 1% of the original
        original = int(3.7 * GIB)
        reparsed = parse_bytes(format_bytes(original).replace(" ", ""))
        assert abs(reparsed - original) / original < 0.01


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6) == "5.0 us"

    def test_milliseconds(self):
        assert format_seconds(0.0021) == "2.10 ms"

    def test_seconds(self):
        assert format_seconds(12.5) == "12.500 s"

    def test_minutes(self):
        assert format_seconds(600) == "10.00 min"

    def test_hours(self):
        assert format_seconds(9978) == "2.77 h"

    def test_negative(self):
        assert format_seconds(-12.5) == "-12.500 s"


class TestFormatCount:
    def test_small(self):
        assert format_count(42) == "42"

    def test_thousands(self):
        assert format_count(11648) == "11.6K"

    def test_millions(self):
        assert format_count(2_500_000) == "2.5M"

    def test_billions(self):
        assert format_count(3_000_000_000) == "3.0G"
