"""Tests for STA/LTA detection, the persistent catalog, and das_analyze."""

import os

import numpy as np
import pytest

from repro.core.cli import main as das_analyze_main
from repro.core.stalta import (
    Trigger,
    array_detections,
    classic_sta_lta,
    recursive_sta_lta,
    trigger_onset,
)
from repro.errors import ConfigError, StorageError
from repro.storage.catalog import CATALOG_NAME, Catalog


def impulsive_signal(n=2000, onset=1000, fs=100.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n) * 0.1
    t = np.arange(n - onset) / fs
    x[onset:] += 3.0 * np.exp(-t / 2.0) * np.sin(2 * np.pi * 8.0 * t)
    return x


class TestClassicStaLta:
    def test_triggers_on_onset(self):
        x = impulsive_signal()
        ratio = classic_sta_lta(x, nsta=20, nlta=200)
        onset_region = ratio[1000:1100]
        quiet_region = ratio[400:900]
        assert onset_region.max() > 5 * quiet_region.max()

    def test_warmup_region_zero(self):
        ratio = classic_sta_lta(np.ones(500), nsta=10, nlta=100)
        assert np.all(ratio[:99] == 0.0)

    def test_steady_state_ratio_one(self):
        ratio = classic_sta_lta(np.ones(1000), nsta=10, nlta=100)
        np.testing.assert_allclose(ratio[200:], 1.0, atol=1e-9)

    def test_matches_obspy_formula(self):
        """Reference: trailing-window mean of x^2 ratios."""
        x = impulsive_signal(seed=1)
        nsta, nlta = 15, 150
        ratio = classic_sta_lta(x, nsta, nlta)
        i = 1234
        sta = np.mean(x[i - nsta + 1 : i + 1] ** 2)
        lta = np.mean(x[i - nlta + 1 : i + 1] ** 2)
        assert ratio[i] == pytest.approx(sta / lta)

    def test_2d_batch(self):
        data = np.stack([impulsive_signal(seed=s) for s in range(3)])
        ratio = classic_sta_lta(data, nsta=20, nlta=200, axis=-1)
        assert ratio.shape == data.shape

    def test_validation(self):
        with pytest.raises(ConfigError):
            classic_sta_lta(np.zeros(100), nsta=50, nlta=20)
        with pytest.raises(ConfigError):
            classic_sta_lta(np.zeros(10), nsta=2, nlta=50)


class TestRecursiveStaLta:
    def test_triggers_on_onset(self):
        x = impulsive_signal()
        ratio = recursive_sta_lta(x, nsta=20, nlta=200)
        assert ratio[1000:1100].max() > 3 * ratio[400:900].max()

    def test_1d_only(self):
        with pytest.raises(ConfigError):
            recursive_sta_lta(np.zeros((2, 100)), 5, 50)


class TestTriggerOnset:
    def test_single_trigger(self):
        ratio = np.zeros(100)
        ratio[40:60] = 5.0
        triggers = trigger_onset(ratio, on_threshold=3.0, off_threshold=1.0)
        assert triggers == [Trigger(40, 60)]

    def test_hysteresis(self):
        ratio = np.zeros(100)
        ratio[40:50] = 5.0
        ratio[50:70] = 2.0  # below on, above off: stays triggered
        triggers = trigger_onset(ratio, on_threshold=3.0, off_threshold=1.0)
        assert triggers == [Trigger(40, 100)] or triggers == [Trigger(40, 70)]

    def test_open_trigger_at_end(self):
        ratio = np.zeros(50)
        ratio[40:] = 9.0
        triggers = trigger_onset(ratio, 3.0, 1.0)
        assert triggers == [Trigger(40, 50)]

    def test_multiple_triggers(self):
        ratio = np.zeros(100)
        ratio[10:20] = 5.0
        ratio[60:70] = 5.0
        assert len(trigger_onset(ratio, 3.0, 1.0)) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            trigger_onset(np.zeros(10), 1.0, 2.0)
        with pytest.raises(ConfigError):
            trigger_onset(np.zeros((2, 5)), 2.0, 1.0)


class TestArrayDetections:
    def test_detects_array_wide_event(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(16, 3000)) * 0.1
        t = np.arange(400) / 100.0
        data[:, 1500:1900] += 2.0 * np.sin(2 * np.pi * 10.0 * t)
        triggers = array_detections(data, nsta=20, nlta=300, min_fraction=0.5)
        assert len(triggers) >= 1
        assert any(1450 <= tr.on <= 1600 for tr in triggers)

    def test_single_channel_spike_rejected(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(16, 2000)) * 0.1
        data[3, 1000:1050] += 10.0  # only one channel
        triggers = array_detections(data, nsta=20, nlta=300, min_fraction=0.5)
        assert triggers == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            array_detections(np.zeros((2, 500)), 5, 50, min_fraction=0.0)
        with pytest.raises(ConfigError):
            array_detections(np.zeros(500), 5, 50)


class TestCatalog:
    def test_build_save_load_roundtrip(self, das_dir):
        catalog = Catalog.build(das_dir["dir"])
        assert len(catalog) == 6
        catalog.save()
        assert os.path.exists(os.path.join(das_dir["dir"], CATALOG_NAME))
        loaded = Catalog.load(das_dir["dir"])
        assert [e.timestamp for e in loaded] == das_dir["stamps"]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no catalog"):
            Catalog.load(str(tmp_path))

    def test_open_builds_when_absent(self, das_dir):
        catalog = Catalog.open(das_dir["dir"])
        assert len(catalog) == 6

    def test_refresh_picks_up_new_files(self, das_dir):
        catalog = Catalog.build(das_dir["dir"])
        catalog.save()
        # add a new minute
        from repro.storage.dasfile import das_filename, write_das_file
        from repro.storage.metadata import DASMetadata

        stamp = "170620101145"
        write_das_file(
            os.path.join(das_dir["dir"], das_filename(stamp)),
            np.zeros((16, 120), dtype=np.float32),
            DASMetadata(sampling_frequency=2.0, timestamp=stamp, n_channels=16),
            channel_groups=False,
        )
        reopened = Catalog.open(das_dir["dir"])
        assert len(reopened) == 7
        assert reopened.entries[-1].timestamp == stamp

    def test_range_query(self, das_dir):
        catalog = Catalog.build(das_dir["dir"])
        hits = catalog.range_query("170620100645", count=2)
        assert [h.timestamp for h in hits] == ["170620100645", "170620100745"]

    def test_range_query_matches_das_search(self, das_dir):
        from repro.storage.search import das_search

        catalog = Catalog.build(das_dir["dir"])
        for start, count in (("170620100545", 3), ("170620100800", None)):
            via_catalog = catalog.range_query(start, count)
            via_search = das_search(catalog.entries, start=start, count=count)
            assert [e.timestamp for e in via_catalog] == [
                e.timestamp for e in via_search
            ]

    def test_corrupt_catalog_rejected(self, das_dir):
        path = os.path.join(das_dir["dir"], CATALOG_NAME)
        with open(path, "w") as fh:
            fh.write("{broken")
        with pytest.raises(StorageError, match="corrupt"):
            Catalog.load(das_dir["dir"])


class TestDasAnalyzeCLI:
    def test_similarity_run(self, das_dir, tmp_path, capsys):
        out = str(tmp_path / "simi.h5")
        rc = das_analyze_main(
            [
                "-d", das_dir["dir"], "-s", "170620100545", "-c", "6",
                "--analysis", "similarity",
                "--half-window", "5", "--half-lag", "2", "--stride", "10",
                "-o", out,
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "merged 6 files" in text
        from repro.hdf5lite import File

        with File(out, "r") as f:
            assert f.attrs["analysis"] == "local-similarity"
            assert f.dataset("similarity").shape[0] == 14

    def test_interferometry_run(self, das_dir, tmp_path, capsys):
        out = str(tmp_path / "corr.h5")
        rc = das_analyze_main(
            [
                "-d", das_dir["dir"], "-e", r"\d{12}",
                "--analysis", "interferometry",
                "--band", "0.05", "0.4", "--resample-q", "2",
                "-o", out,
            ]
        )
        assert rc == 0
        from repro.hdf5lite import File

        with File(out, "r") as f:
            assert f.dataset("correlation").shape == (16,)

    def test_detect_flag(self, das_dir, capsys):
        rc = das_analyze_main(
            [
                "-d", das_dir["dir"], "-s", "170620100545", "-c", "6",
                "--half-window", "5", "--half-lag", "2", "--stride", "10",
                "--detect", "--threshold", "5.0",
            ]
        )
        assert rc == 0
        assert "event(s)" in capsys.readouterr().out

    def test_no_match_exit_code(self, das_dir, capsys):
        rc = das_analyze_main(["-d", das_dir["dir"], "-s", "300101000000"])
        assert rc == 1
