"""Checks fixture: taxonomy violations.

Expected at any path: two TAX001 (bare and broad except) and one TAX003
(silent handler).  Scanned under a ``src/repro/...`` rel (library
context) the builtin raise adds one TAX002.
"""


def swallow_all(fn):
    try:
        return fn()
    except:
        return None


def swallow_broad(fn):
    try:
        return fn()
    except Exception:
        return None


def silent(fn):
    try:
        return fn()
    except ValueError:
        pass
    return None


def library_raise(x):
    if x < 0:
        raise ValueError("negative")
    return x
