"""Logical Array View (LAV) — paper §IV, Fig. 3.

A LAV is a rectangular subset view of a (possibly virtual) 2-D DAS
dataset — "run the analysis on a subset of interested channels" — that
composes with further slicing and only reads the bytes the final
selection needs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SelectionError
from repro.hdf5lite.cache import FilePool
from repro.hdf5lite.dataset import Dataset
from repro.hdf5lite.hyperslab import Hyperslab, normalize_selection, selection_shape
from repro.utils.iostats import IOStats


class LAV:
    """A logical view ``dataset[channels, times]`` that defers all I/O."""

    def __init__(
        self,
        dataset: Dataset | "LAV",
        channels: slice | int | None = None,
        times: slice | int | None = None,
    ):
        base_shape = dataset.shape
        if len(base_shape) != 2:
            raise SelectionError("LAV requires a 2-D (channels, time) dataset")
        selection = (
            channels if channels is not None else slice(None),
            times if times is not None else slice(None),
        )
        hs, squeeze = normalize_selection(selection, base_shape)
        if squeeze:
            raise SelectionError("LAV bounds must be slices, not scalars")
        if isinstance(dataset, LAV):
            self._dataset = dataset._dataset
            self._slab = _compose(dataset._slab, hs)
        else:
            self._dataset = dataset
            self._slab = hs

    @property
    def shape(self) -> tuple[int, ...]:
        return self._slab.count

    @property
    def ndim(self) -> int:
        return 2

    @property
    def dtype(self) -> np.dtype:
        return self._dataset.dtype

    @property
    def channel_range(self) -> range:
        """Underlying channel indices this view selects."""
        return self._slab.indices(0)

    @property
    def time_range(self) -> range:
        return self._slab.indices(1)

    def select(self, channels: slice | None = None, times: slice | None = None) -> "LAV":
        """A narrower view of this view."""
        return LAV(self, channels=channels, times=times)

    def read(self) -> np.ndarray:
        """Materialise the whole view."""
        return self._dataset.read_hyperslab(self._slab)

    def __getitem__(self, selection: object) -> np.ndarray:
        hs, squeeze = normalize_selection(selection, self.shape)
        absolute = _compose(self._slab, hs)
        data = self._dataset.read_hyperslab(absolute)
        return data.reshape(selection_shape(hs, squeeze))

    def __array__(self, dtype: object = None, copy: object = None) -> np.ndarray:
        arr = self.read()
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        return arr

    def __repr__(self) -> str:
        return (
            f"<LAV shape={self.shape} of {self._dataset.path!r} "
            f"start={self._slab.start} stride={self._slab.stride}>"
        )


def open_lav(
    pool: FilePool,
    path: str | os.PathLike,
    dataset: str,
    channels: slice | None = None,
    times: slice | None = None,
    iostats: IOStats | None = None,
) -> LAV:
    """A LAV over ``dataset`` in ``path``, opened through a file pool.

    The pool owns the underlying handle (and its block cache), so building
    many views over the same file — the "subset of interested channels"
    workflow — opens it once instead of once per view, and their reads
    share cached blocks.
    """
    file = pool.acquire(path, iostats=iostats)
    return LAV(file.dataset(dataset), channels=channels, times=times)


def _compose(outer: Hyperslab, inner: Hyperslab) -> Hyperslab:
    """Selection of a selection: resolve ``inner`` (relative to ``outer``)
    into base-array coordinates."""
    if outer.ndim != inner.ndim:
        raise SelectionError("rank mismatch composing selections")
    start = []
    stride = []
    for dim in range(outer.ndim):
        if inner.count[dim] > 0:
            last = inner.start[dim] + (inner.count[dim] - 1) * inner.stride[dim]
            if last >= outer.count[dim]:
                raise SelectionError("inner selection escapes the view")
        start.append(outer.start[dim] + inner.start[dim] * outer.stride[dim])
        stride.append(outer.stride[dim] * inner.stride[dim])
    return Hyperslab(tuple(start), inner.count, tuple(stride))
