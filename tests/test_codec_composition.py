"""Codec × checksum × cache composition across the batch read paths.

The layering contract: CRC32 sidecars checksum the *encoded* chunk
payloads, so a bit flipped on disk raises
:class:`~repro.errors.CorruptDataError` before any decode runs; the
block cache admits *decoded* chunks, so corruption checks and
decompression both happen once per cached block; and the lossless codec
path is bit-exact end-to-end through every reader — collective,
communication-avoiding, LAV, and the streamed DASSA facade — as well as
Algorithms 2 and 3 (streamed and materialized).
"""

import numpy as np
import pytest

from repro.core.framework import DASSA
from repro.core.interferometry import InterferometryConfig
from repro.core.local_similarity import LocalSimilarityConfig
from repro.errors import CorruptDataError, MPIError
from repro.faults.inject import FaultInjector, clear_read_faults
from repro.hdf5lite import File
from repro.hdf5lite.codecs import TransposeZlibCodec
from repro.hdf5lite.inspect import verify
from repro.simmpi import run_spmd
from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.gaps import GapMap
from repro.storage.lav import LAV
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.storage.parallel_read import (
    read_vca_collective_per_file,
    read_vca_communication_avoiding,
)
from repro.storage.vca import create_vca, open_vca

CODEC = "transpose-zlib"
VICTIM = 2  # source file index; covers VCA samples [240, 360)
V0, V1 = 240, 360


@pytest.fixture(autouse=True)
def _clean_hooks():
    yield
    clear_read_faults()


def _write_fileset(directory, codec, checksum=True, chunks=(16, 64)):
    directory.mkdir(exist_ok=True)
    rng = np.random.default_rng(7)
    stamp = "170620100545"
    paths, blocks = [], []
    for _ in range(6):
        data = rng.normal(size=(16, 120)).astype(np.float32)
        metadata = DASMetadata(
            sampling_frequency=2.0,
            spatial_resolution=2.0,
            timestamp=stamp,
            n_channels=16,
        )
        path = str(directory / das_filename(stamp))
        write_das_file(
            path, data, metadata, channel_groups=False,
            checksum=checksum, chunks=chunks, codec=codec,
        )
        paths.append(path)
        blocks.append(data)
        stamp = timestamp_add_seconds(stamp, 60)
    return paths, np.concatenate(blocks, axis=1)


@pytest.fixture
def compressed(tmp_path):
    """Six checksummed *compressed* per-minute files merged into one VCA."""
    paths, full = _write_fileset(tmp_path / "das", CODEC)
    vca = create_vca(str(tmp_path / "v.h5"), paths)
    return {"vca": vca, "paths": paths, "full": full}


class TestBitFlipFailsFastOnEveryPath:
    """A bit flipped in *encoded* bytes must surface as CorruptDataError
    (CRC over the payload), never as a decode failure."""

    def _flip(self, compressed):
        FaultInjector(seed=13).bit_flip(compressed["paths"][VICTIM])

    def test_collective_per_file(self, compressed):
        self._flip(compressed)

        def failfast(comm):
            return read_vca_collective_per_file(comm, compressed["vca"])

        with pytest.raises(MPIError) as err:
            run_spmd(failfast, 2)
        assert isinstance(err.value.__cause__, CorruptDataError)

    def test_communication_avoiding(self, compressed):
        self._flip(compressed)

        def failfast(comm):
            return read_vca_communication_avoiding(comm, compressed["vca"])

        with pytest.raises(MPIError) as err:
            run_spmd(failfast, 4)
        assert isinstance(err.value.__cause__, CorruptDataError)

    def test_lav_view(self, compressed):
        self._flip(compressed)
        with open_vca(compressed["vca"]) as handle:
            with pytest.raises(CorruptDataError):
                LAV(handle.dataset).read()

    def test_streamed_dassa(self, compressed):
        self._flip(compressed)
        with pytest.raises(CorruptDataError):
            DASSA(threads=1).sta_lta(
                compressed["vca"], 4, 16, chunk_samples=200
            )

    def test_masked_mode_reports_gap_and_stays_bit_exact(self, compressed):
        self._flip(compressed)

        def masked(comm):
            gm = GapMap()
            block = read_vca_collective_per_file(
                comm, compressed["vca"], on_error="mask", gaps=gm
            )
            return block, sorted((s.t0, s.t1) for s in gm)

        result = run_spmd(masked, 3)
        out = np.concatenate([b for b, _ in result.results], axis=0)
        mask = np.zeros(compressed["full"].shape[1], dtype=bool)
        mask[V0:V1] = True
        # Lossless codec: the surviving samples are *bit-identical*.
        np.testing.assert_array_equal(
            out[:, ~mask], compressed["full"][:, ~mask]
        )
        assert np.isnan(out[:, mask]).all()
        assert all(spans == [(V0, V1)] for _, spans in result.results)


class TestCorruptPayloadNeverReachesDecode:
    def test_crc_precedes_decode(self, tmp_path, monkeypatch):
        data = np.random.default_rng(3).normal(size=(8, 256)).astype(np.float32)
        path = str(tmp_path / "x.h5")
        with File(path, "w") as f:
            f.create_dataset(
                "d", data=data, chunks=(8, 64), codec=CODEC, checksum=True
            )
        with File(path, "r") as f:
            offset = int(f.dataset("d")._meta["chunk_index"]["0,1"])
            enc = int(f.dataset("d")._meta["chunk_enc"]["0,1"])
        with open(path, "r+b") as fh:
            fh.seek(offset + enc // 2)
            b = fh.read(1)[0]
            fh.seek(offset + enc // 2)
            fh.write(bytes([b ^ 0x40]))

        calls = []
        original = TransposeZlibCodec.decode

        def spy(self, payload, shape, dtype):
            calls.append(bytes(payload))
            return original(self, payload, shape, dtype)

        monkeypatch.setattr(TransposeZlibCodec, "decode", spy)
        with File(path, "r") as f:
            ds = f.dataset("d")
            with pytest.raises(CorruptDataError, match="crc32 mismatch"):
                ds[:, 64:128]  # exactly the corrupted chunk
        assert calls == []  # verification fired before any decode


class TestWriteRecomputesEncodedCrc:
    def test_hyperslab_write_keeps_sidecar_true(self, tmp_path):
        data = np.random.default_rng(5).normal(size=(8, 256)).astype(np.float32)
        path = str(tmp_path / "w.h5")
        with File(path, "w") as f:
            f.create_dataset(
                "d", data=data, chunks=(8, 64), codec=CODEC, checksum=True
            )
        with File(path, "r+") as f:
            f.dataset("d")[2:6, 30:100] = 1.5
        expected = data.copy()
        expected[2:6, 30:100] = 1.5
        # Reopen with verification on: every CRC must match the
        # re-encoded bytes, and the contents must be the new values.
        with File(path, "r") as f:
            assert verify(f) == []
            np.testing.assert_array_equal(f.dataset("d").read(), expected)

    def test_write_with_verification_off_still_updates_crcs(self, tmp_path):
        data = np.random.default_rng(6).normal(size=(8, 128)).astype(np.float32)
        path = str(tmp_path / "w2.h5")
        with File(path, "w") as f:
            f.create_dataset(
                "d", data=data, chunks=(4, 64), codec=CODEC, checksum=True
            )
        with File(path, "r+", verify_checksums=False) as f:
            f.dataset("d")[0:2, 0:10] = -3.0
        with File(path, "r") as f:
            assert verify(f) == []


class TestLosslessBitExactThroughAlgorithms:
    """Acceptance: Alg 2 and Alg 3 produce identical bits whether the
    VCA's source files are raw or losslessly compressed — streamed and
    materialized."""

    @pytest.fixture
    def pair(self, tmp_path):
        raw_paths, full = _write_fileset(tmp_path / "raw", None)
        enc_paths, full2 = _write_fileset(tmp_path / "enc", CODEC)
        np.testing.assert_array_equal(full, full2)
        return {
            "raw": create_vca(str(tmp_path / "raw.h5"), raw_paths),
            "enc": create_vca(str(tmp_path / "enc.h5"), enc_paths),
        }

    def test_alg2_local_similarity(self, pair):
        cfg = LocalSimilarityConfig(
            half_window=20, channel_offset=1, half_lag=4, stride=20
        )
        d = DASSA(threads=1)
        ref, centers_ref = d.local_similarity(pair["raw"], cfg, chunk_samples=150)
        out, centers = d.local_similarity(pair["enc"], cfg, chunk_samples=150)
        np.testing.assert_array_equal(out, ref)
        np.testing.assert_array_equal(centers, centers_ref)
        # Materialized (single chunk spanning the record): raw and
        # compressed inputs still produce identical bits.
        ref_m, _ = d.local_similarity(pair["raw"], cfg, chunk_samples=720)
        out_m, _ = d.local_similarity(pair["enc"], cfg, chunk_samples=720)
        np.testing.assert_array_equal(out_m, ref_m)

    def test_alg3_interferometry(self, pair):
        cfg = InterferometryConfig(fs=2.0, band=(0.1, 0.8), resample_q=1)
        d = DASSA(threads=1)
        ref = d.interferometry(pair["raw"], cfg, chunk_samples=150)
        out = d.interferometry(pair["enc"], cfg, chunk_samples=150)
        np.testing.assert_array_equal(out, ref)
        ref_m = d.interferometry(pair["raw"], cfg, chunk_samples=720)
        out_m = d.interferometry(pair["enc"], cfg, chunk_samples=720)
        np.testing.assert_array_equal(out_m, ref_m)
