"""Checks fixture: a clean serve-layer module — zero findings expected
when scanned under a ``src/repro/serve/...`` rel.  serve (rank 8) may
import everything below it (storage rank 4, rt rank 7 here)."""

from repro.rt import metrics
from repro.storage import chunks

__all__ = ["window"]


def window():
    return metrics and chunks and 1
