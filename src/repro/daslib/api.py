"""MATLAB-style aliases — the paper's Table II names.

Geophysicists' pipelines in the paper call ``Das_*`` functions whose
"name and semantics follow the style of the signal processing toolbox in
MATLAB" (§V-A).  These wrappers keep that surface so Algorithm 2/3 can
be transcribed verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.daslib.butterworth import butter
from repro.daslib.correlate import abscorr
from repro.daslib.detrend import detrend
from repro.daslib.fft import fft, ifft
from repro.daslib.filtfilt import filtfilt
from repro.daslib.interp import interp1
from repro.daslib.resample import resample


def Das_abscorr(c1: np.ndarray, c2: np.ndarray, axis: int = -1):
    """Absolute correlation ``|cos θ(c1, c2)|`` (Table II)."""
    return abscorr(c1, c2, axis=axis)


def Das_detrend(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Remove the best straight-line fit of ``x`` (Table II)."""
    return detrend(x, type="linear", axis=axis)


def Das_butter(n: int, fc, btype: str = "low", fs: float | None = None):
    """Butterworth coefficients ``(c1, c2) = (b, a)`` (Table II)."""
    return butter(n, fc, btype=btype, fs=fs)


def Das_filtfilt(c1: np.ndarray, c2: np.ndarray, x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Zero-phase application of ``(c1, c2)`` to ``x`` (Table II)."""
    return filtfilt(c1, c2, x, axis=axis)


def Das_resample(x: np.ndarray, p: int, q: int, axis: int = -1) -> np.ndarray:
    """Resample ``x`` at ``p/q`` times the original rate (Table II)."""
    return resample(x, p, q, axis=axis)


def Das_interp1(x0, y0, x, kind: str = "linear"):
    """Linear interpolation satisfying ``f(x0) = y0`` (Table II)."""
    return interp1(x0, y0, x, kind=kind)


def Das_fft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """FFT of ``x`` (Table II)."""
    return fft(x, n=n, axis=axis)


def Das_ifft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse FFT of ``x`` (Table II)."""
    return ifft(x, n=n, axis=axis)
