"""Plugin-style analyzer registry.

An analyzer subclasses :class:`Analyzer`, declares a ``name`` (its rule
family), a ``codes`` table, and implements :meth:`Analyzer.run` over a
:class:`~repro.checks.source.Project`.  Decorating it with
:func:`register` makes it discoverable; :func:`all_analyzers` imports
the built-in analyzer modules (each registers itself on import) and
returns one instance of everything registered — external code can
register more before calling the runner.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.source import Project
from repro.errors import ConfigError

__all__ = ["Analyzer", "register", "all_analyzers"]

_REGISTRY: dict[str, type["Analyzer"]] = {}


class Analyzer:
    """Base class: one rule family (possibly several codes)."""

    #: rule-family id, e.g. ``"lock-discipline"`` (what ``--only`` matches)
    name: str = ""
    #: short human description
    description: str = ""
    #: bump when the analyzer's logic changes — invalidates cached
    #: per-module results (see repro.checks.cache)
    version: int = 1
    #: code -> one-line description of the specific check
    codes: dict[str, str] = {}

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, code: str, mod, line: int, message: str, hint: str = "",
                severity: str = "error") -> Finding:
        if code not in self.codes:
            raise ConfigError(f"{self.name}: unknown code {code!r}")
        return Finding(
            code=code, rule=self.name, path=mod.rel, line=line,
            message=message, hint=hint, severity=severity,
            context=mod.context_line(line),
        )


def register(cls: type[Analyzer]) -> type[Analyzer]:
    """Class decorator adding an analyzer to the registry."""
    if not cls.name:
        raise ConfigError(f"analyzer {cls.__name__} must set a name")
    _REGISTRY[cls.name] = cls
    return cls


def all_analyzers() -> list[Analyzer]:
    """One instance of every registered analyzer (built-ins included)."""
    # Importing the built-in analyzer modules triggers their @register.
    from repro.checks import (  # noqa - imported for side effect
        api, atm, ccm, contracts, locks, pln, res, taxonomy,
    )

    _ = (api, atm, ccm, contracts, locks, pln, res, taxonomy)
    return [cls() for _, cls in sorted(_REGISTRY.items())]
