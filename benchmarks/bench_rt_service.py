"""Monitoring-service benchmark: ingest throughput and detection latency.

Drip-feeds synthetic per-minute files into a spool and runs the
:class:`repro.rt.RTService` over it, measuring what a monitoring
deployment is judged on:

* **ingest throughput** — files/sec and samples/sec through the full
  read → incremental-pipeline → event-assembly path,
* **detection latency** — p50/p95 per-file wall time, split per stage,
* **seam equivalence** — asserts the streamed event log equals one
  batch run over the concatenated record (event spans and kinds
  identical, scores within 1e-6), the property that makes the service's
  output trustworthy at file boundaries,
* **chaos recovery** — a seeded shard kill mid-replay through the
  sharded deployment; asserts the recovered merged catalog equals the
  fault-free reference and records the detection-to-recovery time,
* **shard scaling** — shard-count → throughput/p95 curves on the
  modelled 1456-node Cori machine, calibrated from the measured
  single-shard run.

Records everything in ``BENCH_rt.json``.

Usage::

    python benchmarks/bench_rt_service.py --smoke   # small sizes, CI-friendly
    python benchmarks/bench_rt_service.py           # default sizes
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster import cori_haswell  # noqa: E402
from repro.core.local_similarity import (  # noqa: E402
    LocalSimilarityConfig,
    local_similarity_block,
)
from repro.daslib import butter, filtfilt  # noqa: E402
from repro.faults.chaos import ChaosSchedule  # noqa: E402
from repro.faults.policy import FailurePolicy  # noqa: E402
from repro.rt import (  # noqa: E402
    DetectorConfig,
    EventPolicy,
    HeartbeatConfig,
    RTService,
    ServiceConfig,
    ShardOptions,
    ShardSpec,
    SupervisorConfig,
    catalog_signature,
    map_events,
    project_shard_scaling,
    run_sharded,
)
from repro.synthetic.generator import (  # noqa: E402
    drip_feed_dataset,
    fig1b_scene,
    synthesize_scene,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
FS = 50.0


def run_case(channels: int, minutes: int, spm: int) -> dict:
    scene = fig1b_scene(
        n_channels=channels, fs=FS, minutes=minutes, samples_per_minute=spm
    )
    similarity = LocalSimilarityConfig(
        half_window=25, channel_offset=1, half_lag=5, stride=25
    )
    detector = DetectorConfig(band=(0.5, 12.0), similarity=similarity)
    policy = EventPolicy(threshold=0.4, min_fraction=0.25)
    config = ServiceConfig(
        poll_interval=0.0, settle_seconds=0.0, stable_polls=1
    )

    spool = tempfile.mkdtemp(prefix="das-bench-spool-")
    service = RTService(spool, detector=detector, policy=policy, config=config)
    t0 = time.perf_counter()
    for _ in drip_feed_dataset(spool, minutes, scene=scene, samples_per_minute=spm):
        service.drain()
    service.flush()
    wall = time.perf_counter() - t0
    streamed = service.sink.load()

    # Seam-equivalence check against one batch pass.
    data = synthesize_scene(scene, minutes, samples_per_minute=spm).astype(
        np.float64
    )
    b, a = butter(4, (0.5, 12.0), "bandpass", fs=FS)
    sim_map, centers = local_similarity_block(
        filtfilt(b, a, data, axis=-1), similarity
    )
    batch = map_events(
        sim_map, centers, FS, policy, n_channels=channels, channel_lo=1
    )
    spans = lambda events: [(e.j_start, e.j_end, e.event.kind) for e in events]
    assert spans(streamed) == spans(batch), (
        f"seam equivalence violated: streamed {spans(streamed)} "
        f"vs batch {spans(batch)}"
    )
    score_drift = max(
        (
            abs(got.event.peak_similarity - want.event.peak_similarity)
            for got, want in zip(streamed, batch)
        ),
        default=0.0,
    )
    assert score_drift < 1e-6, f"peak similarity drifted by {score_drift}"

    snapshot = service.metrics.snapshot()
    total = snapshot["stages"].get("total", {})
    return {
        "channels": channels,
        "minutes": minutes,
        "samples_per_file": spm,
        "wall_seconds": wall,
        "files_per_second": minutes / wall,
        "samples_per_second": minutes * spm / wall,
        "events": len(streamed),
        "seam_equivalent": True,
        "max_score_drift": score_drift,
        "latency": {
            "p50_s": total.get("p50_s"),
            "p95_s": total.get("p95_s"),
            "stages": snapshot["stages"],
        },
        "ingest_lag": snapshot["ingest_lag"],
    }


def run_chaos_case(channels: int, minutes: int, spm: int) -> dict:
    """One seeded shard kill + supervised resume; the merged catalog
    must equal the fault-free batch reference."""
    similarity = LocalSimilarityConfig(
        half_window=25, channel_offset=1, half_lag=5, stride=25
    )
    detector = DetectorConfig(band=(0.5, 12.0), similarity=similarity)
    policy = EventPolicy(threshold=0.4, min_fraction=0.25)
    config = ServiceConfig(
        poll_interval=0.0,
        settle_seconds=0.0,
        stable_polls=1,
        checkpoint_every=1,
        queue_capacity=1,
        update_catalog=False,
    )
    root = tempfile.mkdtemp(prefix="das-bench-chaos-")
    specs = []
    reference_rows = []
    for shard in range(2):
        scene = fig1b_scene(
            n_channels=channels,
            fs=FS,
            minutes=minutes,
            samples_per_minute=spm,
            seed=7 + shard,
        )
        spool = os.path.join(root, f"spool-{shard}")
        ref = os.path.join(root, f"ref-{shard}")
        state = os.path.join(root, "state", f"shard-{shard}")
        for directory in (spool, ref):
            os.makedirs(directory)
            list(
                drip_feed_dataset(
                    directory, minutes, scene=scene, samples_per_minute=spm
                )
            )
        os.makedirs(state)
        spec = ShardSpec(
            shard_id=shard,
            spool=spool,
            state_dir=state,
            channel_base=shard * channels,
            expected_files=minutes,
        )
        specs.append(spec)
        service = RTService(
            ref, detector=detector, policy=policy, config=config
        )
        service.drain()
        service.flush()
        for record, event in service.sink.load_records():
            reference_rows.append(
                (shard, record, event.rebased(spec.channel_base))
            )
    expected = catalog_signature(reference_rows)

    chaos = ChaosSchedule.single("kill-at-file", shard=1, at_file=minutes)
    t0 = time.perf_counter()
    result = run_sharded(
        specs,
        options=ShardOptions(
            detector=detector,
            event_policy=policy,
            service_config=config,
            restart_policy=FailurePolicy(retries=6, backoff=0.005),
            idle_sleep=0.001,
        ),
        supervisor=SupervisorConfig(
            heartbeat=HeartbeatConfig(
                interval=0.01, suspect_after=0.1, dead_after=0.3
            ),
            poll_sleep=0.002,
        ),
        chaos=chaos,
    )
    wall = time.perf_counter() - t0
    assert result["signature"] == expected, (
        "chaos invariant violated: recovered catalog differs from the "
        "fault-free reference"
    )
    assert result["restarts"][1] >= 1, "the kill must have forced a restart"
    return {
        "shards": 2,
        "fault": "kill-at-file",
        "killed_shard": 1,
        "at_file": minutes,
        "wall_seconds": wall,
        "recovery_seconds": result["recovery_s"].get(1),
        "restarts": result["restarts"],
        "duplicates_dropped": result["duplicates"],
        "events": result["events"],
        "catalog_equivalent": True,
    }


def run_scaling_curves(measured: dict) -> dict:
    """Shard-count → throughput/p95 on the modelled 1456-node machine,
    calibrated from the measured single-shard run."""
    per_file = measured["latency"]["p50_s"] or (
        measured["wall_seconds"] / measured["minutes"]
    )
    events_per_file = max(1, measured["events"] / measured["minutes"])
    cluster = cori_haswell(1456)
    points = project_shard_scaling(
        cluster,
        shard_counts=[1, 2, 4, 8, 16, 64, 256, 1024, 1456],
        file_interval_s=60.0,
        process_s_per_file=per_file,
        event_bytes_per_file=events_per_file * 256.0,
        heartbeat_interval_s=1.0,
    )
    knee = next(
        (p.shards for p in points if p.saturated), None
    )
    return {
        "cluster": cluster.name,
        "nodes": cluster.nodes,
        "calibration": {
            "process_s_per_file": per_file,
            "events_per_file": events_per_file,
        },
        "saturation_knee_shards": knee,
        "points": [p.to_json() for p in points],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_rt.json"),
        help="JSON output path",
    )
    args = parser.parse_args()

    if args.smoke:
        cases = [(48, 4, 600)]
    else:
        cases = [(96, 6, 3000), (192, 6, 3000)]

    results = []
    for channels, minutes, spm in cases:
        print(f"== {channels} channels, {minutes} files x {spm} samples ==")
        entry = run_case(channels, minutes, spm)
        print(
            f"  throughput : {entry['files_per_second']:.1f} files/s "
            f"({entry['samples_per_second'] / 1e6:.2f} Msamples/s)"
        )
        latency = entry["latency"]
        print(
            f"  latency    : p50 {latency['p50_s'] * 1e3:.1f} ms, "
            f"p95 {latency['p95_s'] * 1e3:.1f} ms per file"
        )
        print(
            f"  events     : {entry['events']}, seam-equivalent to batch "
            f"(score drift {entry['max_score_drift']:.1e})"
        )
        results.append(entry)

    chaos_channels, chaos_minutes, chaos_spm = (
        (48, 4, 600) if args.smoke else (96, 4, 1200)
    )
    print(
        f"== chaos: 2 shards, seeded kill, {chaos_channels} channels x "
        f"{chaos_minutes} files =="
    )
    chaos_entry = run_chaos_case(chaos_channels, chaos_minutes, chaos_spm)
    recovery = max(chaos_entry["recovery_seconds"])
    print(
        f"  recovery   : {recovery:.3f} s detection-to-resume, "
        f"{chaos_entry['duplicates_dropped']} replayed rows deduplicated"
    )
    print("  invariant  : recovered catalog == fault-free reference")

    scaling = run_scaling_curves(results[0])
    knee = scaling["saturation_knee_shards"]
    print(
        f"== scaling: {scaling['nodes']}-node {scaling['cluster']} model, "
        f"knee at {knee if knee else '>1456'} shards =="
    )

    payload = {
        "benchmark": "rt_service",
        "cases": results,
        "chaos": chaos_entry,
        "shard_scaling": scaling,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
