"""The findings model: one rule violation at one source location.

A :class:`Finding` is the unit every analyzer produces and every
reporting surface consumes (text output, ``--json``, the baseline).
Findings order by ``(path, line, code, message)`` so output is stable
across runs and machines, and each carries a line-independent
``fingerprint`` so a baseline entry survives unrelated edits above it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["Finding", "SEVERITIES"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``rule`` is the analyzer family (e.g. ``lock-discipline``), ``code``
    the specific check (e.g. ``LCK001``).  ``path`` is repo-relative
    with forward slashes.  ``hint`` says how to fix or suppress.
    """

    code: str
    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    severity: str = field(default="error")
    #: normalized source text of the flagged line — the line-drift-stable
    #: anchor the fingerprint hashes instead of the line number
    context: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigError(f"severity must be one of {SEVERITIES}")

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: hashes (code, path,
        message, normalized source context) — never the line number — so
        entries survive unrelated edits above the flagged line."""
        raw = f"{self.code}|{self.path}|{self.message}|{self.context}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:12]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code, self.message)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "context": self.context,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (the result-cache round trip)."""
        return cls(
            code=raw["code"],
            rule=raw["rule"],
            path=raw["path"],
            line=int(raw["line"]),
            message=raw["message"],
            hint=raw.get("hint", ""),
            severity=raw.get("severity", "error"),
            context=raw.get("context", ""),
        )

    def format(self) -> str:
        text = f"{self.path}:{self.line}: {self.code} {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text
