"""Signal models for detectable events: earthquakes and vehicles."""

from __future__ import annotations

import numpy as np


def ricker(t: np.ndarray, peak_freq: float) -> np.ndarray:
    """Ricker (Mexican-hat) wavelet centred at ``t = 0``."""
    arg = (np.pi * peak_freq * t) ** 2
    return (1.0 - 2.0 * arg) * np.exp(-arg)


def earthquake_signal(
    n_channels: int,
    n_samples: int,
    fs: float = 500.0,
    origin_time: float = 10.0,
    epicenter_channel: float | None = None,
    apparent_velocity: float = 3000.0,
    channel_spacing: float = 2.0,
    peak_freq: float = 5.0,
    amplitude: float = 5.0,
    coda_seconds: float = 4.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A coherent earthquake wavefront sweeping the whole array.

    Arrival at channel ``c`` is delayed by its fiber distance from the
    epicentral channel over the apparent velocity (hyperbolic moveout
    flattened to linear, adequate for a distant event).  Each arrival is
    a Ricker wavelet followed by an exponentially decaying coda, giving
    the across-array coherent band of Fig. 1b.
    """
    if rng is None:
        rng = np.random.default_rng()
    if epicenter_channel is None:
        epicenter_channel = n_channels / 2.0
    t = np.arange(n_samples) / fs
    channels = np.arange(n_channels)
    distance = np.abs(channels - epicenter_channel) * channel_spacing
    arrivals = origin_time + distance / apparent_velocity

    # (channels, samples) time relative to each channel's arrival
    rel = t[None, :] - arrivals[:, None]
    wavelet = ricker(rel, peak_freq)
    coda = np.where(
        rel > 0,
        np.exp(-rel / max(coda_seconds, 1e-6))
        * np.sin(2 * np.pi * peak_freq * rel),
        0.0,
    )
    # Slight per-channel amplitude variation (site/coupling effects).
    site = 1.0 + 0.1 * rng.standard_normal(n_channels)
    return amplitude * site[:, None] * (wavelet + 0.5 * coda)


def vehicle_signal(
    n_channels: int,
    n_samples: int,
    fs: float = 500.0,
    start_time: float = 0.0,
    start_channel: float = 0.0,
    speed_mps: float = 25.0,
    channel_spacing: float = 2.0,
    width_channels: float = 8.0,
    freq: float = 15.0,
    amplitude: float = 3.0,
) -> np.ndarray:
    """A localised wave packet moving along the fiber at road speed.

    The source position advances at ``speed_mps``; each instant excites a
    Gaussian neighbourhood of channels around it — producing the diagonal
    streaks cars leave in DAS records (Fig. 1b).  Negative ``speed_mps``
    drives the vehicle toward lower channels.
    """
    t = np.arange(n_samples) / fs
    channels = np.arange(n_channels)
    position = start_channel + (t - start_time) * speed_mps / channel_spacing
    active = t >= start_time
    # (channels, samples) distance of each channel from the vehicle
    distance = channels[:, None] - position[None, :]
    envelope = np.exp(-0.5 * (distance / width_channels) ** 2)
    carrier = np.sin(2 * np.pi * freq * t)[None, :]
    signal = amplitude * envelope * carrier
    signal[:, ~active] = 0.0
    # The vehicle leaves the array once its position exceeds the channels.
    off_array = (position < -4 * width_channels) | (
        position > n_channels + 4 * width_channels
    )
    signal[:, off_array] = 0.0
    return signal
