"""Runtime lock sanitizer — the dynamic half of the lock-discipline story.

The static analyzer (:mod:`repro.checks.locks`) proves mutations sit
inside ``with self._lock:`` blocks; this module catches what lexical
analysis cannot — the *order* locks are taken in across threads, and
code paths that reach shared state through an alias.  It is strictly a
test-time tool: production code constructs plain ``threading.Lock``
objects and pays zero overhead; a test installs the sanitizer (via the
``lock_sanitizer`` fixture in ``tests/conftest.py``) and every lock
constructed while it is installed is an instrumented wrapper.

Detections:

* **lock-order inversion** — every acquisition records held-lock →
  acquired-lock edges in a global order graph; acquiring ``A`` then
  ``B`` anywhere while ``B`` then ``A`` was ever observed (any thread,
  any time) is a potential deadlock and is reported immediately — no
  actual deadlock (or even second thread) is needed to catch it.
* **guarded attribute write without the lock** —
  :meth:`LockSanitizer.guard_attributes` rebinds an instance's class to
  a shim whose ``__setattr__``/``__delattr__`` verify the instance's
  lock is held by the current thread for the named attributes (the
  runtime mirror of the ``# guarded-by:`` annotation).

Violations are recorded, not raised, so a seeded race in a regression
test can assert on exactly what was caught; :meth:`LockSanitizer.raise_on_violations`
turns them into a :class:`LockSanitizerError` for strict tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "LockSanitizer",
    "LockSanitizerError",
    "SanitizerViolation",
    "SanitizedLock",
]


class LockSanitizerError(ReproError):
    """Raised by :meth:`LockSanitizer.raise_on_violations`."""


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected discipline violation."""

    kind: str       # "lock-order-inversion" | "unguarded-write"
    message: str
    thread: str


class SanitizedLock:
    """An instrumented ``threading.Lock``/``RLock`` stand-in.

    Supports the full lock protocol (``acquire``/``release``/``locked``/
    context manager) plus the private RLock hooks ``Condition`` uses, so
    instrumented locks can back conditions transparently.  Acquisition
    and release report to the owning :class:`LockSanitizer`.
    """

    def __init__(self, sanitizer: "LockSanitizer", reentrant: bool, name: str | None = None):
        self._sanitizer = sanitizer
        self._reentrant = reentrant
        self._inner = (
            sanitizer._real_rlock() if reentrant else sanitizer._real_lock()
        )
        self.name = name or f"{'rlock' if reentrant else 'lock'}-{sanitizer._next_id()}"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)  # noqa: RES001 - wrapper relays acquire; release arrives via its own method
        if acquired:
            self._sanitizer._on_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- RLock protocol used by threading.Condition -------------------------
    # A raw Lock has none of these, and Condition binds them at __init__
    # by hasattr — since this wrapper always exposes them, the
    # non-reentrant branch must reproduce Condition's own plain-lock
    # fallbacks (probe-acquire for ownership, full acquire/release for
    # save/restore).
    def _is_owned(self):  # pragma: no cover - exercised via Condition
        if self._reentrant:
            return self._inner._is_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _acquire_restore(self, state):  # pragma: no cover
        if not self._reentrant:
            self.acquire()
            return
        self._inner._acquire_restore(state)
        self._sanitizer._on_acquire(self)

    def _release_save(self):  # pragma: no cover
        if not self._reentrant:
            self.release()
            return None
        self._sanitizer._on_release(self)
        return self._inner._release_save()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SanitizedLock {self.name}>"


class _ThreadState(threading.local):
    def __init__(self):
        self.held: list[SanitizedLock] = []


def _thread_name() -> str:
    """Name of the calling thread, without ``current_thread()``.

    ``current_thread()`` builds a ``_DummyThread`` for unregistered
    threads, and ``_DummyThread.__init__`` constructs an ``Event`` whose
    lock is instrumented while the sanitizer is installed — which calls
    straight back into the acquire hook, recursing forever.  A thread is
    unregistered exactly during its bootstrap window (``_bootstrap_inner``
    fires ``self._started`` — a sanitized ``Event`` — *before* adding
    itself to ``threading._active``), so every ``Thread.start()`` under
    the sanitizer crosses that window.
    """
    thread = threading._active.get(threading.get_ident())
    return thread.name if thread is not None else f"thread-{threading.get_ident()}"


class LockSanitizer:
    """Records lock acquisition order and guarded-attribute writes.

    Use :meth:`install`/:meth:`uninstall` (or the ``lock_sanitizer``
    pytest fixture) to swap ``threading.Lock``/``threading.RLock`` for
    instrumented factories while a test constructs the objects under
    scrutiny.  Nothing outside an install window is affected — the
    default build of every repro class uses plain ``threading`` locks.
    """

    def __init__(self):
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        self._meta = self._real_lock()  # protects the sanitizer's own state
        self._counter = 0               # guarded-by: _meta
        self._edges: dict[tuple[str, str], str] = {}  # guarded-by: _meta
        self.violations: list[SanitizerViolation] = []  # guarded-by: _meta
        self._locks: list[SanitizedLock] = []  # guarded-by: _meta (keeps ids stable)
        self._state = _ThreadState()
        self._installed = False

    # -- construction --------------------------------------------------------
    def Lock(self, name: str | None = None) -> SanitizedLock:
        lock = SanitizedLock(self, reentrant=False, name=name)
        with self._meta:
            self._locks.append(lock)
        return lock

    def RLock(self, name: str | None = None) -> SanitizedLock:
        lock = SanitizedLock(self, reentrant=True, name=name)
        with self._meta:
            self._locks.append(lock)
        return lock

    def _next_id(self) -> int:
        with self._meta:
            self._counter += 1
            return self._counter

    # -- install/uninstall ---------------------------------------------------
    def install(self) -> "LockSanitizer":
        """Swap ``threading.Lock``/``RLock`` for instrumented factories."""
        if self._installed:
            return self
        threading.Lock = lambda: self.Lock()  # type: ignore[assignment]
        threading.RLock = lambda: self.RLock()  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            threading.Lock = self._real_lock  # type: ignore[assignment]
            threading.RLock = self._real_rlock  # type: ignore[assignment]
            self._installed = False

    def __enter__(self) -> "LockSanitizer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # -- acquisition tracking ------------------------------------------------
    def _on_acquire(self, lock: SanitizedLock) -> None:
        held = self._state.held
        if lock._reentrant and any(h is lock for h in held):
            held.append(lock)  # reentrant re-acquire: no new edges
            return
        thread = _thread_name()
        with self._meta:
            for prior in held:
                if prior is lock:
                    continue
                edge = (prior.name, lock.name)
                inverse = (lock.name, prior.name)
                if inverse in self._edges and edge not in self._edges:
                    self.violations.append(SanitizerViolation(
                        kind="lock-order-inversion",
                        message=(
                            f"acquired {lock.name!r} while holding "
                            f"{prior.name!r}, but the opposite order was "
                            f"observed on thread {self._edges[inverse]!r} "
                            f"— potential deadlock"
                        ),
                        thread=thread,
                    ))
                self._edges.setdefault(edge, thread)
        held.append(lock)

    def _on_release(self, lock: SanitizedLock) -> None:
        held = self._state.held
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def held_names(self) -> tuple[str, ...]:
        """Names of locks the calling thread currently holds."""
        return tuple(lock.name for lock in self._state.held)

    def holds(self, lock: object) -> bool:
        return any(h is lock for h in self._state.held)

    # -- guarded attributes --------------------------------------------------
    def guard_attributes(
        self, obj: object, attrs: list[str] | tuple[str, ...], lock_attr: str = "_lock"
    ) -> object:
        """Runtime mirror of ``# guarded-by:``: rebind ``obj``'s class so
        writes to ``attrs`` require the calling thread to hold
        ``obj.<lock_attr>`` (which must be a sanitizer lock — construct
        the object with the sanitizer installed).  Returns ``obj``."""
        sanitizer = self
        guarded = frozenset(attrs)
        base = type(obj)
        lock = getattr(obj, lock_attr)
        if not isinstance(lock, SanitizedLock):
            raise LockSanitizerError(
                f"{base.__name__}.{lock_attr} is not a sanitized lock — "
                f"construct the object while the sanitizer is installed"
            )

        def check(name: str) -> None:
            if name in guarded and not sanitizer.holds(lock):
                with sanitizer._meta:
                    sanitizer.violations.append(SanitizerViolation(
                        kind="unguarded-write",
                        message=(
                            f"{base.__name__}.{name} written without "
                            f"holding {lock_attr} ({lock.name})"
                        ),
                        thread=_thread_name(),
                    ))

        namespace = {
            "__setattr__": lambda s, n, v: (check(n), base.__setattr__(s, n, v))[-1],
            "__delattr__": lambda s, n: (check(n), base.__delattr__(s, n))[-1],
        }
        shim = type(f"Guarded{base.__name__}", (base,), namespace)
        object.__setattr__(obj, "__class__", shim)
        return obj

    # -- reporting -----------------------------------------------------------
    def violations_of(self, kind: str) -> list[SanitizerViolation]:
        with self._meta:
            return [v for v in self.violations if v.kind == kind]

    def raise_on_violations(self) -> None:
        with self._meta:
            if self.violations:
                lines = "\n".join(f"  [{v.kind}] {v.message}" for v in self.violations)
                raise LockSanitizerError(
                    f"{len(self.violations)} lock-discipline violation(s):\n{lines}"
                )
