"""Parallel file system cost model (Lustre-like) with a small
discrete-event scheduler for concurrent request streams.

The model captures the three storage properties the paper's analysis
rests on:

* **per-open overhead** — "there is a constant overhead in accessing a
  file on a typical disk-based file system" (§I);
* **IOPS bound** — "most storage devices are bound by input/output
  operations per second; having large numbers of I/O requests leads to
  long waiting queues and high contention" (§V-B);
* **shared aggregate bandwidth** over a fixed number of storage targets
  (OSTs) — "the Cori supercomputer has a fixed number of disk-based
  storage targets in its Lustre file system" (§VI-E).

Files are assigned round-robin to OSTs.  Each OST serves its queue of
requests first-come-first-served at ``per_request_overhead + bytes/
ost_bandwidth`` per request; a client additionally never exceeds
``client_bandwidth``.  The discrete-event ``schedule`` method returns
per-request completion times so callers can compute per-rank I/O time
under contention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class IORequest:
    """One I/O request issued by a (simulated) rank.

    ``start`` is the earliest virtual time the request can be issued
    (usually the rank's clock); ``file_id`` selects the OST via
    round-robin; ``nbytes`` may be zero for pure-metadata operations
    (opens, stats).
    """

    rank: int
    file_id: int
    nbytes: int
    start: float = 0.0
    is_open: bool = False
    is_write: bool = False


@dataclass(frozen=True)
class StorageModel:
    """Cost parameters for a parallel file system."""

    ost_count: int = 248
    ost_bandwidth: float = 2.0e9  # bytes/s per storage target
    client_bandwidth: float = 1.6e9  # bytes/s per client process cap
    open_overhead: float = 4.0e-3  # seconds per file open (metadata RPC)
    per_request_overhead: float = 0.8e-3  # seconds per I/O request (seek+RPC)
    metadata_op_overhead: float = 1.0e-4  # stat / attribute read
    # A single file is striped over only this many OSTs (the Lustre
    # default), which caps the aggregate bandwidth of shared-file reads —
    # the reason file-per-process access can beat one merged file.
    default_stripe_count: int = 8

    def __post_init__(self) -> None:
        if self.ost_count < 1:
            raise ConfigError("need at least one OST")
        if min(self.ost_bandwidth, self.client_bandwidth) <= 0:
            raise ConfigError("bandwidths must be positive")
        if min(
            self.open_overhead, self.per_request_overhead, self.metadata_op_overhead
        ) < 0:
            raise ConfigError("overheads must be non-negative")
        if self.default_stripe_count < 1:
            raise ConfigError("stripe count must be >= 1")

    # -- single-stream costs -------------------------------------------------------
    def request_time(self, nbytes: int, is_open: bool = False) -> float:
        """Uncontended service time of one request."""
        if nbytes < 0:
            raise ConfigError("negative request size")
        overhead = self.open_overhead if is_open else self.per_request_overhead
        transfer = nbytes / min(self.ost_bandwidth, self.client_bandwidth)
        return overhead + transfer

    def sequential_read_time(self, nbytes: int, nrequests: int, nopens: int = 0) -> float:
        """Time for one process to issue requests back-to-back, no contention."""
        if nrequests < 0 or nopens < 0:
            raise ConfigError("negative counts")
        transfer = nbytes / min(self.ost_bandwidth, self.client_bandwidth)
        return nopens * self.open_overhead + nrequests * self.per_request_overhead + transfer

    @property
    def aggregate_bandwidth(self) -> float:
        return self.ost_count * self.ost_bandwidth

    @property
    def iops(self) -> float:
        """Aggregate requests/second the system can absorb."""
        return self.ost_count / self.per_request_overhead

    def ost_for(self, file_id: int) -> int:
        return file_id % self.ost_count

    # -- discrete-event scheduling -----------------------------------------------
    def schedule(self, requests: list[IORequest]) -> dict[int, float]:
        """Serve a batch of concurrent requests; return per-rank finish times.

        Each OST is a FIFO server.  Requests are dispatched in
        ``(start, rank, arrival-order)`` order to the OST owning their
        file.  A request's service time is ``overhead + bytes/rate`` where
        the rate is the slower of the OST's bandwidth and the client cap.

        Returns a dict mapping rank → time its last request completed
        (ranks with no requests are absent).
        """
        import heapq

        ost_free = [0.0] * self.ost_count
        rank_free: dict[int, float] = {}
        finish: dict[int, float] = {}

        # Per-rank FIFO queues (a client issues its own requests in order),
        # globally dispatched greedily by earliest feasible start — an OST
        # serves whichever ready request reaches it first, so one slow
        # client never head-of-line-blocks an idle target.  A lazy
        # priority heap keeps dispatch at O(R log R): entries carry the
        # ready-time estimate they were pushed with and are re-pushed when
        # resource states have moved past the estimate.
        queues: dict[int, list[IORequest]] = {}
        for req in sorted(requests, key=lambda r: (r.rank, r.start)):
            queues.setdefault(req.rank, []).append(req)
        heads = {rank: 0 for rank in queues}
        rate = min(self.ost_bandwidth, self.client_bandwidth)

        def ready_of(rank: int) -> float:
            req = queues[rank][heads[rank]]
            ost = self.ost_for(req.file_id)
            return max(req.start, rank_free.get(rank, 0.0), ost_free[ost])

        heap: list[tuple[float, int]] = [
            (ready_of(rank), rank) for rank in queues
        ]
        heapq.heapify(heap)
        while heap:
            estimate, rank = heapq.heappop(heap)
            actual = ready_of(rank)
            if actual > estimate and heap and heap[0][0] < actual:
                # Stale estimate and someone else may be readier: re-queue.
                heapq.heappush(heap, (actual, rank))
                continue
            req = queues[rank][heads[rank]]
            heads[rank] += 1
            ost = self.ost_for(req.file_id)
            overhead = self.open_overhead if req.is_open else self.per_request_overhead
            done = actual + overhead + req.nbytes / rate
            ost_free[ost] = done
            rank_free[rank] = done
            finish[rank] = max(finish.get(rank, 0.0), done)
            if heads[rank] < len(queues[rank]):
                heapq.heappush(heap, (ready_of(rank), rank))
        return finish

    def makespan(self, requests: list[IORequest]) -> float:
        """Completion time of the whole batch (0.0 for an empty batch)."""
        finish = self.schedule(requests)
        return max(finish.values(), default=0.0)


@dataclass(frozen=True)
class BurstBufferModel(StorageModel):
    """SSD burst-buffer tier: far higher IOPS, similar bandwidth.

    The paper (§VI-E) notes that a Burst Buffer "has higher IOPS than the
    disk system" and would flatten the decaying I/O-efficiency trend; this
    preset exists for that ablation.
    """

    ost_count: int = 288
    ost_bandwidth: float = 6.5e9
    client_bandwidth: float = 3.2e9
    open_overhead: float = 2.5e-4
    per_request_overhead: float = 2.0e-5
    metadata_op_overhead: float = 2.0e-5
