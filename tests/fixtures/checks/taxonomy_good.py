"""Checks fixture: exception taxonomy done right — zero findings expected."""

from repro.errors import ConfigError, StorageError


def parse(value):
    if value < 0:
        raise ConfigError("negative")
    return value


def guarded(fn):
    try:
        return fn()
    except StorageError:
        return None
    except Exception:  # noqa: TAX001 - fixture boundary must not crash
        return None


def tolerant(fn):
    try:
        return fn()
    except StorageError:
        pass  # noqa: TAX003 - losses are counted elsewhere
    return None
