"""DASS — the DAS data storage engine (paper §IV).

Components:

* :mod:`repro.storage.metadata` — the two-level key-value metadata model
  (Fig. 4) and timestamp handling,
* :mod:`repro.storage.dasfile` — per-minute DAS file reader/writer on the
  hdf5lite format,
* :mod:`repro.storage.search` — ``das_search``: timestamp-range and
  regex queries over a directory of DAS files (§IV-A),
* :mod:`repro.storage.vca` / :mod:`repro.storage.rca` — virtually /
  really concatenated arrays,
* :mod:`repro.storage.lav` — logical array views (channel/time subsets),
* :mod:`repro.storage.parallel_read` — the "collective-per-file" and
  "communication-avoiding" parallel readers (§IV-B, Fig. 5) plus direct
  RCA reads,
* :mod:`repro.storage.model` — closed-form/DES evaluation of the same
  read schedules for rank counts too large to thread,
* :mod:`repro.storage.chunks` — streaming chunk sources feeding the
  analysis executor time-blocks out of VCA/LAV/arrays.
"""

from repro.storage.chunks import (
    ArraySource,
    ChunkSource,
    DatasetSource,
    VCASource,
    as_source,
    auto_chunk_samples,
    iter_intervals,
    open_stream,
)
from repro.storage.dasfile import DASFile, read_das_file, write_das_file
from repro.storage.gaps import GapMap, GapSpan
from repro.storage.lav import LAV, open_lav
from repro.storage.metadata import (
    DASMetadata,
    format_timestamp,
    parse_timestamp,
    timestamp_add_seconds,
)
from repro.storage.parallel_read import (
    read_rca_direct,
    read_vca_collective_per_file,
    read_vca_communication_avoiding,
)
from repro.storage.rca import create_rca
from repro.storage.search import DASFileInfo, das_search, scan_directory
from repro.storage.vca import create_vca, open_vca

__all__ = [
    "DASMetadata",
    "parse_timestamp",
    "format_timestamp",
    "timestamp_add_seconds",
    "DASFile",
    "write_das_file",
    "read_das_file",
    "das_search",
    "scan_directory",
    "DASFileInfo",
    "create_vca",
    "open_vca",
    "create_rca",
    "GapMap",
    "GapSpan",
    "LAV",
    "open_lav",
    "read_vca_collective_per_file",
    "read_vca_communication_avoiding",
    "read_rca_direct",
    "ChunkSource",
    "ArraySource",
    "DatasetSource",
    "VCASource",
    "open_stream",
    "as_source",
    "iter_intervals",
    "auto_chunk_samples",
]
