"""Atomic-persistence analyzer (``ATM``).

Durable state in this repo — checkpoints, supervisor health files,
catalogs, quarantine manifests — must survive a kill at any instruction.
The blessed discipline is the one ``rt/checkpoint.py`` exemplifies:
write to a ``*.tmp`` sibling, ``flush()`` + ``os.fsync()`` the handle,
then publish with ``os.replace()`` (atomic on POSIX).  Anything less has
a window where a crash leaves a torn or empty file where good state used
to be.

The analyzer looks at every *text-mode* ``open`` in strict (non-relaxed)
modules — bulk array data goes through the checksummed hdf5lite writer
layer and is out of scope; durable state here is JSON/JSONL text:

``ATM001``
    a bare ``open(path, "w")`` (or ``Path.write_text``) straight onto
    the final path.  A crash mid-write leaves a truncated file *and*
    has already destroyed the previous good copy.
``ATM002``
    the tmp-staging shape is present (the path expression looks
    temporary, or an ``os.replace`` is CFG-reachable after the write)
    but ``os.fsync`` is missing before publish: ``os.replace`` is
    atomic for the *name*, not the *bytes* — after a power cut the new
    name can point at unwritten data.
``ATM003``
    an append (``open(path, "a")``) with no ``flush`` + ``os.fsync``
    reachable afterwards: the tail rows a reader was told about can
    evaporate in a crash.

Reachability is CFG-based within the writing function (normal + back
edges from the ``open`` site), so the discipline must be visible where
the write happens — matching how ``CheckpointStore.save`` reads.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.checks.cfg import CFG, build_cfg, node_calls
from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["AtomicPersistenceAnalyzer", "TMPISH_RE"]

#: Path expressions that read as a staging location.
TMPISH_RE = re.compile(r"(tmp|temp|staging)", re.IGNORECASE)

_FLOW = frozenset({"normal", "back"})


def _open_mode(call: ast.Call) -> str | None:
    """The constant mode string of a builtin ``open`` call, else None."""
    func = call.func
    if not (isinstance(func, ast.Name) and func.id == "open"):
        return None
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _is_os_call(call: ast.Call, name: str) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == name
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
    )


def _is_flush(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr == "flush"


def _path_text(call: ast.Call) -> str:
    """Source text of the path argument, for the tmp-ish heuristic."""
    target: ast.expr | None = call.args[0] if call.args else None
    for kw in call.keywords:
        if kw.arg == "file":
            target = kw.value
    if isinstance(call.func, ast.Attribute):
        # path.write_text(...): the receiver is the path expression
        target = call.func.value
    if target is None:
        return ""
    try:
        return ast.unparse(target)
    except (ValueError, AttributeError):  # pragma: no cover
        return ""


class _WriteSite:
    __slots__ = ("call", "mode", "tmpish", "uid")

    def __init__(self, call: ast.Call, mode: str, tmpish: bool, uid: int):
        self.call = call
        self.mode = mode
        self.tmpish = tmpish
        self.uid = uid


@register
class AtomicPersistenceAnalyzer(Analyzer):
    name = "atomic-persistence"
    description = "durable writes follow tmp + fsync + os.replace"
    version = 1
    codes = {
        "ATM001": "bare write to a durable path (no tmp staging)",
        "ATM002": "tmp-staged write published without fsync",
        "ATM003": "append to durable log without flush + fsync",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None or mod.relaxed or not project.in_scope(mod):
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(mod, node)

    def _check_function(
        self, mod: SourceModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        cfg = build_cfg(func)
        sites: list[_WriteSite] = []
        write_text_sites: list[tuple[ast.Call, int]] = []
        for node in cfg.stmt_nodes():
            if node.stmt is None:
                continue
            for call in node_calls(node.stmt):
                mode = _open_mode(call)
                if mode is not None and ("w" in mode or "a" in mode) and "b" not in mode:
                    sites.append(_WriteSite(
                        call, mode, bool(TMPISH_RE.search(_path_text(call))),
                        node.uid,
                    ))
                elif (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "write_text"
                ):
                    write_text_sites.append((call, node.uid))
        if not sites and not write_text_sites:
            return

        def reachable_calls(uid: int) -> list[ast.Call]:
            out: list[ast.Call] = []
            for later in cfg.reachable_from(uid, kinds=_FLOW):
                node = cfg.nodes[later]
                if node.kind == "stmt" and node.stmt is not None:
                    out.extend(node_calls(node.stmt))
            return out

        for call, uid in write_text_sites:
            if mod.node_suppressed(call, "ATM001"):
                continue
            if TMPISH_RE.search(_path_text(call)):
                continue
            yield self.finding(
                "ATM001", mod, call.lineno,
                f"{func.name}: write_text publishes directly onto the "
                f"final path — a crash mid-write tears the file after the "
                f"old copy is gone",
                hint="write a .tmp sibling, fsync, then os.replace "
                     "(see rt/checkpoint.py CheckpointStore.save)",
            )

        for site in sites:
            later = reachable_calls(site.uid)
            has_replace = any(_is_os_call(c, "replace") for c in later)
            has_fsync = any(_is_os_call(c, "fsync") for c in later)
            has_flush = any(_is_flush(c) for c in later)
            if "a" in site.mode:
                if has_flush and has_fsync:
                    continue
                if mod.node_suppressed(site.call, "ATM003"):
                    continue
                yield self.finding(
                    "ATM003", mod, site.call.lineno,
                    f"{func.name}: append to a durable log without "
                    f"flush + os.fsync — acknowledged rows can vanish in "
                    f"a crash",
                    hint="handle.flush(); os.fsync(handle.fileno()) before "
                         "the write is acknowledged",
                )
                continue
            staged = site.tmpish or has_replace
            if not staged:
                if mod.node_suppressed(site.call, "ATM001"):
                    continue
                yield self.finding(
                    "ATM001", mod, site.call.lineno,
                    f"{func.name}: bare open(..., \"w\") onto the final "
                    f"path — a crash mid-write destroys the previous good "
                    f"copy and leaves a torn file",
                    hint="write a .tmp sibling, fsync, then os.replace "
                         "(see rt/checkpoint.py CheckpointStore.save)",
                )
                continue
            if not (has_fsync and has_replace):
                if mod.node_suppressed(site.call, "ATM002"):
                    continue
                missing = "os.fsync" if has_replace else "os.replace"
                yield self.finding(
                    "ATM002", mod, site.call.lineno,
                    f"{func.name}: tmp-staged write is missing {missing} — "
                    f"os.replace is atomic for the name, not the bytes; "
                    f"without fsync the new name can point at unwritten "
                    f"data after power loss",
                    hint="handle.flush(); os.fsync(handle.fileno()); "
                         "os.replace(tmp, path)",
                )
