"""The ``Apply`` operator: run a UDF over every (strided) cell of a block.

This is the single-threaded building block; MPI parallelism comes from
partitioning the global array into per-rank blocks (the engine's job),
and node-level threading from :func:`repro.arrayudf.apply_mt.apply_mt`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrayudf.stencil import Stencil
from repro.errors import UDFError


def cell_grid(
    block_shape: tuple[int, int],
    core_rows: tuple[int, int] | None = None,
    core_cols: tuple[int, int] | None = None,
    row_stride: int = 1,
    col_stride: int = 1,
) -> tuple[range, range]:
    """The (row, col) index ranges of the cells a UDF runs on."""
    rows, cols = block_shape
    r_lo, r_hi = core_rows if core_rows is not None else (0, rows)
    c_lo, c_hi = core_cols if core_cols is not None else (0, cols)
    if not (0 <= r_lo <= r_hi <= rows and 0 <= c_lo <= c_hi <= cols):
        raise UDFError(
            f"core region ({core_rows}, {core_cols}) outside block {block_shape}"
        )
    if row_stride < 1 or col_stride < 1:
        raise UDFError("strides must be >= 1")
    return range(r_lo, r_hi, row_stride), range(c_lo, c_hi, col_stride)


def apply(
    block: np.ndarray,
    udf: Callable[[Stencil], float],
    core_rows: tuple[int, int] | None = None,
    core_cols: tuple[int, int] | None = None,
    row_stride: int = 1,
    col_stride: int = 1,
    boundary: str = "error",
    dtype: object = np.float64,
) -> np.ndarray:
    """Sequentially apply ``udf`` to each cell of the core region.

    Returns an array of shape ``(len(row_cells), len(col_cells))``.  The
    UDF receives a :class:`Stencil` centred on each cell; with strides,
    cells are sampled every ``row_stride``/``col_stride`` positions —
    how DASSA runs windowed operations (one output per window, not per
    sample).
    """
    block = np.asarray(block)
    row_cells, col_cells = cell_grid(
        block.shape, core_rows, core_cols, row_stride, col_stride
    )
    out = np.empty((len(row_cells), len(col_cells)), dtype=dtype)
    for i, row in enumerate(row_cells):
        for j, col in enumerate(col_cells):
            out[i, j] = udf(Stencil(block, row, col, boundary=boundary))
    return out
