"""Checks fixture: lock-discipline violations.

Expected: LCK002 (ghost's guard lock never assigned) and three LCK001
(mutation moved below the with-block, an unlocked mutating method call,
and a mutation inside a closure that escapes its with-block).
"""

import threading


class BadCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.events = []  # guarded-by: _lock
        self.ghost = 0  # guarded-by: _missing_lock

    def bump(self):
        with self._lock:
            pass
        self.count += 1  # moved outside the with-block

    def log(self):
        self.events.append("x")  # no lock at all

    def closure_trap(self):
        with self._lock:
            def inner():
                self.count += 1  # runs after the with-block exits
            return inner
