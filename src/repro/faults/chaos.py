"""Shard-level chaos actions and seeded kill/restart schedules.

:mod:`repro.faults.inject` manufactures *storage* faults (bad bytes in
data files).  This module adds the *process/topology* faults a sharded
real-time deployment must survive: a shard killed mid-stream, a shard
hanging long enough to trip its heartbeat, a checkpoint write torn
mid-rename, and a spool volume vanishing and reappearing.

The module is deliberately rank-agnostic: an action names a *shard
index* and a *trigger point* (the Nth ingested file), and generic
file/directory helpers do the on-disk damage.  The interpretation —
raising :class:`~repro.errors.InjectedFaultError` inside the shard
loop, suppressing heartbeats, restarting from checkpoint — lives in
``repro.rt.shard``, which sits above this layer.  Everything is seeded:
the same :class:`ChaosSchedule` seed over the same topology produces
the same actions at the same trigger points.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "SHARD_FAULT_KINDS",
    "ChaosAction",
    "ChaosSchedule",
    "tear_file",
    "flip_text_byte",
    "vanish_dir",
    "restore_dir",
]

#: The shard-level fault matrix.  ``kill-at-file`` crashes the shard
#: right after its Nth ingested file; ``hang`` stops the shard making
#: progress (and heartbeating) until it is restarted; ``torn-checkpoint``
#: crashes *and* tears the primary checkpoint file so recovery must fall
#: back to the previous generation; ``spool-vanish`` unmounts the
#: shard's spool for a while and then brings it back.
SHARD_FAULT_KINDS = ("kill-at-file", "hang", "torn-checkpoint", "spool-vanish")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault: ``kind`` from :data:`SHARD_FAULT_KINDS`,
    aimed at ``shard``, triggering after that shard's ``at_file``-th
    ingested file (1-based).

    ``down_ticks`` bounds how long a ``hang`` / ``spool-vanish`` outage
    lasts (in shard poll ticks); ``keep_fraction`` is how much of the
    checkpoint file a ``torn-checkpoint`` leaves behind.
    """

    kind: str
    shard: int
    at_file: int
    down_ticks: int = 3
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in SHARD_FAULT_KINDS:
            raise ConfigError(
                f"unknown shard fault kind {self.kind!r}; "
                f"known: {SHARD_FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ConfigError("shard index must be >= 0")
        if self.at_file < 1:
            raise ConfigError("at_file is 1-based: must be >= 1")
        if self.down_ticks < 1:
            raise ConfigError("down_ticks must be >= 1")
        if not 0 <= self.keep_fraction < 1:
            raise ConfigError("keep_fraction must be in [0, 1)")


@dataclass
class ChaosSchedule:
    """A seeded set of :class:`ChaosAction`\\ s for one chaos run.

    :meth:`generate` draws victims and trigger points deterministically
    from the seed, so a failing run is replayable from its logged seed
    alone.  :meth:`for_shard` is what a shard runtime consults.
    """

    actions: list[ChaosAction] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def single(cls, kind: str, shard: int, at_file: int, **kwargs) -> "ChaosSchedule":
        """The one-fault schedule used by the smoke test."""
        return cls(actions=[ChaosAction(kind, shard, at_file, **kwargs)])

    @classmethod
    def generate(
        cls,
        seed: int,
        n_shards: int,
        files_per_shard: int,
        kinds: tuple[str, ...] = SHARD_FAULT_KINDS,
        n_actions: int = 1,
    ) -> "ChaosSchedule":
        """Draw ``n_actions`` faults — at most one per shard, each at a
        seeded trigger point strictly inside the shard's file stream (so
        there is always work left to recover)."""
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if files_per_shard < 2:
            raise ConfigError("need >= 2 files per shard to trigger mid-stream")
        if not 1 <= n_actions <= n_shards:
            raise ConfigError("n_actions must be in [1, n_shards]")
        for kind in kinds:
            if kind not in SHARD_FAULT_KINDS:
                raise ConfigError(f"unknown shard fault kind {kind!r}")
        rng = random.Random(int(seed))
        victims = rng.sample(range(n_shards), n_actions)
        actions = [
            ChaosAction(
                kind=rng.choice(list(kinds)),
                shard=shard,
                at_file=rng.randrange(1, files_per_shard),
            )
            for shard in victims
        ]
        return cls(actions=actions, seed=int(seed))

    def for_shard(self, shard: int) -> list[ChaosAction]:
        return [a for a in self.actions if a.shard == shard]


# ---------------------------------------------------------------------------
# on-disk helpers (generic files/directories, not hdf5lite data regions)
# ---------------------------------------------------------------------------

def tear_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to a fraction of its bytes — a write torn
    mid-rename (the temp file was promoted but never fully flushed, or
    the disk lied about durability).  Returns the new size."""
    if not 0 <= keep_fraction < 1:
        raise ConfigError("keep_fraction must be in [0, 1)")
    path = os.fspath(path)
    size = os.path.getsize(path)
    new_size = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def flip_text_byte(path: str | os.PathLike, seed: int = 0) -> int:
    """Flip one bit of one seeded byte of a text file (a JSON document
    that still parses — or doesn't — but no longer checksums).  Returns
    the byte offset flipped."""
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size < 1:
        raise ConfigError(f"{path}: empty file, nothing to corrupt")
    rng = random.Random(int(seed))
    offset = rng.randrange(size)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << rng.randrange(8))]))
    return offset


VANISHED_SUFFIX = ".vanished"


def vanish_dir(path: str | os.PathLike) -> str:
    """Atomically hide a directory (an unmounted / disconnected spool
    volume); returns the hidden location for :func:`restore_dir`."""
    path = os.fspath(path)
    hidden = path.rstrip(os.sep) + VANISHED_SUFFIX
    os.rename(path, hidden)
    return hidden


def restore_dir(path: str | os.PathLike) -> None:
    """Bring a vanished directory back under its original name."""
    path = os.fspath(path)
    hidden = path.rstrip(os.sep) + VANISHED_SUFFIX
    os.rename(hidden, path)
