"""Unit tests for the rt building blocks: incremental execution, ingest,
event assembly, checkpoints, metrics."""

import json
import os

import numpy as np
import pytest

from repro.core.local_similarity import (
    LocalSimilarityConfig,
    LocalSimilarityOp,
    local_similarity_block,
)
from repro.core.operators import DetrendOp, FiltFiltOp, TaperOp
from repro.core.pipeline import StreamPipeline
from repro.core.stalta import (
    RecursiveStaLta,
    StaLtaOp,
    classic_sta_lta,
    recursive_sta_lta,
)
from repro.daslib import butter, filtfilt
from repro.errors import ConfigError, StorageError
from repro.rt.checkpoint import CheckpointStore, read_sample_range
from repro.rt.events import (
    EventAssembler,
    EventPolicy,
    EventSink,
    SeamEvent,
    map_events,
)
from repro.rt.ingest import Quarantine, SpoolWatcher, WorkQueue
from repro.rt.metrics import LatencyStats, RTMetrics
from repro.rt.scheduler import DetectorConfig, SeamScheduler
from repro.storage.dasfile import write_das_file
from repro.storage.metadata import DASMetadata


@pytest.fixture
def record():
    rng = np.random.default_rng(11)
    return rng.standard_normal((9, 3000))


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------------------
# IncrementalRunner: the seam-state engine under the scheduler
# ---------------------------------------------------------------------------
class TestIncrementalRunner:
    def test_arbitrary_splits_match_batch(self, record):
        fs = 200.0
        b, a = butter(4, (2.0, 40.0), "bandpass", fs=fs)
        cfg = LocalSimilarityConfig(
            half_window=25, channel_offset=2, half_lag=5, stride=10
        )
        expected, _ = local_similarity_block(filtfilt(b, a, record), cfg)

        runner = StreamPipeline(
            [FiltFiltOp(b, a), LocalSimilarityOp(cfg)]
        ).incremental(record.shape[0], fs=fs)
        pieces = []
        cuts = [0, 171, 172, 900, 1750, 2501, 3000]
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            pieces.extend(runner.push(record[:, lo:hi]))
        pieces.extend(runner.flush())

        intervals = [interval for interval, _ in pieces]
        assert intervals[0][0] == 0
        assert all(
            prev[1] == cur[0] for prev, cur in zip(intervals, intervals[1:])
        ), "emitted intervals must tile the output axis"
        streamed = np.concatenate([block for _, block in pieces], axis=1)
        assert streamed.shape == expected.shape
        assert np.abs(streamed - expected).max() == pytest.approx(0.0, abs=1e-8)

    def test_stalta_chain_matches_batch(self, record):
        runner = StreamPipeline([StaLtaOp(20, 200)]).incremental(
            record.shape[0]
        )
        pieces = runner.push(record[:, :500])
        pieces += runner.push(record[:, 500:2200])
        pieces += runner.push(record[:, 2200:])
        pieces += runner.flush()
        streamed = np.concatenate([block for _, block in pieces], axis=1)
        expected = classic_sta_lta(record, 20, 200)
        assert np.abs(streamed - expected).max() == pytest.approx(0.0, abs=1e-9)

    def test_rejects_whole_record_operators(self):
        for op in (DetrendOp(), TaperOp(0.05)):
            with pytest.raises(ConfigError):
                StreamPipeline([op]).incremental(4)

    def test_export_import_resumes_identically(self, record):
        fs = 200.0
        b, a = butter(4, (2.0, 40.0), "bandpass", fs=fs)
        cfg = LocalSimilarityConfig(
            half_window=25, channel_offset=1, half_lag=5, stride=10
        )

        def build():
            return StreamPipeline(
                [FiltFiltOp(b, a), LocalSimilarityOp(cfg)]
            ).incremental(record.shape[0], fs=fs)

        straight = build()
        pieces = straight.push(record)
        pieces += straight.flush()
        expected = np.concatenate([blk for _, blk in pieces], axis=1)

        first = build()
        out = first.push(record[:, :1700])
        state = json.loads(json.dumps(first.export_state()))  # wire format
        tail = record[:, state["buf_start"] : state["seen"]]
        second = build()
        second.import_state(state, tail)
        out += second.push(record[:, 1700:])
        out += second.flush()
        resumed = np.concatenate([blk for _, blk in out], axis=1)
        assert np.abs(resumed - expected).max() == pytest.approx(0.0, abs=1e-8)

    def test_import_rejects_tampered_tail(self, record):
        runner = StreamPipeline([StaLtaOp(5, 50)]).incremental(record.shape[0])
        runner.push(record[:, :1000])
        state = runner.export_state()
        tail = record[:, state["buf_start"] : state["seen"]].copy()
        tail[0, 0] += 1.0
        fresh = StreamPipeline([StaLtaOp(5, 50)]).incremental(record.shape[0])
        with pytest.raises(ConfigError, match="digest"):
            fresh.import_state(state, tail)


class TestRecursiveStaLta:
    def test_split_matches_single_pass(self, record):
        tracker = RecursiveStaLta(record.shape[0], 10, 100)
        out = np.concatenate(
            [
                tracker.process(record[:, :700]),
                tracker.process(record[:, 700:701]),
                tracker.process(record[:, 701:]),
            ],
            axis=1,
        )
        expected = np.stack(
            [recursive_sta_lta(row, 10, 100) for row in record]
        )
        assert np.abs(out - expected).max() == pytest.approx(0.0, abs=1e-12)

    def test_state_roundtrip(self, record):
        first = RecursiveStaLta(record.shape[0], 10, 100)
        first.process(record[:, :1234])
        payload = json.loads(json.dumps(first.export_state()))
        second = RecursiveStaLta(record.shape[0], 10, 100)
        second.import_state(payload)
        a = first.process(record[:, 1234:])
        b = second.process(record[:, 1234:])
        assert np.array_equal(a, b)

    def test_state_geometry_checked(self, record):
        payload = RecursiveStaLta(4, 10, 100).export_state()
        with pytest.raises(ConfigError):
            RecursiveStaLta(5, 10, 100).import_state(payload)


# ---------------------------------------------------------------------------
# Ingest: watcher heuristics, queue backpressure, quarantine
# ---------------------------------------------------------------------------
class TestSpoolWatcher:
    def _touch(self, directory, name, size=8, clock=None):
        path = os.path.join(directory, name)
        with open(path, "wb") as handle:
            handle.write(b"x" * size)
        if clock is not None:  # pin mtime into the fake timeline
            os.utime(path, (clock.now, clock.now))
        return path

    def test_file_admitted_only_after_size_settles(self, tmp_path):
        clock = FakeClock()
        watcher = SpoolWatcher(
            tmp_path, settle_seconds=0.0, stable_polls=2, clock=clock
        )
        path = self._touch(
            tmp_path, "westSac_170620100545.h5", size=10, clock=clock
        )
        assert watcher.scan() == []  # first sighting: not yet stable
        self._touch(
            tmp_path, "westSac_170620100545.h5", size=20, clock=clock
        )  # grew
        assert watcher.scan() == []  # size changed: counter resets
        assert watcher.scan() == [path]  # two stable polls
        assert watcher.scan() == []  # announced exactly once

    def test_mtime_settle_delays_admission(self, tmp_path):
        clock = FakeClock()
        watcher = SpoolWatcher(
            tmp_path, settle_seconds=5.0, stable_polls=1, clock=clock
        )
        path = self._touch(
            tmp_path, "westSac_170620100545.h5", clock=clock
        )
        assert watcher.scan() == []  # too fresh
        clock.advance(6.0)
        assert watcher.scan() == [path]

    def test_hidden_and_foreign_files_ignored(self, tmp_path):
        clock = FakeClock()
        watcher = SpoolWatcher(
            tmp_path, settle_seconds=0.0, stable_polls=1, clock=clock
        )
        self._touch(tmp_path, ".westSac_170620100545.h5.part", clock=clock)
        self._touch(tmp_path, "notes.txt", clock=clock)
        assert watcher.scan() == []

    def test_mark_known_suppresses_resume_reannounce(self, tmp_path):
        clock = FakeClock()
        path = self._touch(
            tmp_path, "westSac_170620100545.h5", clock=clock
        )
        watcher = SpoolWatcher(
            tmp_path, settle_seconds=0.0, stable_polls=1, clock=clock
        )
        watcher.mark_known([path])
        assert watcher.scan() == []


class TestWorkQueue:
    def test_backpressure(self):
        queue = WorkQueue(capacity=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert queue.rejected == 1
        assert queue.pop() == "a"
        assert queue.offer("c")
        assert queue.items() == ["b", "c"]
        assert queue.peak_depth == 2

    def test_validates_capacity(self):
        with pytest.raises(ConfigError):
            WorkQueue(0)


class TestQuarantine:
    def test_persists_across_instances(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        bad = os.path.join(tmp_path, "westSac_170620100545.h5")
        quarantine.add(bad, "short read at offset 0", attempts=3)
        assert bad in quarantine
        reloaded = Quarantine(tmp_path)
        assert bad in reloaded
        assert reloaded.reasons["westSac_170620100545.h5"].startswith(
            "short read"
        )
        assert len(reloaded) == 1


class TestQuarantineTaxonomy:
    def test_pre_taxonomy_entries_still_load(self, tmp_path):
        # Regression: quarantine files written before the structured
        # ``error`` field existed must load unchanged.
        from repro.rt.ingest import QUARANTINE_NAME

        legacy = os.path.join(tmp_path, QUARANTINE_NAME)
        with open(legacy, "w", encoding="utf-8") as handle:
            handle.write(
                '{"name": "westSac_170620100545.h5", '
                '"reason": "short read", "attempts": 3}\n'
            )
        quarantine = Quarantine(tmp_path)
        assert len(quarantine) == 1
        assert quarantine.reasons["westSac_170620100545.h5"] == "short read"
        assert quarantine.errors["westSac_170620100545.h5"] is None

    def test_error_taxonomy_roundtrip(self, tmp_path):
        from repro.errors import CorruptDataError

        quarantine = Quarantine(tmp_path)
        quarantine.add(
            "westSac_170620100645.h5",
            "checksum mismatch",
            attempts=2,
            error=CorruptDataError("crc32 mismatch at offset 128"),
        )
        reloaded = Quarantine(tmp_path)
        entry = reloaded.errors["westSac_170620100645.h5"]
        assert entry["type"] == "CorruptDataError"
        assert entry["taxonomy"][0] == "CorruptDataError"
        assert "StorageError" in entry["taxonomy"]
        assert "ReproError" in entry["taxonomy"]
        assert "crc32" in entry["message"]

    def test_non_repro_error_has_empty_taxonomy(self, tmp_path):
        quarantine = Quarantine(tmp_path)
        quarantine.add("x.h5", "io", attempts=1, error=OSError("disk"))
        entry = Quarantine(tmp_path).errors["x.h5"]
        assert entry["type"] == "OSError"
        assert entry["taxonomy"] == []


# ---------------------------------------------------------------------------
# Events: streamed assembly == batch assembly, sink dedup
# ---------------------------------------------------------------------------
class TestEventAssembly:
    def _random_map(self, seed, n_channels=12, n_columns=200):
        rng = np.random.default_rng(seed)
        block = rng.uniform(-0.2, 0.45, size=(n_channels, n_columns))
        # paint a few hot stripes so runs exist
        for lo, hi in ((20, 35), (90, 91), (140, 170)):
            block[:, lo:hi] += 0.5
        return block

    def test_streamed_equals_batch_any_split(self):
        policy = EventPolicy(threshold=0.4, min_fraction=0.5)
        fs = 100.0
        block = self._random_map(3)
        centers = np.arange(block.shape[1]) * 7 + 30
        expected = map_events(block, centers, fs, policy, n_channels=12)
        for cuts in ([0, 60, 61, 150, 200], [0, 25, 95, 160, 200]):
            assembler = EventAssembler(policy, fs, 12)
            got = []
            for lo, hi in zip(cuts[:-1], cuts[1:]):
                got.extend(
                    assembler.feed(lo, centers[lo:hi], block[:, lo:hi])
                )
            got.extend(assembler.flush())
            assert [e.to_json() for e in got] == [
                e.to_json() for e in expected
            ]

    def test_open_run_survives_state_roundtrip(self):
        policy = EventPolicy(threshold=0.4, min_fraction=0.5)
        block = self._random_map(5)
        centers = np.arange(block.shape[1]) * 7 + 30
        expected = map_events(block, centers, 100.0, policy, n_channels=12)

        first = EventAssembler(policy, 100.0, 12)
        got = first.feed(0, centers[:150], block[:, :150])  # run open at 140..
        payload = json.loads(json.dumps(first.export_state()))
        second = EventAssembler(policy, 100.0, 12)
        second.import_state(payload)
        got += second.feed(150, centers[150:], block[:, 150:])
        got += second.flush()
        assert [e.to_json() for e in got] == [e.to_json() for e in expected]

    def test_min_columns_drops_glitches(self):
        policy = EventPolicy(threshold=0.4, min_fraction=0.5, min_columns=2)
        block = self._random_map(7)
        centers = np.arange(block.shape[1]).astype(float)
        events = map_events(block, centers, 100.0, policy, n_channels=12)
        assert all(e.j_end - e.j_start + 1 >= 2 for e in events)
        assert not any(e.j_start == 90 for e in events)  # the 1-column stripe

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            EventPolicy(min_fraction=0.0)
        with pytest.raises(ConfigError):
            EventPolicy(min_columns=0)


class TestEventSink:
    def test_dedup_by_record_and_span(self, tmp_path):
        path = tmp_path / "events.jsonl"
        policy = EventPolicy(threshold=0.4, min_fraction=0.5)
        block = np.full((4, 6), 0.9)
        events = map_events(block, np.arange(6.0), 10.0, policy, n_channels=4)
        sink = EventSink(path)
        assert len(sink.emit(events, record="170620100545")) == 1
        assert sink.emit(events, record="170620100545") == []  # duplicate
        assert len(sink.emit(events, record="170620100645")) == 1  # new record
        reloaded = EventSink(path)  # resume: keys reloaded from disk
        assert reloaded.count == 2
        assert reloaded.emit(events, record="170620100545") == []
        assert all(
            isinstance(e, SeamEvent) for e in reloaded.load()
        )


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
class TestCheckpointStore:
    def test_roundtrip_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json")
        assert store.load() is None
        store.save({"files_done": [["a.h5", 100]]})
        assert store.load()["files_done"] == [["a.h5", 100]]
        store.clear()
        assert store.load() is None

    def test_rejects_torn_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"version": 1, "files')
        with pytest.raises(StorageError):
            CheckpointStore(path).load()

    def test_read_sample_range_spans_files(self, tmp_path):
        fs, n = 10.0, 40
        data = np.arange(4 * 3 * n, dtype=np.float32).reshape(4, 3 * n)
        files = []
        stamp = "170620100545"
        for k in range(3):
            meta = DASMetadata(
                sampling_frequency=fs,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=4,
            )
            path = os.path.join(tmp_path, f"westSac_{stamp}.h5")
            write_das_file(path, data[:, k * n : (k + 1) * n], meta)
            files.append((path, n))
            stamp = str(int(stamp) + 4)
        got = read_sample_range(files, 35, 85)
        assert np.array_equal(got, data[:, 35:85])
        with pytest.raises(StorageError):
            read_sample_range(files, 100, 300)  # beyond what files cover


# ---------------------------------------------------------------------------
# Scheduler + metrics odds and ends
# ---------------------------------------------------------------------------
class TestSchedulerConfig:
    def test_rejects_unknown_detector(self):
        with pytest.raises(ConfigError):
            DetectorConfig(detector="template_matching")

    def test_geometry_mismatch_raises(self, record):
        scheduler = SeamScheduler(DetectorConfig(band=None))
        scheduler.process(record, fs=200.0)
        with pytest.raises(ConfigError, match="does not match"):
            scheduler.process(record[:5], fs=200.0)

    def test_centers_map_columns_to_samples(self):
        cfg = DetectorConfig(
            similarity=LocalSimilarityConfig(
                half_window=25, channel_offset=1, half_lag=5, stride=10
            )
        )
        assert list(cfg.centers(0, 3)) == [30, 40, 50]
        assert DetectorConfig(detector="sta_lta").channel_lo == 0
        assert cfg.channel_lo == 1


class TestMetrics:
    def test_latency_percentiles(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.record(v / 100.0)
        assert stats.percentile(50) == pytest.approx(0.505, abs=1e-9)
        assert stats.percentile(95) == pytest.approx(0.9505, abs=1e-9)
        snap = stats.snapshot()
        assert snap["count"] == 100 and snap["max_s"] == pytest.approx(1.0)

    def test_snapshot_consistent_under_concurrent_appends(self):
        # snapshot() must copy the reservoir once and derive p50/p95/max
        # from that one frozen copy — the service thread appends while
        # the CLI snapshots, and the stats must stay internally ordered.
        import threading

        stats = LatencyStats(cap=256)
        stop = threading.Event()

        def writer():
            v = 0
            while not stop.is_set():
                v += 1
                stats.record((v % 97) / 97.0)

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(300):
                snap = stats.snapshot()
                if snap["count"] == 0:
                    continue
                assert snap["p50_s"] <= snap["p95_s"] <= snap["max_s"]
        finally:
            stop.set()
            t.join()

    def test_snapshot_matches_percentile_on_static_reservoir(self):
        stats = LatencyStats()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            stats.record(v)
        snap = stats.snapshot()
        assert snap["p50_s"] == stats.percentile(50)
        assert snap["p95_s"] == stats.percentile(95)
        assert snap["max_s"] == 5.0

    def test_snapshot_is_json_safe(self):
        metrics = RTMetrics()
        metrics.stage("read").record(0.01)
        metrics.ingest_lag.record(0.5)
        metrics.files_ingested = 3
        json.dumps(metrics.snapshot())
        assert "files/sec" in metrics.report() or "files" in metrics.report()
