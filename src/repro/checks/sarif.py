"""SARIF 2.1.0 output for check findings.

Minimal but valid: one run, one tool, one rule per code, one result per
finding with a physical location and a ``partialFingerprints`` entry
carrying the same line-drift-stable fingerprint the baseline uses — so
SARIF consumers (code-scanning UIs, diff annotators) dedupe findings
across commits exactly like our own baseline does.
"""

from __future__ import annotations

from repro.checks.findings import Finding

__all__ = ["to_sarif", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(findings: list[Finding], analyzers) -> dict:
    """A SARIF document for ``findings`` (typically the post-baseline
    *new* ones; pass everything for a full inventory)."""
    rules = []
    rule_index: dict[str, int] = {}
    for analyzer in analyzers:
        for code, text in sorted(analyzer.codes.items()):
            rule_index[code] = len(rules)
            rules.append({
                "id": code,
                "name": analyzer.name,
                "shortDescription": {"text": text},
            })
    results = []
    for finding in sorted(findings, key=Finding.sort_key):
        result = {
            "ruleId": finding.code,
            "level": "error" if finding.severity == "error" else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(1, finding.line)},
                },
            }],
            "partialFingerprints": {"reproChecks/v1": finding.fingerprint},
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        if finding.hint:
            result["message"]["text"] += f"  [{finding.hint}]"
        results.append(result)
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.checks",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
