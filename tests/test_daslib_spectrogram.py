"""Tests for STFT/spectrogram/band power, cross-validated against scipy."""

import numpy as np
import pytest
import scipy.signal as sps

from repro.daslib.spectrogram import band_power, spectrogram, stft


class TestSTFT:
    def test_shapes(self):
        x = np.random.default_rng(0).normal(size=1000)
        freqs, times, S = stft(x, nperseg=128, fs=100.0)
        assert S.shape == (len(freqs), len(times))
        assert freqs[0] == 0.0
        assert freqs[-1] == pytest.approx(50.0)

    def test_2d_batch(self):
        x = np.random.default_rng(1).normal(size=(3, 800))
        freqs, times, S = stft(x, nperseg=64)
        assert S.shape == (3, len(freqs), len(times))

    def test_tone_lands_in_right_bin(self):
        fs = 200.0
        t = np.arange(4000) / fs
        x = np.sin(2 * np.pi * 25.0 * t)
        freqs, times, S = stft(x, nperseg=256, fs=fs)
        peak_bins = np.argmax(np.abs(S), axis=0)
        np.testing.assert_allclose(freqs[peak_bins], 25.0, atol=fs / 256)

    def test_validation(self):
        with pytest.raises(ValueError):
            stft(np.zeros(10), nperseg=64)
        with pytest.raises(ValueError):
            stft(np.zeros(100), nperseg=1)
        with pytest.raises(ValueError):
            stft(np.zeros(100), nperseg=32, noverlap=32)


class TestSpectrogram:
    def test_matches_scipy_density(self):
        fs = 100.0
        x = np.random.default_rng(2).normal(size=2048)
        freqs, times, power = spectrogram(x, nperseg=128, noverlap=64, fs=fs)
        f_s, t_s, p_s = sps.spectrogram(
            x,
            fs=fs,
            window=sps.get_window("hann", 128, fftbins=False),
            nperseg=128,
            noverlap=64,
            detrend=False,
            scaling="density",
            mode="psd",
        )
        np.testing.assert_allclose(freqs, f_s, atol=1e-12)
        # scipy centres at (nperseg/2 - 0.5)/fs offsets; compare frame count
        assert power.shape == p_s.shape
        np.testing.assert_allclose(power, p_s, rtol=1e-6, atol=1e-12)

    def test_parseval_energy(self):
        """Total spectrogram power approximates the signal variance."""
        fs = 100.0
        rng = np.random.default_rng(3)
        x = rng.normal(size=8192)
        freqs, times, power = spectrogram(x, nperseg=256, noverlap=0, fs=fs)
        df = freqs[1] - freqs[0]
        mean_power = power.mean(axis=-1).sum() * df
        assert mean_power == pytest.approx(np.var(x), rel=0.1)


class TestBandPower:
    def test_separates_bands(self):
        fs = 200.0
        t = np.arange(8000) / fs
        low = np.sin(2 * np.pi * 5.0 * t)
        high = np.sin(2 * np.pi * 60.0 * t)
        times, p_low = band_power(low + high, fs, (2.0, 10.0), nperseg=256)
        _, p_high = band_power(low + high, fs, (50.0, 70.0), nperseg=256)
        _, p_empty = band_power(low + high, fs, (85.0, 95.0), nperseg=256)
        assert p_low.mean() > 10 * p_empty.mean()
        assert p_high.mean() > 10 * p_empty.mean()

    def test_transient_localised_in_time(self):
        fs = 100.0
        x = np.random.default_rng(4).normal(size=4000) * 0.01
        x[2000:2200] += np.sin(2 * np.pi * 20.0 * np.arange(200) / fs)
        times, p = band_power(x, fs, (15.0, 25.0), nperseg=128, noverlap=64)
        peak_time = times[np.argmax(p)]
        assert 19.0 < peak_time < 23.0

    def test_validation(self):
        with pytest.raises(ValueError):
            band_power(np.zeros(1000), 100.0, (60.0, 40.0))
        with pytest.raises(ValueError):
            band_power(np.zeros(1000), 100.0, (0.01, 0.02), nperseg=16)
