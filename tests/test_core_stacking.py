"""Tests for the analytic signal helper and NCF stacking (linear + PWS)."""

import numpy as np
import pytest
import scipy.signal as sps

from repro.core.interferometry import InterferometryConfig
from repro.core.stacking import (
    linear_stack,
    phase_weighted_stack,
    stack_snr,
    window_ncfs,
)
from repro.daslib import envelope, hilbert, instantaneous_phase
from repro.errors import ConfigError


class TestHilbert:
    @pytest.mark.parametrize("n", [64, 65, 128, 255])
    def test_matches_scipy(self, n):
        x = np.random.default_rng(0).normal(size=n)
        np.testing.assert_allclose(hilbert(x), sps.hilbert(x), atol=1e-9)

    def test_real_part_is_input(self):
        x = np.random.default_rng(1).normal(size=100)
        np.testing.assert_allclose(hilbert(x).real, x, atol=1e-10)

    def test_envelope_of_am_signal(self):
        t = np.linspace(0, 1, 2000)
        env = 1.0 + 0.5 * np.sin(2 * np.pi * 3 * t)
        x = env * np.cos(2 * np.pi * 100 * t)
        got = envelope(x)
        core = slice(100, -100)
        np.testing.assert_allclose(got[core], env[core], atol=0.03)

    def test_instantaneous_phase_of_tone(self):
        t = np.arange(1000) / 1000.0
        x = np.cos(2 * np.pi * 50 * t)
        phase = instantaneous_phase(x)
        freq = np.diff(np.unwrap(phase)) * 1000 / (2 * np.pi)
        np.testing.assert_allclose(freq[50:-50], 50.0, atol=0.5)

    def test_2d_axis(self):
        x = np.random.default_rng(2).normal(size=(4, 64))
        got = hilbert(x, axis=-1)
        for row in range(4):
            np.testing.assert_allclose(got[row], sps.hilbert(x[row]), atol=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hilbert(np.zeros((3, 0)))


@pytest.fixture
def config():
    return InterferometryConfig(fs=100.0, band=(1.0, 10.0), resample_q=2)


def delayed_noise_field(rng, channels=4, seconds=120.0, fs=100.0, delay=20, snr=1.0):
    """A common signal delayed per channel, buried in noise."""
    n = int(seconds * fs)
    common = rng.normal(size=n)
    data = np.empty((channels, n))
    for channel in range(channels):
        data[channel] = (
            np.roll(common, delay * channel) * snr + rng.normal(size=n)
        )
    return data


class TestWindowNCFs:
    def test_shape(self, config):
        rng = np.random.default_rng(3)
        data = delayed_noise_field(rng)
        lags, ncfs = window_ncfs(data, config, window_seconds=20.0)
        assert ncfs.shape[0] == 6  # 120s / 20s windows
        assert ncfs.shape[1] == 4
        assert ncfs.shape[2] == len(lags)

    def test_overlap_increases_window_count(self, config):
        rng = np.random.default_rng(4)
        data = delayed_noise_field(rng)
        _, plain = window_ncfs(data, config, window_seconds=20.0)
        _, dense = window_ncfs(data, config, window_seconds=20.0, overlap=0.5)
        assert dense.shape[0] > plain.shape[0]

    def test_validation(self, config):
        data = np.zeros((2, 1000))
        with pytest.raises(ConfigError):
            window_ncfs(np.zeros(10), config, 1.0)
        with pytest.raises(ConfigError):
            window_ncfs(data, config, -1.0)
        with pytest.raises(ConfigError):
            window_ncfs(data, config, 1.0, overlap=1.0)
        with pytest.raises(ConfigError):
            window_ncfs(data, config, 100.0)  # longer than record


class TestStacks:
    def test_linear_stack_is_mean(self):
        ncfs = np.random.default_rng(5).normal(size=(7, 3, 50))
        np.testing.assert_allclose(linear_stack(ncfs), ncfs.mean(axis=0))

    def test_pws_equals_linear_for_identical_windows(self):
        one = np.random.default_rng(6).normal(size=(1, 2, 64))
        ncfs = np.repeat(one, 5, axis=0)
        pws = phase_weighted_stack(ncfs)
        np.testing.assert_allclose(pws, linear_stack(ncfs), atol=1e-9)

    def test_pws_suppresses_incoherent_noise(self):
        rng = np.random.default_rng(7)
        ncfs = rng.normal(size=(20, 1, 256))
        linear = linear_stack(ncfs)
        pws = phase_weighted_stack(ncfs)
        assert np.abs(pws).mean() < 0.5 * np.abs(linear).mean()

    def test_power_zero_is_linear(self):
        ncfs = np.random.default_rng(8).normal(size=(4, 2, 32))
        np.testing.assert_allclose(
            phase_weighted_stack(ncfs, power=0.0), linear_stack(ncfs), atol=1e-12
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            linear_stack(np.zeros((2, 3)))
        with pytest.raises(ConfigError):
            linear_stack(np.zeros((0, 2, 3)))
        with pytest.raises(ConfigError):
            phase_weighted_stack(np.zeros((2, 2, 4)), power=-1)


class TestStackingPhysics:
    def test_stacking_raises_snr(self, config):
        """More windows stacked => higher SNR on the travel-time peak —
        the reason the pipeline stacks at all."""
        rng = np.random.default_rng(9)
        data = delayed_noise_field(rng, seconds=240.0, delay=20, snr=0.6)
        lags, ncfs = window_ncfs(data, config, window_seconds=20.0, max_lag_seconds=3.0)
        window = (0.15, 0.7)  # true delay of channel 1..3: 0.2..0.6 s
        few = stack_snr(linear_stack(ncfs[:2]), lags, window)[1:]
        many = stack_snr(linear_stack(ncfs), lags, window)[1:]
        assert many.mean() > few.mean()

    def test_stack_recovers_delay(self, config):
        rng = np.random.default_rng(10)
        data = delayed_noise_field(rng, seconds=240.0, delay=30, snr=0.8)
        lags, ncfs = window_ncfs(data, config, window_seconds=30.0, max_lag_seconds=3.0)
        stacked = phase_weighted_stack(ncfs)
        peak_lag = lags[np.argmax(np.abs(stacked[1]))]
        assert peak_lag == pytest.approx(30 / 100.0, abs=0.1)

    def test_snr_validation(self):
        lags = np.linspace(-1, 1, 101)
        with pytest.raises(ConfigError):
            stack_snr(np.zeros(101), lags, (-2.0, 2.0))  # covers everything
