"""Checks fixture: lock discipline done right — zero findings expected."""

import threading


class GoodCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.events = []  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.count += 1
            self.events.append("bump")

    def _bump_locked(self):  # holds-lock
        self.count += 1

    def drain(self):
        with self._lock:
            out = list(self.events)
            self.events.clear()
        return out

    def snapshot(self):
        with self._lock:
            return self.count
