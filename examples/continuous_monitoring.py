#!/usr/bin/env python
"""Continuous monitoring: a live spool, a running service, streamed events.

Emulates a sensor that never stops: synthetic per-minute files are
drip-fed into a spool directory (atomic rename, like a real acquisition
daemon) while the :class:`repro.rt.RTService` watches it — each file is
detected once complete, pushed through the incremental detector chain
with carried state threading the filter/window halo across file seams,
and events land in ``events.jsonl`` as they are finalised.  At the end
the streamed event log is checked against one batch run over the
concatenated record: identical.

Run:  python examples/continuous_monitoring.py
"""

import tempfile

import numpy as np

from repro.core.local_similarity import (
    LocalSimilarityConfig,
    local_similarity_block,
)
from repro.daslib import butter, filtfilt
from repro.rt import (
    DetectorConfig,
    EventPolicy,
    RTService,
    ServiceConfig,
    map_events,
)
from repro.synthetic import drip_feed_dataset, fig1b_scene, synthesize_scene

FS = 50.0
CHANNELS = 96
MINUTES = 6
SPM = 600  # 12 s per "minute" file keeps the demo quick


def main() -> None:
    scene = fig1b_scene(
        n_channels=CHANNELS, fs=FS, minutes=MINUTES, samples_per_minute=SPM
    )
    similarity = LocalSimilarityConfig(
        half_window=25, channel_offset=1, half_lag=5, stride=25
    )
    detector = DetectorConfig(band=(0.5, 12.0), similarity=similarity)
    policy = EventPolicy(threshold=0.4, min_fraction=0.25)
    config = ServiceConfig(
        poll_interval=0.0, settle_seconds=0.0, stable_polls=1
    )

    spool = tempfile.mkdtemp(prefix="das-spool-")
    print(f"spool: {spool}")

    def announce(seam_event):
        event = seam_event.event
        print(
            f"  event #{event.label} {event.kind}: channels "
            f"[{event.channel_lo}, {event.channel_hi}], "
            f"t [{event.t_start:.1f}, {event.t_end:.1f}] s"
        )

    service = RTService(
        spool,
        detector=detector,
        policy=policy,
        config=config,
        on_event=announce,
    )
    print(f"drip-feeding {MINUTES} files while the service watches ...")
    for path in drip_feed_dataset(
        spool, MINUTES, scene=scene, samples_per_minute=SPM
    ):
        print(f"file landed: {path.rsplit('/', 1)[-1]}")
        service.drain()
    service.flush()  # acquisition over: clamp the edge, close open runs

    streamed = service.sink.load()
    print(f"\n{len(streamed)} events in {service.sink.path}")
    print(service.metrics.report())

    # The punchline: one batch pass over the concatenated record finds
    # the *same* events — nothing dropped or doubled at file seams.
    data = synthesize_scene(scene, MINUTES, samples_per_minute=SPM).astype(
        np.float64
    )
    b, a = butter(4, (0.5, 12.0), "bandpass", fs=FS)
    sim_map, centers = local_similarity_block(
        filtfilt(b, a, data, axis=-1), similarity
    )
    batch = map_events(
        sim_map, centers, FS, policy, n_channels=CHANNELS, channel_lo=1
    )
    spans = lambda events: [(e.j_start, e.j_end, e.event.kind) for e in events]
    assert spans(streamed) == spans(batch), "seam equivalence violated"
    print(
        f"\nbatch run over the concatenated record: {len(batch)} events — "
        "identical to the streamed log (seam equivalence holds)"
    )


if __name__ == "__main__":
    main()
