"""STA/LTA event detection.

The classical short-term-average / long-term-average trigger — the
standard single-channel seismic detector the local-similarity method
(Algorithm 2) improves on for large-N arrays.  Included both as a
baseline detector and because production DAS monitoring runs it as the
first-pass screen.

Implements the classic (windowed) and recursive forms plus trigger
on/off picking, with ObsPy-compatible semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import OpContext, Operator
from repro.daslib.moving import moving_average
from repro.errors import ConfigError


def classic_sta_lta(x: np.ndarray, nsta: int, nlta: int, axis: int = -1) -> np.ndarray:
    """Classic STA/LTA of the squared signal.

    ``nsta``/``nlta`` are window lengths in samples (trailing windows).
    The first ``nlta`` samples, where the LTA is not yet filled, return
    0 so they can never trigger (ObsPy behaviour).

    NaN samples (degraded-read fill) yield NaN for exactly the outputs
    whose LTA window contains them; windows clear of NaN are computed
    from the real samples only, so a masked span's damage stays inside
    its ``nlta - 1`` halo instead of poisoning the running sums for the
    rest of the record.
    """
    if not (0 < nsta < nlta):
        raise ConfigError(f"need 0 < nsta ({nsta}) < nlta ({nlta})")
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    if n < nlta:
        raise ConfigError(f"signal of {n} samples shorter than nlta={nlta}")
    moved = np.moveaxis(x, axis, -1)
    idx = np.arange(n)
    sta_lo = np.clip(idx - nsta + 1, 0, None)
    lta_lo = np.clip(idx - nlta + 1, 0, None)
    ratio = _windowed_ratio(moved, idx, sta_lo, lta_lo, nsta, nlta)
    ratio[..., : nlta - 1] = 0.0
    return np.moveaxis(ratio, -1, axis)


def _windowed_ratio(data, idx, sta_lo, lta_lo, nsta, nlta):
    """Trailing-window STA/LTA via cumulative sums, with NaN containment:
    NaN inputs are zeroed out of the running sums and the outputs whose
    LTA window touched one are set to NaN afterwards."""
    contaminated = np.isnan(data)
    any_bad = bool(contaminated.any())
    energy = np.where(contaminated, 0.0, data) ** 2 if any_bad else data**2
    cumsum = np.concatenate(
        [np.zeros(energy.shape[:-1] + (1,)), np.cumsum(energy, axis=-1)], axis=-1
    )
    sta = (cumsum[..., idx + 1] - cumsum[..., sta_lo]) / nsta
    lta = (cumsum[..., idx + 1] - cumsum[..., lta_lo]) / nlta
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(lta > 0, sta / np.where(lta > 0, lta, 1.0), 0.0)
    if any_bad:
        badcum = np.concatenate(
            [
                np.zeros(contaminated.shape[:-1] + (1,)),
                np.cumsum(contaminated, axis=-1),
            ],
            axis=-1,
        )
        ratio[(badcum[..., idx + 1] - badcum[..., lta_lo]) > 0] = np.nan
    return ratio


class StaLtaOp(Operator):
    """Classic STA/LTA on the streaming executor.

    The trailing LTA window is pure lookback, so the halo is one-sided:
    ``nlta - 1`` samples of left context.  Samples whose absolute index
    is below ``nlta - 1`` are zeroed by *absolute* position, reproducing
    the whole-array warm-up rule on any chunk — including chunks shorter
    than ``nlta``, which the whole-array entry point rejects outright.
    """

    name = "sta_lta"

    def __init__(self, nsta: int, nlta: int):
        if not (0 < nsta < nlta):
            raise ConfigError(f"need 0 < nsta ({nsta}) < nlta ({nlta})")
        self.nsta = int(nsta)
        self.nlta = int(nlta)
        self.halo = (self.nlta - 1, 0)

    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        if ctx.whole and data.shape[-1] >= self.nlta:
            return classic_sta_lta(data, self.nsta, self.nlta, axis=-1)
        n = data.shape[-1]
        idx = np.arange(n)
        sta_lo = np.clip(idx - self.nsta + 1, 0, None)
        lta_lo = np.clip(idx - self.nlta + 1, 0, None)
        ratio = _windowed_ratio(
            np.asarray(data, dtype=np.float64), idx, sta_lo, lta_lo,
            self.nsta, self.nlta,
        )
        ratio[..., ctx.start + idx < self.nlta - 1] = 0.0
        return ratio


def streamed_sta_lta(
    source: object,
    nsta: int,
    nlta: int,
    chunk_samples: int | None = None,
    threads: int = 1,
    timer: object = None,
    iostats: object = None,
    fs: float | None = None,
    policy: object = None,
):
    """STA/LTA ratios over a chunk source.

    Returns a :class:`~repro.core.pipeline.PipelineResult` whose output
    matches :func:`classic_sta_lta` on the materialised array.
    ``policy`` is an optional :class:`~repro.faults.policy.FailurePolicy`
    governing per-chunk retry and gap masking.
    """
    from repro.core.pipeline import StreamPipeline

    return StreamPipeline([StaLtaOp(nsta, nlta)]).run(
        source,
        chunk_samples=chunk_samples,
        threads=threads,
        timer=timer,
        iostats=iostats,
        fs=fs,
        policy=policy,
    )


def recursive_sta_lta(x: np.ndarray, nsta: int, nlta: int) -> np.ndarray:
    """Recursive (exponential-average) STA/LTA of a 1-D signal.

    One pass, O(n), the on-line form acquisition systems run.
    """
    if not (0 < nsta < nlta):
        raise ConfigError(f"need 0 < nsta ({nsta}) < nlta ({nlta})")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ConfigError("recursive STA/LTA takes a 1-D series")
    csta = 1.0 / nsta
    clta = 1.0 / nlta
    sta = 0.0
    lta = np.finfo(float).tiny
    out = np.zeros(len(x))
    for i, value in enumerate(x):
        energy = value * value
        sta = csta * energy + (1.0 - csta) * sta
        lta = clta * energy + (1.0 - clta) * lta
        out[i] = sta / lta
    out[: nlta - 1] = 0.0
    return out


class RecursiveStaLta:
    """Carried-state recursive STA/LTA over streamed ``(channels, time)`` blocks.

    The on-line form acquisition systems run, lifted to a whole array and
    made resumable: the exponential averages are the *entire* carried
    state, so feeding the record in arbitrary pieces reproduces
    :func:`recursive_sta_lta` on each channel exactly, and
    :meth:`export_state` / :meth:`import_state` round-trip that state
    through JSON for checkpoint/resume in the monitoring service.
    """

    STATE_VERSION = 1

    def __init__(self, n_channels: int, nsta: int, nlta: int):
        if not (0 < nsta < nlta):
            raise ConfigError(f"need 0 < nsta ({nsta}) < nlta ({nlta})")
        if n_channels < 1:
            raise ConfigError("n_channels must be >= 1")
        self.n_channels = int(n_channels)
        self.nsta = int(nsta)
        self.nlta = int(nlta)
        self._sta = np.zeros(self.n_channels)
        self._lta = np.full(self.n_channels, np.finfo(float).tiny)
        self._seen = 0

    @property
    def seen(self) -> int:
        """Absolute samples consumed so far."""
        return self._seen

    def process(self, block: np.ndarray) -> np.ndarray:
        """Consume the next ``(channels, time)`` piece; returns its ratios.

        Samples whose absolute index is below ``nlta - 1`` return 0 (the
        warm-up rule), by *absolute* position across pieces.
        """
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[0] != self.n_channels:
            raise ConfigError(
                f"need a ({self.n_channels}, n) block, got {block.shape}"
            )
        csta, clta = 1.0 / self.nsta, 1.0 / self.nlta
        out = np.empty_like(block)
        for i in range(block.shape[1]):
            energy = block[:, i] ** 2
            self._sta = csta * energy + (1.0 - csta) * self._sta
            self._lta = clta * energy + (1.0 - clta) * self._lta
            out[:, i] = self._sta / self._lta
        warmup = self._seen + np.arange(block.shape[1]) < self.nlta - 1
        out[:, warmup] = 0.0
        self._seen += block.shape[1]
        return out

    def export_state(self) -> dict:
        """JSON-safe carried state (averages + watermark)."""
        return {
            "version": self.STATE_VERSION,
            "n_channels": self.n_channels,
            "nsta": self.nsta,
            "nlta": self.nlta,
            "seen": self._seen,
            "sta": self._sta.tolist(),
            "lta": self._lta.tolist(),
        }

    def import_state(self, payload: dict) -> None:
        """Restore carried state exported by :meth:`export_state`."""
        if payload.get("version") != self.STATE_VERSION:
            raise ConfigError(
                f"STA/LTA state version {payload.get('version')!r} unsupported"
            )
        if (
            int(payload["n_channels"]) != self.n_channels
            or int(payload["nsta"]) != self.nsta
            or int(payload["nlta"]) != self.nlta
        ):
            raise ConfigError("STA/LTA state geometry does not match this detector")
        sta = np.asarray(payload["sta"], dtype=np.float64)
        lta = np.asarray(payload["lta"], dtype=np.float64)
        if sta.shape != (self.n_channels,) or lta.shape != (self.n_channels,):
            raise ConfigError("STA/LTA state arrays have the wrong shape")
        self._sta = sta
        self._lta = lta
        self._seen = int(payload["seen"])


@dataclass(frozen=True)
class Trigger:
    """One STA/LTA trigger interval (sample indices, end exclusive)."""

    on: int
    off: int

    @property
    def length(self) -> int:
        return self.off - self.on


def trigger_onset(
    ratio: np.ndarray, on_threshold: float, off_threshold: float
) -> list[Trigger]:
    """Hysteresis picking: trigger when the ratio crosses ``on_threshold``,
    release when it falls below ``off_threshold``."""
    if off_threshold > on_threshold:
        raise ConfigError("off_threshold must not exceed on_threshold")
    ratio = np.asarray(ratio, dtype=np.float64)
    if ratio.ndim != 1:
        raise ConfigError("trigger picking takes a 1-D ratio series")
    triggers: list[Trigger] = []
    active_since: int | None = None
    for i, value in enumerate(ratio):
        if active_since is None:
            if value >= on_threshold:
                active_since = i
        else:
            if value < off_threshold:
                triggers.append(Trigger(active_since, i))
                active_since = None
    if active_since is not None:
        triggers.append(Trigger(active_since, len(ratio)))
    return triggers


def array_detections(
    data: np.ndarray,
    nsta: int,
    nlta: int,
    on_threshold: float = 3.5,
    off_threshold: float = 1.5,
    min_fraction: float = 0.3,
    smooth: int = 1,
) -> list[Trigger]:
    """Array-wide STA/LTA: a sample is a detection when at least
    ``min_fraction`` of channels trigger simultaneously.

    This is the naive large-N detector whose noise susceptibility
    motivated local similarity (Li et al. 2018): single-channel spikes
    vote, so a localised disturbance on enough channels false-triggers.
    """
    if not (0.0 < min_fraction <= 1.0):
        raise ConfigError("min_fraction must be in (0, 1]")
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("need a 2-D (channels, samples) array")
    ratio = classic_sta_lta(data, nsta, nlta, axis=-1)
    voting = (ratio >= on_threshold).mean(axis=0)
    if smooth > 1:
        voting = moving_average(voting, smooth)
    return trigger_onset(
        voting, on_threshold=min_fraction, off_threshold=min_fraction / 2
    )
