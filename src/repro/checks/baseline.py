"""Persisted baseline / allowlist for check findings.

Two suppression mechanisms live in one JSON file
(``scripts/checks_baseline.json``):

* **waivers** — hand-written policy entries matching a code (or a whole
  rule) against an fnmatch path pattern, each with a mandatory
  ``reason``.  This is where intentional deviations live (e.g. DasLib
  mirrors scipy's ``ValueError`` argument contract).
* **findings** — individual grandfathered findings pinned by
  line-independent fingerprint, written by ``--update-baseline``.  Each
  keeps a ``reason`` (new entries get an ``unreviewed`` placeholder the
  review is expected to replace) and the matching is by multiplicity:
  two identical findings need two entries.

A finding suppressed by either mechanism is *baselined*; anything else
is *new* and fails the run.  ``--update-baseline`` rewrites only the
``findings`` list (preserving reasons for fingerprints that survive)
and never touches the waivers.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.checks.findings import Finding
from repro.errors import ConfigError

__all__ = ["Baseline", "Waiver", "UNREVIEWED"]

UNREVIEWED = "unreviewed — justify this entry or fix the finding"


@dataclass(frozen=True)
class Waiver:
    """A policy-level suppression: ``code`` (or every code of ``rule``)
    under paths matching ``path`` (fnmatch), with a reason."""

    path: str
    reason: str
    code: str | None = None
    rule: str | None = None

    def matches(self, finding: Finding) -> bool:
        if self.code is not None and finding.code != self.code:
            return False
        if self.rule is not None and finding.rule != self.rule:
            return False
        return fnmatch(finding.path, self.path)


@dataclass
class Baseline:
    waivers: list[Waiver] = field(default_factory=list)
    #: fingerprint -> how many identical findings are grandfathered
    pinned: Counter = field(default_factory=Counter)
    #: fingerprint -> (reason, representative entry dict) for round-trips
    pinned_meta: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path | None) -> "Baseline":
        if path is None or not Path(path).exists():
            return cls()
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if raw.get("version") != 1:
            raise ConfigError(f"{path}: unsupported baseline version {raw.get('version')!r}")
        waivers = [
            Waiver(
                path=entry["path"],
                reason=entry["reason"],
                code=entry.get("code"),
                rule=entry.get("rule"),
            )
            for entry in raw.get("waivers", [])
        ]
        pinned: Counter = Counter()
        meta: dict[str, dict] = {}
        for entry in raw.get("findings", []):
            fp = entry["fingerprint"]
            pinned[fp] += 1
            meta.setdefault(fp, entry)
        return cls(waivers=waivers, pinned=pinned, pinned_meta=meta)

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined); pinned entries are consumed
        with multiplicity so extra duplicates still surface."""
        budget = Counter(self.pinned)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            if any(w.matches(finding) for w in self.waivers):
                baselined.append(finding)
            elif budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def updated_document(self, findings: list[Finding]) -> dict:
        """The JSON document pinning the current (non-waived) findings,
        preserving waivers and any reasons already on file."""
        entries = []
        for finding in sorted(findings, key=Finding.sort_key):
            if any(w.matches(finding) for w in self.waivers):
                continue
            previous = self.pinned_meta.get(finding.fingerprint, {})
            entries.append({
                "fingerprint": finding.fingerprint,
                "code": finding.code,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "context": finding.context,
                "reason": previous.get("reason", UNREVIEWED),
            })
        waivers = []
        for w in self.waivers:
            entry = {"path": w.path, "reason": w.reason}
            if w.code is not None:
                entry["code"] = w.code
            if w.rule is not None:
                entry["rule"] = w.rule
            waivers.append(entry)
        return {"version": 1, "waivers": waivers, "findings": entries}

    def save(self, path: str | Path, findings: list[Finding]) -> None:
        doc = self.updated_document(findings)
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, indent=2, sort_keys=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
