"""Checks fixture: atomic-persistence — the blessed discipline.

Twins of ``atm_bad.py``: the full tmp + flush + fsync + ``os.replace``
sequence, a durable append that flushes and fsyncs, a binary bulk
write (out of scope), a read-only open, and an annotated throwaway
report.  Expected: no ATM findings.
"""

import json
import os


def save_atomic(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def append_durable(path, row):
    with open(path, "a") as fh:
        fh.write(row + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def save_binary(path, blob):
    with open(path, "wb") as fh:  # bulk array data goes through hdf5lite
        fh.write(blob)


def read_config(path):
    with open(path) as fh:
        return json.load(fh)


def save_report(path, text):
    with open(path, "w") as fh:  # noqa: ATM001 - throwaway report artifact
        fh.write(text)
