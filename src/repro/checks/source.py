"""Parsed source modules and the project that holds them.

Every file is read and parsed exactly once; analyzers share the
:class:`SourceModule` (AST + comment map), so adding an analyzer costs
one more tree walk, not another parse.  Comments are extracted with
:mod:`tokenize` (so ``#`` inside string literals is never mistaken for
one) and drive three in-source conventions:

``# guarded-by: <lock-attr>``
    on an attribute assignment: the attribute may only be mutated while
    holding ``self.<lock-attr>`` (checked by the lock-discipline
    analyzer, :mod:`repro.checks.locks`).
``# holds-lock``
    on (or directly above) a ``def``: the method is documented to be
    called with the class lock already held, so mutations inside it are
    exempt.
``# noqa`` / ``# noqa: CODE[,CODE...] - reason``
    suppress findings on that line; a bare ``noqa`` suppresses every
    code.  The historical ``BLE001`` marker (from ``faultcheck.sh``) is
    accepted as an alias for the broad-except code ``TAX001``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Project", "SourceModule", "GUARDED_BY_RE", "HOLDS_LOCK_RE"]

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
HOLDS_LOCK_RE = re.compile(r"#\s*holds-lock\b")
_NOQA_RE = re.compile(r"#\s*noqa\b(?::?\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?")

#: Legacy flake8-style markers accepted as aliases for our codes, so the
#: ``# noqa: BLE001 - reason`` boundaries blessed by faultcheck.sh keep
#: working unchanged.
NOQA_ALIASES = {"BLE001": "TAX001"}


@dataclass
class SourceModule:
    """One parsed source file plus its comment annotations."""

    path: Path
    rel: str  # repo-relative, forward slashes
    text: str
    tree: ast.Module | None
    parse_error: str | None = None
    #: line number -> full comment text (joined if multiple tokens)
    comments: dict[int, str] = field(default_factory=dict)
    #: scanned under the relaxed rule set (benchmarks/, examples/)
    relaxed: bool = False
    #: top-level package under src/repro ("hdf5lite", "rt", ...) or None
    layer: str | None = None

    def comment(self, line: int) -> str:
        return self.comments.get(line, "")

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when a ``noqa`` on ``line`` silences ``code``."""
        match = _NOQA_RE.search(self.comments.get(line, ""))
        if match is None:
            return False
        codes = match.group("codes")
        if not codes:
            return True  # bare noqa: everything
        listed = {c.strip() for c in codes.split(",")}
        listed |= {NOQA_ALIASES.get(c, c) for c in listed}
        return code in listed

    def node_suppressed(self, node: ast.AST, code: str) -> bool:
        """Check ``noqa`` on the node's first and last physical lines."""
        lines = {getattr(node, "lineno", 0)}
        end = getattr(node, "end_lineno", None)
        if end is not None:
            lines.add(end)
        return any(self.is_suppressed(line, code) for line in lines)

    def context_line(self, line: int) -> str:
        """Whitespace-normalized source text of ``line`` — the stable
        anchor findings fingerprint on instead of the line number."""
        lines = self.text.splitlines()
        if 1 <= line <= len(lines):
            return " ".join(lines[line - 1].split())
        return ""

    def guarded_on(self, line: int) -> str | None:
        """The lock name from a ``# guarded-by:`` comment on ``line``."""
        match = GUARDED_BY_RE.search(self.comments.get(line, ""))
        return match.group(1) if match else None

    def holds_lock_on(self, line: int) -> bool:
        return bool(HOLDS_LOCK_RE.search(self.comments.get(line, "")))


def _extract_comments(text: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                line = tok.start[0]
                comments[line] = (
                    comments[line] + "  " + tok.string if line in comments else tok.string
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Tokenisation failed (the parse will report it); fall back to a
        # naive scan so noqa markers still work on the healthy lines.
        for i, raw in enumerate(text.splitlines(), start=1):
            pos = raw.find("#")
            if pos >= 0:
                comments[i] = raw[pos:]
    return comments


def load_module(path: Path, rel: str, relaxed: bool = False) -> SourceModule:
    """Read + parse one file; a syntax error becomes ``parse_error``."""
    text = path.read_text(encoding="utf-8")
    tree: ast.Module | None = None
    parse_error: str | None = None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        parse_error = f"{exc.msg} (line {exc.lineno})"
    layer = None
    parts = rel.split("/")
    if parts[:2] == ["src", "repro"] and len(parts) > 2:
        layer = parts[2][:-3] if len(parts) == 3 else parts[2]
    return SourceModule(
        path=path,
        rel=rel,
        text=text,
        tree=tree,
        parse_error=parse_error,
        comments=_extract_comments(text),
        relaxed=relaxed,
        layer=layer,
    )


@dataclass
class Project:
    """Everything one check run looks at.

    ``scope`` narrows *reporting*, not *parsing*: in an incremental run
    the whole tree is still loaded (whole-program analyzers need every
    module to resolve names and build call graphs), but only modules in
    scope may produce findings — the rest come from the result cache.
    ``None`` means everything is in scope (a full run).
    """

    root: Path
    modules: list[SourceModule]
    scope: set[str] | None = None

    def module(self, rel: str) -> SourceModule | None:
        for mod in self.modules:
            if mod.rel == rel:
                return mod
        return None

    def in_scope(self, mod: SourceModule) -> bool:
        return self.scope is None or mod.rel in self.scope
