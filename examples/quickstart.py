#!/usr/bin/env python
"""Quickstart: generate a synthetic DAS dataset, search it, merge it into
a VCA, and run a user-defined function over it with the hybrid engine.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import DASSA
from repro.arrayudf import HybridEngine
from repro.cluster import laptop
from repro.storage.vca import open_vca
from repro.synthetic import fig1b_scene, generate_dataset


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="dassa-quickstart-") as root:
        # 1. Write six one-minute files (scaled: 64 channels, 10 Hz).
        scene = fig1b_scene(n_channels=64, fs=10.0, minutes=6, samples_per_minute=600)
        paths = generate_dataset(f"{root}/data", 6, scene=scene, samples_per_minute=600)
        print(f"wrote {len(paths)} per-minute DAS files")

        with DASSA(workdir=f"{root}/work") as dassa:
            # 2. das_search: a timestamp-range (type 1) query.
            hits = dassa.search(f"{root}/data", start="170620100545", count=6)
            print(f"search matched {len(hits)} files "
                  f"({hits[0].timestamp} .. {hits[-1].timestamp})")

            # 3. Merge them into a Virtually Concatenated Array (no copy).
            vca_path = dassa.merge(hits)
            with open_vca(vca_path) as vca:
                print(f"VCA shape: {vca.shape} from {len(vca.sources)} sources")

                # 4. A user-defined function: 3-point moving average along
                #    time, the paper's ArrayUDF intro example, run by the
                #    hybrid engine (1 rank x threads on a virtual node).
                engine = HybridEngine(laptop(nodes=2, cores=4), nodes=2, threads_per_rank=4)
                udf = lambda s: (s(0, -1) + s(0, 0) + s(0, 1)) / 3  # noqa: E731
                report = engine.run(vca.dataset, udf, boundary="clamp")
                smoothed = report.result
                print(f"ApplyMT produced {smoothed.shape} smoothed samples")
                print(f"virtual read time  : {report.read_time * 1e3:.2f} ms")
                print(f"virtual compute    : {report.compute_time * 1e3:.2f} ms")

                raw = vca.dataset.read()
                print(f"smoothing reduced RMS from {np.std(raw):.3f} "
                      f"to {np.std(smoothed):.3f}")


if __name__ == "__main__":
    main()
