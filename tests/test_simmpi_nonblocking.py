"""Tests for nonblocking isend/irecv and Request semantics."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.simmpi import run_spmd


class TestIsendIrecv:
    def test_mpi4py_tutorial_pattern(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend({"a": 7, "b": 3.14}, dest=1, tag=11)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=11)
            return req.wait()

        result = run_spmd(fn, 2)
        assert result.results[1] == {"a": 7, "b": 3.14}

    def test_wait_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend("x", dest=1)
                assert req.wait() is None
                assert req.wait() is None
                assert req.completed
                return None
            req = comm.irecv(source=0)
            first = req.wait()
            second = req.wait()
            return (first, second)

        result = run_spmd(fn, 2)
        assert result.results[1] == ("x", "x")

    def test_isend_to_self_rejected(self):
        def fn(comm):
            comm.isend(1, dest=comm.rank)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_test_polls_without_blocking(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.isend(42, dest=1).wait()
                comm.barrier()
                return None
            req = comm.irecv(source=0)
            done, _ = req.test()  # nothing sent yet
            assert not done
            comm.barrier()
            comm.barrier()  # sender has definitely posted by now
            done, value = req.test()
            assert done and value == 42
            return value

        result = run_spmd(fn, 2)
        assert result.results[1] == 42

    def test_multiple_outstanding_requests_ordered(self):
        def fn(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(5)]
                for req in reqs:
                    req.wait()
                return None
            # receive in reverse tag order: matching is by tag
            return [comm.irecv(source=0, tag=t).wait() for t in (4, 3, 2, 1, 0)]

        result = run_spmd(fn, 2)
        assert result.results[1] == [4, 3, 2, 1, 0]

    def test_overlap_charges_less_than_blocking(self):
        """isend + compute + wait overlaps wire time with the compute;
        a blocking send serialises them."""
        payload = np.zeros(2**22)  # 32 MB: several ms of wire time
        compute = 0.05

        def overlapped(comm):
            if comm.rank == 0:
                req = comm.isend(payload, dest=1)
                comm.clock.advance(compute, phase="compute")
                req.wait()
                return comm.clock.now
            comm.recv(source=0)
            return None

        def blocking(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1)
                comm.clock.advance(compute, phase="compute")
                return comm.clock.now
            comm.recv(source=0)
            return None

        t_overlap = run_spmd(overlapped, 2).results[0]
        t_block = run_spmd(blocking, 2).results[0]
        assert t_overlap < t_block

    def test_numpy_payload(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend(np.arange(100.0), dest=1).wait()
                return None
            return comm.irecv(source=0).wait()

        result = run_spmd(fn, 2)
        np.testing.assert_array_equal(result.results[1], np.arange(100.0))

    def test_trace_records_isend(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend(b"abc", dest=1).wait()
            else:
                comm.recv(source=0)

        result = run_spmd(fn, 2)
        ops = [op for op, _, _ in result.tracers[0].schedule()]
        assert "isend" in ops
