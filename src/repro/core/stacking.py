"""Stacking of windowed noise-correlation functions.

The interferometry pipeline (Dou et al. 2017, the paper's [16]) does not
correlate one long record: it splits the recording into windows,
correlates each window, and *stacks* the per-window noise-correlation
functions — "a 3D data array with a striping size as the third
dimension may be produced" during this stage (paper §IV).  Stacking
averages incoherent noise down while the coherent travel-time signal
adds up, so SNR grows ~sqrt(windows).

Provided stacks:

* :func:`linear_stack` — plain mean over windows,
* :func:`phase_weighted_stack` — Schimmel & Paulssen phase-weighted
  stack: the linear stack modulated by the coherence of instantaneous
  phases, which suppresses incoherent energy much harder.
"""

from __future__ import annotations

import numpy as np

from repro.core.interferometry import InterferometryConfig, noise_correlation_functions
from repro.core.pipeline import OpContext, SinkOp
from repro.daslib.analytic import hilbert
from repro.errors import ConfigError


def window_ncfs(
    data: np.ndarray,
    config: InterferometryConfig,
    window_seconds: float,
    overlap: float = 0.0,
    max_lag_seconds: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-window noise correlations: the 3-D stacking input.

    Splits ``data`` (channels x samples, at ``config.fs``) into windows
    of ``window_seconds`` with fractional ``overlap``; correlates each
    window against the master channel.  Returns ``(lags, ncfs)`` with
    ``ncfs`` of shape ``(n_windows, channels, n_lags)``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("need a 2-D (channels, samples) array")
    if window_seconds <= 0:
        raise ConfigError("window_seconds must be positive")
    if not (0.0 <= overlap < 1.0):
        raise ConfigError("overlap must be in [0, 1)")
    win = int(round(window_seconds * config.fs))
    if win < 8:
        raise ConfigError(f"window of {win} samples is too short")
    if win > data.shape[1]:
        raise ConfigError(
            f"window ({win} samples) exceeds the record ({data.shape[1]})"
        )
    hop = max(1, int(round(win * (1.0 - overlap))))
    starts = list(range(0, data.shape[1] - win + 1, hop))

    slices = []
    lags = None
    for start in starts:
        lag, ncf = noise_correlation_functions(
            data[:, start : start + win], config, max_lag_seconds=max_lag_seconds
        )
        if lags is None:
            lags = lag
        slices.append(ncf)
    stacked = np.stack(slices, axis=0)
    assert lags is not None
    return lags, stacked


def linear_stack(ncfs: np.ndarray) -> np.ndarray:
    """Mean over the window axis of a ``(windows, channels, lags)`` array."""
    ncfs = np.asarray(ncfs, dtype=np.float64)
    if ncfs.ndim != 3:
        raise ConfigError("expected a 3-D (windows, channels, lags) array")
    if ncfs.shape[0] == 0:
        raise ConfigError("cannot stack zero windows")
    return ncfs.mean(axis=0)


def phase_weighted_stack(ncfs: np.ndarray, power: float = 2.0) -> np.ndarray:
    """Phase-weighted stack (Schimmel & Paulssen 1997).

    The linear stack is weighted by the modulus of the mean unit phasor
    of the windows' analytic signals, raised to ``power``: where window
    phases agree the weight → 1, where they are random it → 0.
    """
    ncfs = np.asarray(ncfs, dtype=np.float64)
    if ncfs.ndim != 3:
        raise ConfigError("expected a 3-D (windows, channels, lags) array")
    if ncfs.shape[0] == 0:
        raise ConfigError("cannot stack zero windows")
    if power < 0:
        raise ConfigError("power must be >= 0")
    analytic = hilbert(ncfs, axis=-1)
    magnitude = np.abs(analytic)
    phasors = np.where(magnitude > 1e-300, analytic / np.where(magnitude > 1e-300, magnitude, 1.0), 0.0)
    coherence = np.abs(phasors.mean(axis=0))
    return ncfs.mean(axis=0) * coherence**power


class NCFStackSink(SinkOp):
    """Windowed NCF stacking as a streaming sink.

    Holds a rolling buffer of at most ``window − 1`` lookback samples
    plus the incoming chunk; whenever a full window is available it is
    correlated (:func:`noise_correlation_functions`) and folded into the
    running stack, so the ``(windows, channels, lags)`` cube of
    :func:`window_ncfs` — the paper's §IV 3-D striped intermediate —
    never materialises.  ``method="linear"`` accumulates the NCF sum;
    ``method="pws"`` additionally accumulates the unit phasors of the
    analytic signal, reproducing :func:`phase_weighted_stack`.
    """

    name = "ncf_stack"

    def __init__(
        self,
        config: InterferometryConfig,
        window_seconds: float,
        overlap: float = 0.0,
        max_lag_seconds: float | None = None,
        method: str = "linear",
        power: float = 2.0,
    ):
        if window_seconds <= 0:
            raise ConfigError("window_seconds must be positive")
        if not (0.0 <= overlap < 1.0):
            raise ConfigError("overlap must be in [0, 1)")
        if method not in ("linear", "pws"):
            raise ConfigError(f"unknown stack method {method!r}")
        if power < 0:
            raise ConfigError("power must be >= 0")
        self.config = config
        self.win = int(round(window_seconds * config.fs))
        if self.win < 8:
            raise ConfigError(f"window of {self.win} samples is too short")
        self.hop = max(1, int(round(self.win * (1.0 - overlap))))
        self.max_lag_seconds = max_lag_seconds
        self.method = method
        self.power = float(power)

    def init(self, n_channels: int, total_in: int, fs_in: float) -> dict:
        if self.win > total_in:
            raise ConfigError(
                f"window ({self.win} samples) exceeds the record ({total_in})"
            )
        return {
            "buf": np.zeros((n_channels, 0)),
            "buf_start": 0,
            "next_start": 0,
            "lags": None,
            "sum": None,
            "phasor_sum": None,
            "count": 0,
        }

    def consume(self, state: dict, chunk: np.ndarray, ctx: OpContext) -> None:
        if ctx.start != state["buf_start"] + state["buf"].shape[-1]:
            raise ConfigError(
                f"stack sink fed out of order at sample {ctx.start}"
            )
        buf = np.concatenate([state["buf"], chunk], axis=-1)
        buf_start = state["buf_start"]
        while state["next_start"] + self.win <= buf_start + buf.shape[-1]:
            lo = state["next_start"] - buf_start
            window = buf[:, lo : lo + self.win]
            lags, ncf = noise_correlation_functions(
                window, self.config, max_lag_seconds=self.max_lag_seconds
            )
            if state["sum"] is None:
                state["lags"] = lags
                state["sum"] = np.zeros_like(ncf)
                if self.method == "pws":
                    state["phasor_sum"] = np.zeros(ncf.shape, dtype=complex)
            state["sum"] += ncf
            if self.method == "pws":
                analytic = hilbert(ncf, axis=-1)
                magnitude = np.abs(analytic)
                state["phasor_sum"] += np.where(
                    magnitude > 1e-300,
                    analytic / np.where(magnitude > 1e-300, magnitude, 1.0),
                    0.0,
                )
            state["count"] += 1
            state["next_start"] += self.hop
        # Drop samples no future window can reach.
        keep_from = max(buf_start, state["next_start"])
        state["buf"] = buf[:, keep_from - buf_start :]
        state["buf_start"] = keep_from

    def finalize(self, state: dict) -> tuple[np.ndarray, np.ndarray]:
        if state["count"] == 0:
            raise ConfigError("cannot stack zero windows")
        stacked = state["sum"] / state["count"]
        if self.method == "pws":
            coherence = np.abs(state["phasor_sum"] / state["count"])
            stacked = stacked * coherence**self.power
        return state["lags"], stacked

    def resident_bytes(self, state: dict) -> int:
        total = state["buf"].nbytes
        for key in ("sum", "phasor_sum"):
            if state[key] is not None:
                total += state[key].nbytes
        return total


def streamed_stack(
    source: object,
    config: InterferometryConfig,
    window_seconds: float,
    overlap: float = 0.0,
    max_lag_seconds: float | None = None,
    method: str = "linear",
    power: float = 2.0,
    chunk_samples: int | None = None,
    timer: object = None,
    iostats: object = None,
    policy: object = None,
):
    """Windowed NCF stacking over a chunk source.

    Returns a :class:`~repro.core.pipeline.PipelineResult` whose output
    is ``(lags, stacked)``, matching :func:`window_ncfs` followed by
    :func:`linear_stack` / :func:`phase_weighted_stack` on the
    materialised array — without ever holding the raw record or the 3-D
    window cube.  ``policy`` is an optional
    :class:`~repro.faults.policy.FailurePolicy` governing per-chunk retry
    and gap masking.
    """
    from repro.core.pipeline import StreamPipeline

    sink = NCFStackSink(
        config,
        window_seconds,
        overlap=overlap,
        max_lag_seconds=max_lag_seconds,
        method=method,
        power=power,
    )
    return StreamPipeline([sink]).run(
        source,
        chunk_samples=chunk_samples,
        timer=timer,
        iostats=iostats,
        fs=config.fs,
        policy=policy,
    )


def stack_snr(stacked: np.ndarray, lags: np.ndarray, signal_window: tuple[float, float]) -> np.ndarray:
    """Per-channel SNR: peak |amplitude| inside ``signal_window`` (seconds)
    over RMS outside it."""
    stacked = np.atleast_2d(np.asarray(stacked, dtype=np.float64))
    lo, hi = signal_window
    inside = (lags >= lo) & (lags <= hi)
    if not inside.any() or inside.all():
        raise ConfigError("signal window must cover part (not all) of the lags")
    signal = np.abs(stacked[:, inside]).max(axis=1)
    noise = np.sqrt(np.mean(stacked[:, ~inside] ** 2, axis=1))
    return signal / np.where(noise > 0, noise, 1.0)
