"""Checks fixture: operator-contract violations.

Expected: OPC001 (TotalReader), OPC002 + OPC003 (PrepassLiar), OPC003
(HooksNoFlag), OPC005 (SinkishOp), two OPC006 (BadGeometry), and on
OperatorishSink two OPC004 (apply + geometry) plus OPC007.
"""


class Operator:
    pass


class SinkOp:
    pass


class TotalReader(Operator):
    def apply(self, data, ctx):
        return data[: ctx.total]


class PrepassLiar(Operator):
    needs_prepass = True

    def apply(self, data, ctx):
        return data


class HooksNoFlag(Operator):
    def prepass_init(self):
        pass

    def prepass_update(self, chunk):
        pass

    def prepass_finalize(self):
        pass

    def apply(self, data, ctx):
        return data


class SinkishOp(Operator):
    def consume(self, chunk):
        pass

    def apply(self, data, ctx):
        return data


class BadGeometry(Operator):
    halo = (-1, 2)
    decimate = 0

    def apply(self, data, ctx):
        return data


class OperatorishSink(SinkOp):
    halo = (1, 1)

    def apply(self, data, ctx):
        return data
