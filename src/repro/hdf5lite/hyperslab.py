"""Hyperslab selection algebra.

A *hyperslab* is a regular N-dimensional selection described per dimension
by ``(start, count, stride)`` — the same model as HDF5's hyperslab and the
paper's Logical Array View (LAV).  This module converts numpy-style basic
indexing into hyperslabs, computes result shapes, intersects hyperslabs
(needed by virtual datasets / VCA), and linearises selections into
contiguous byte runs for minimal-I/O reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import SelectionError


@dataclass(frozen=True)
class Hyperslab:
    """A regular selection: per-dimension ``(start, count, stride)``.

    ``stride`` is in elements of the underlying dimension; ``count`` is the
    number of selected elements along that dimension.
    """

    start: tuple[int, ...]
    count: tuple[int, ...]
    stride: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.start) == len(self.count) == len(self.stride)):
            raise SelectionError("start/count/stride rank mismatch")
        for s, c, st in zip(self.start, self.count, self.stride):
            if s < 0 or c < 0 or st < 1:
                raise SelectionError(
                    f"invalid hyperslab component start={s} count={c} stride={st}"
                )

    @property
    def ndim(self) -> int:
        return len(self.start)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.count

    @property
    def size(self) -> int:
        size = 1
        for c in self.count:
            size *= c
        return size

    def end(self) -> tuple[int, ...]:
        """Exclusive upper bound touched along each dimension."""
        return tuple(
            s + (c - 1) * st + 1 if c > 0 else s
            for s, c, st in zip(self.start, self.count, self.stride)
        )

    def within(self, shape: Sequence[int]) -> bool:
        """True if the selection fits inside an array of ``shape``."""
        if len(shape) != self.ndim:
            return False
        return all(e <= dim for e, dim in zip(self.end(), shape))

    def indices(self, dim: int) -> range:
        """The selected indices along dimension ``dim``."""
        s, c, st = self.start[dim], self.count[dim], self.stride[dim]
        return range(s, s + c * st, st)

    @classmethod
    def full(cls, shape: Sequence[int]) -> "Hyperslab":
        """The hyperslab selecting an entire array of ``shape``."""
        return cls(
            start=tuple(0 for _ in shape),
            count=tuple(int(d) for d in shape),
            stride=tuple(1 for _ in shape),
        )


def normalize_selection(
    selection: object, shape: Sequence[int]
) -> tuple[Hyperslab, tuple[int, ...]]:
    """Convert numpy-style basic indexing into a :class:`Hyperslab`.

    Supports integers, slices (with step), ``Ellipsis``, and tuples thereof.
    Returns ``(hyperslab, squeeze_axes)`` where ``squeeze_axes`` are the
    dimensions indexed by a scalar (removed from the result shape, matching
    numpy semantics).

    >>> hs, squeeze = normalize_selection((3, slice(0, 10, 2)), (10, 20))
    >>> hs.start, hs.count, hs.stride
    ((3, 0), (1, 5), (1, 2))
    >>> squeeze
    (0,)
    """
    ndim = len(shape)
    if not isinstance(selection, tuple):
        selection = (selection,)

    # Expand a single Ellipsis into full slices.
    n_ellipsis = sum(1 for s in selection if s is Ellipsis)
    if n_ellipsis > 1:
        raise SelectionError("at most one Ellipsis allowed in a selection")
    if n_ellipsis == 1:
        idx = selection.index(Ellipsis)
        fill = ndim - (len(selection) - 1)
        if fill < 0:
            raise SelectionError(f"too many indices for shape {tuple(shape)}")
        selection = selection[:idx] + (slice(None),) * fill + selection[idx + 1 :]

    if len(selection) > ndim:
        raise SelectionError(
            f"too many indices ({len(selection)}) for shape {tuple(shape)}"
        )
    selection = selection + (slice(None),) * (ndim - len(selection))

    start: list[int] = []
    count: list[int] = []
    stride: list[int] = []
    squeeze: list[int] = []
    for dim, (sel, size) in enumerate(zip(selection, shape)):
        if isinstance(sel, bool):
            raise SelectionError("boolean indexing is unsupported")
        elif isinstance(sel, int) or (
            not isinstance(sel, slice) and hasattr(sel, "__index__")
        ):
            index = int(sel.__index__()) if hasattr(sel, "__index__") else int(sel)
            if index < 0:
                index += size
            if not (0 <= index < size):
                raise SelectionError(
                    f"index {sel} out of bounds for dimension {dim} of size {size}"
                )
            start.append(index)
            count.append(1)
            stride.append(1)
            squeeze.append(dim)
        elif isinstance(sel, slice):
            s, e, st = sel.indices(size)
            if st <= 0:
                raise SelectionError("negative or zero slice steps are unsupported")
            n = max(0, (e - s + st - 1) // st)
            start.append(s)
            count.append(n)
            stride.append(st)
        else:
            raise SelectionError(
                f"unsupported selection component {sel!r}; only integers, "
                "slices and Ellipsis are supported"
            )

    return Hyperslab(tuple(start), tuple(count), tuple(stride)), tuple(squeeze)


def selection_shape(hs: Hyperslab, squeeze: tuple[int, ...]) -> tuple[int, ...]:
    """Result shape after applying a selection (numpy squeeze semantics)."""
    return tuple(c for dim, c in enumerate(hs.count) if dim not in squeeze)


def contiguous_runs(
    hs: Hyperslab, shape: Sequence[int]
) -> Iterator[tuple[int, int]]:
    """Linearise a hyperslab over a C-ordered array into contiguous runs.

    Yields ``(element_offset, element_count)`` pairs covering the selection
    in row-major order of the *result* array.  Adjacent runs are coalesced,
    so a full-array selection yields a single run.  Each run corresponds to
    one seek + one read against the file — the quantity the paper's I/O
    analysis counts.
    """
    ndim = len(shape)
    if hs.ndim != ndim:
        raise SelectionError("hyperslab rank does not match array rank")
    if not hs.within(shape):
        raise SelectionError(
            f"hyperslab {hs} does not fit within array shape {tuple(shape)}"
        )
    if hs.size == 0:
        return

    # Row-major strides in elements.
    elem_strides = [1] * ndim
    for dim in range(ndim - 2, -1, -1):
        elem_strides[dim] = elem_strides[dim + 1] * shape[dim + 1]

    # The innermost selected run: if the last dim has stride 1, a run of
    # hs.count[-1] elements; otherwise single elements.
    if hs.stride[-1] == 1:
        inner_len = hs.count[-1]
        inner_positions = [hs.start[-1]]
    else:
        inner_len = 1
        inner_positions = list(hs.indices(ndim - 1))

    # Iterate the outer dims in row-major order.
    outer_dims = list(range(ndim - 1))
    pending_offset = -1
    pending_len = 0

    def emit_runs() -> Iterator[tuple[int, int]]:
        nonlocal pending_offset, pending_len
        counters = [0] * len(outer_dims)
        while True:
            base = 0
            for dim, ctr in zip(outer_dims, counters):
                base += (hs.start[dim] + ctr * hs.stride[dim]) * elem_strides[dim]
            for pos in inner_positions:
                offset = base + pos
                if pending_len and offset == pending_offset + pending_len:
                    pending_len += inner_len
                else:
                    if pending_len:
                        yield (pending_offset, pending_len)
                    pending_offset = offset
                    pending_len = inner_len
            # Odometer increment over outer dims (row-major: last spins fastest).
            if not outer_dims:
                break
            dim_idx = len(outer_dims) - 1
            while dim_idx >= 0:
                counters[dim_idx] += 1
                if counters[dim_idx] < hs.count[outer_dims[dim_idx]]:
                    break
                counters[dim_idx] = 0
                dim_idx -= 1
            if dim_idx < 0:
                break
        if pending_len:
            yield (pending_offset, pending_len)

    yield from emit_runs()


def coalesce_runs(
    runs: Sequence[tuple[int, int]] | Iterator[tuple[int, int]],
    max_gap: int = 0,
) -> list[tuple[int, int, list[tuple[int, int]]]]:
    """Merge element runs separated by at most ``max_gap`` elements.

    ``runs`` are ``(element_offset, element_count)`` pairs as produced by
    :func:`contiguous_runs` (file order within each row-major sweep).  Runs
    whose inter-run gap is ``<= max_gap`` are merged into one *span* — a
    single backend request that reads the gap bytes too and discards them;
    this trades a little bandwidth for far fewer IOPS, which is exactly the
    exchange the paper's storage model says wins on a disk file system.

    Returns ``[(span_offset, span_count, pieces), ...]`` where ``pieces``
    are the original runs covered by the span.  Runs that move backwards
    (or overlap a prior span) start a new span, so the result is always a
    valid request sequence regardless of input order.
    """
    if max_gap < 0:
        raise SelectionError(f"max_gap must be >= 0, got {max_gap}")
    spans: list[tuple[int, int, list[tuple[int, int]]]] = []
    cur_off = -1
    cur_len = 0
    cur_pieces: list[tuple[int, int]] = []
    for offset, count in runs:
        if count <= 0:
            continue
        if cur_pieces and cur_off + cur_len <= offset <= cur_off + cur_len + max_gap:
            cur_len = offset + count - cur_off
            cur_pieces.append((offset, count))
        else:
            if cur_pieces:
                spans.append((cur_off, cur_len, cur_pieces))
            cur_off, cur_len, cur_pieces = offset, count, [(offset, count)]
    if cur_pieces:
        spans.append((cur_off, cur_len, cur_pieces))
    return spans


def intersect(a: Hyperslab, b: Hyperslab) -> Hyperslab | None:
    """Intersect two unit-stride hyperslabs; ``None`` if disjoint.

    Virtual-dataset mapping (and hence VCA) only needs unit strides, so
    strided intersection is intentionally not implemented.
    """
    if a.ndim != b.ndim:
        raise SelectionError("cannot intersect hyperslabs of different rank")
    if any(s != 1 for s in a.stride) or any(s != 1 for s in b.stride):
        raise SelectionError("intersect requires unit-stride hyperslabs")
    start: list[int] = []
    count: list[int] = []
    for dim in range(a.ndim):
        lo = max(a.start[dim], b.start[dim])
        hi = min(a.start[dim] + a.count[dim], b.start[dim] + b.count[dim])
        if hi <= lo:
            return None
        start.append(lo)
        count.append(hi - lo)
    return Hyperslab(tuple(start), tuple(count), tuple(1 for _ in start))
