"""Checks fixture: a clean export surface — zero findings expected."""

__all__ = ["widget", "Gadget"]


def widget():
    return 1


class Gadget:
    pass
