"""Decimation-pyramid *builder* and level selection (the serving half).

The storage-side format — attribute names, discovery, validation — lives
in :mod:`repro.hdf5lite.pyramid` (so ``das_inspect`` works without this
package).  This module produces the levels and picks one per request:

* :func:`build_pyramid` streams the archive through the core
  :class:`~repro.core.operators.DecimateOp` once per level and stores the
  results as chunked hdf5lite datasets (codec + CRC sidecar) inside the
  archive file itself.  Each level is computed *from the raw record*
  with the cumulative factor — never by re-decimating the previous level
  — which is what makes the bit-exactness contract checkable: level
  ``k`` equals ``DecimateOp(factor**k)`` applied to the raw record,
  nothing more.
* :func:`select_level` picks the coarsest stored level that still
  delivers at least one sample per requested output pixel, so a
  zoomed-out preview reads O(output pixels) backend bytes.
* NaN gap columns (degraded reads masked by the storage layer) propagate
  through the decimation FIR into NaN preview pixels — the mask arrives
  for free, no side-channel needed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.graph import Query
from repro.core.operators import DecimateOp
from repro.core.optimizer import execute, optimize
from repro.errors import ConfigError, ServeError
from repro.hdf5lite import File
from repro.hdf5lite.pyramid import (
    BASE_DATASET_ATTR,
    BASE_FACTOR_ATTR,
    BASE_SAMPLES_ATTR,
    FACTOR_ATTR,
    FS_ATTR,
    LEVEL_ATTR,
    PYRAMID_GROUP,
    PyramidLevel,
    pyramid_levels,
)
from repro.storage.chunks import as_source, open_stream
from repro.storage.vca import VCA_DATASET
from repro.utils.iostats import IOStats

__all__ = [
    "PyramidConfig",
    "build_pyramid",
    "compute_level",
    "select_level",
    "level_slice",
]


@dataclass(frozen=True)
class PyramidConfig:
    """Build-time knobs.

    ``factor`` is the per-level decimation (level ``k`` holds the record
    at ``1/factor**k`` rate); levels stop at ``max_levels`` or when the
    next level would fall below ``min_samples``.  ``codec`` /
    ``checksum`` are stored per level exactly like any other hdf5lite
    dataset; ``chunk_samples`` is the stored chunk length,
    ``build_chunk`` the streaming chunk during construction (``None`` =
    auto).
    """

    factor: int = 4
    max_levels: int = 8
    min_samples: int = 64
    codec: str | None = "delta-zlib:1"
    checksum: bool = True
    chunk_samples: int = 8192
    build_chunk: int | None = None

    def __post_init__(self) -> None:
        if self.factor < 2:
            raise ConfigError("pyramid factor must be >= 2")
        if self.max_levels < 1:
            raise ConfigError("max_levels must be >= 1")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.chunk_samples < 1:
            raise ConfigError("chunk_samples must be >= 1")


def compute_level(
    source: object,
    factor: int,
    chunk_samples: int | None = None,
    iostats: IOStats | None = None,
) -> np.ndarray:
    """The decimated record: ``DecimateOp(factor)`` streamed over
    ``source`` via the planner.  This *is* the pyramid-level definition —
    the builder stores its output, and the correctness tests compare the
    stored level against a fresh call.
    """
    src = as_source(source)
    plan = optimize(
        Query.scan(None).then(DecimateOp(int(factor))),
        chunk_samples=chunk_samples,
        verify=False,
    )
    (result,) = execute(plan, source=src, iostats=iostats)
    return result.output


def build_pyramid(
    archive: str | os.PathLike,
    config: PyramidConfig | None = None,
    on_error: str = "raise",
    fill_value: float = float("nan"),
    iostats: IOStats | None = None,
) -> list[PyramidLevel]:
    """Build and store a decimation pyramid inside a VCA archive file.

    Streams the archive once per level (raw → ``DecimateOp(factor**k)``)
    and appends the outputs as ``pyramid/level<k>`` chunked datasets with
    the configured codec and CRC sidecars.  Returns the stored levels.

    ``on_error="mask"`` builds through degraded sources: vanished or
    corrupt minutes become NaN spans in the raw stream and hence NaN
    pixels at every level.  Raises :class:`~repro.errors.ServeError` if
    the archive already carries a pyramid (rebuilds need a fresh VCA —
    hdf5lite data regions are append-only).
    """
    config = config if config is not None else PyramidConfig()
    path = os.fspath(archive)
    with File(path, "r") as probe:
        if PYRAMID_GROUP in probe:
            raise ServeError(f"{path}: archive already carries a pyramid")

    levels: list[tuple[int, int, np.ndarray, float]] = []
    with open_stream(
        path, iostats=iostats, on_error=on_error, fill_value=fill_value
    ) as src:
        base_samples = src.n_samples
        base_fs = src.fs
        for k in range(1, config.max_levels + 1):
            factor = config.factor ** k
            if -(-base_samples // factor) < config.min_samples:
                break
            out = compute_level(
                src, factor, chunk_samples=config.build_chunk, iostats=iostats
            )
            levels.append((k, factor, out, base_fs / factor if base_fs else 0.0))

    if not levels:
        raise ServeError(
            f"{path}: record too short for any pyramid level "
            f"(needs >= {config.min_samples * config.factor} samples)"
        )

    with File(path, "r+") as f:
        group = f.create_group(PYRAMID_GROUP)
        group.attrs[BASE_FACTOR_ATTR] = int(config.factor)
        for k, factor, out, fs in levels:
            ds = f.create_dataset(
                f"{PYRAMID_GROUP}/level{k}",
                data=out,
                chunks=(out.shape[0], min(config.chunk_samples, out.shape[1])),
                checksum=config.checksum,
                codec=config.codec,
            )
            ds.attrs[LEVEL_ATTR] = int(k)
            ds.attrs[FACTOR_ATTR] = int(factor)
            ds.attrs[BASE_SAMPLES_ATTR] = int(base_samples)
            ds.attrs[BASE_DATASET_ATTR] = VCA_DATASET
            ds.attrs[FS_ATTR] = float(fs)

    with File(path, "r") as f:
        return pyramid_levels(f)


def select_level(
    levels: list[PyramidLevel], span: int, width: int
) -> PyramidLevel | None:
    """The coarsest level that still yields >= ``width`` samples over a
    ``span``-sample window — i.e. at least one stored sample per output
    pixel.  ``None`` means no stored level is fine enough: read raw.
    """
    if span < 1:
        raise ConfigError("span must be >= 1")
    if width < 1:
        raise ConfigError("width must be >= 1")
    target = span // width
    best: PyramidLevel | None = None
    for lvl in sorted(levels, key=lambda lv: lv.factor):
        if lvl.factor <= target:
            best = lvl
    return best


def level_slice(factor: int, t0: int, t1: int) -> tuple[int, int]:
    """Level-index interval covering raw window ``[t0, t1)``.

    :class:`~repro.core.operators.DecimateOp` output ``j`` is centred on
    raw sample ``j * factor``, so the window owns level samples
    ``[ceil(t0/factor), ceil(t1/factor))`` — the same tiling law the
    streaming executor uses, which keeps pyramid reads and planner reads
    aligned on identical lattices.
    """
    if factor < 1:
        raise ConfigError("factor must be >= 1")
    if not (0 <= t0 < t1):
        raise ConfigError(f"bad window [{t0}, {t1})")
    return (-(-t0 // factor), -(-t1 // factor))
