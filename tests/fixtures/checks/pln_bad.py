"""Seeded findings for the planner-geometry (PLN) analyzer.

Expected: PLN001 x1 (PartialTrioOp), PLN002 x2 (TotalOnlyOp,
TrioWithoutTotalOp), PLN003 x1 (DecimatedCustomGridOp), PLN004 x1
(DoubleHaloOp).
"""


class Operator:  # stand-in root; the analyzer resolves by name
    pass


class PartialTrioOp(Operator):
    """PLN001: out_core without out_full/in_needed — a half-declared
    grid the planner cannot compose."""

    name = "partial-trio"

    def out_total(self, total_in):
        return total_in // 2

    def out_core(self, lo, hi):
        return lo // 2, hi // 2

    def apply(self, data, ctx):
        return data[..., ::2]


class TotalOnlyOp(Operator):
    """PLN002: a custom output length paired with the default affine
    ownership mapping."""

    name = "total-only"

    def out_total(self, total_in):
        return max(0, total_in - 10)

    def apply(self, data, ctx):
        return data[..., :-10]


class TrioWithoutTotalOp(Operator):
    """PLN002 (converse): a custom grid trio but the default length."""

    name = "trio-no-total"

    def out_core(self, lo, hi):
        return lo // 3, hi // 3

    def out_full(self, a, b):
        return a // 3, b // 3

    def in_needed(self, lo, hi):
        return lo * 3, hi * 3

    def apply(self, data, ctx):
        return data[..., ::3]


class DecimatedCustomGridOp(Operator):
    """PLN003: literal decimate != 1 *and* a custom grid — the affine
    default (used for fusion eligibility and auto-chunking) and the
    override disagree about the lattice."""

    name = "decimated-custom"
    decimate = 5

    def out_total(self, total_in):
        return total_in // 5

    def out_core(self, lo, hi):
        return lo // 5, hi // 5

    def out_full(self, a, b):
        return a // 5, b // 5

    def in_needed(self, lo, hi):
        return lo * 5, hi * 5

    def apply(self, data, ctx):
        return data[..., ::5]


class DoubleHaloOp(Operator):
    """PLN004: literal non-zero halo alongside an in_needed override —
    fusion's halo summing would double-count the lookback."""

    name = "double-halo"

    def __init__(self):
        self.halo = (32, 0)

    def out_total(self, total_in):
        return total_in

    def out_core(self, lo, hi):
        return lo, hi

    def out_full(self, a, b):
        return a, b

    def in_needed(self, lo, hi):
        return lo - 32, hi

    def apply(self, data, ctx):
        return data
