"""Virtual dataset source mappings.

A virtual dataset stitches rectangular regions of datasets stored in
*other* files into one logical array.  Each :class:`VirtualSource` maps a
``count``-shaped block starting at ``src_start`` in the source dataset onto
the region starting at ``dst_start`` in the virtual array.

This is the storage mechanism behind the paper's Virtually Concatenated
Array (VCA): a VCA over ``n`` one-minute DAS files is a virtual dataset
with ``n`` sources laid end-to-end along the time axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import FormatError
from repro.hdf5lite.hyperslab import Hyperslab


@dataclass(frozen=True)
class VirtualSource:
    """One rectangular region mapping of a virtual dataset."""

    file: str
    dataset: str
    src_start: tuple[int, ...]
    dst_start: tuple[int, ...]
    count: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.src_start) == len(self.dst_start) == len(self.count)):
            raise FormatError("virtual source rank mismatch")
        if any(c <= 0 for c in self.count):
            raise FormatError("virtual source regions must be non-empty")
        if any(s < 0 for s in self.src_start) or any(d < 0 for d in self.dst_start):
            raise FormatError("virtual source offsets must be non-negative")

    @property
    def ndim(self) -> int:
        return len(self.count)

    @property
    def size(self) -> int:
        """Number of elements in the mapped region."""
        n = 1
        for c in self.count:
            n *= c
        return n

    def nbytes(self, itemsize: int) -> int:
        """Bytes of the mapped region for elements of ``itemsize`` bytes.

        The I/O charge of reading this source whole — used by the parallel
        readers so accounting follows the dataset's actual dtype instead of
        assuming float32.
        """
        return self.size * int(itemsize)

    def dst_slab(self) -> Hyperslab:
        """The destination region as a unit-stride hyperslab."""
        return Hyperslab(
            start=self.dst_start,
            count=self.count,
            stride=tuple(1 for _ in self.count),
        )

    def src_slab_for(self, dst_region: Hyperslab) -> Hyperslab:
        """Translate a destination sub-region into source coordinates.

        ``dst_region`` must lie entirely within this source's destination
        region (callers intersect first).  The mapping is a pure
        translation, so a strided destination lattice maps to the same
        lattice in source coordinates — which is what lets decimation
        pushdown delegate strided reads to the per-minute source files.
        """
        start = []
        for dim in range(self.ndim):
            rel = dst_region.start[dim] - self.dst_start[dim]
            n, st = dst_region.count[dim], dst_region.stride[dim]
            last = rel + (n - 1) * st if n > 0 else rel
            if rel < 0 or last >= self.count[dim]:
                raise FormatError("destination region escapes the source mapping")
            start.append(self.src_start[dim] + rel)
        return Hyperslab(
            start=tuple(start),
            count=dst_region.count,
            stride=dst_region.stride,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "dataset": self.dataset,
            "src_start": list(self.src_start),
            "dst_start": list(self.dst_start),
            "count": list(self.count),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "VirtualSource":
        return cls(
            file=raw["file"],
            dataset=raw["dataset"],
            src_start=tuple(int(v) for v in raw["src_start"]),
            dst_start=tuple(int(v) for v in raw["dst_start"]),
            count=tuple(int(v) for v in raw["count"]),
        )


def validate_sources(
    shape: Sequence[int], sources: Sequence[VirtualSource]
) -> None:
    """Check every source's destination region fits within ``shape``."""
    for src in sources:
        if src.ndim != len(shape):
            raise FormatError(
                f"virtual source rank {src.ndim} != dataset rank {len(shape)}"
            )
        for dim in range(src.ndim):
            if src.dst_start[dim] + src.count[dim] > shape[dim]:
                raise FormatError(
                    f"virtual source {src.file}:{src.dataset} exceeds dataset "
                    f"shape {tuple(shape)} along dimension {dim}"
                )
