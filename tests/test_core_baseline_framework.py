"""Tests for the MATLAB-style baseline, the Fig. 9 model, the Pipeline
helper, and the DASSA facade."""

import numpy as np
import pytest

from repro.core.baseline import Fig9Model, dassa_pipeline, matlab_style_pipeline
from repro.core.framework import DASSA
from repro.core.interferometry import InterferometryConfig, interferometry_block
from repro.core.local_similarity import LocalSimilarityConfig
from repro.core.pipeline import Pipeline
from repro.errors import ConfigError, StorageError
from repro.utils.timer import Timer


@pytest.fixture
def config():
    return InterferometryConfig(fs=100.0, band=(0.5, 10.0), resample_q=4)


class TestPipeline:
    def test_runs_in_order(self):
        p = Pipeline().add("double", lambda x: x * 2).add("inc", lambda x: x + 1)
        assert p.run(10) == 21
        assert p.names == ["double", "inc"]

    def test_stage_timing(self):
        timer = Timer()
        Pipeline().add("a", lambda x: x).run(1, timer=timer)
        assert "a" in timer.phases

    def test_fused_equals_staged(self):
        p = Pipeline().add("sq", lambda x: x**2).add("neg", lambda x: -x)
        assert p.fused()(3) == p.run(3) == -9

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ConfigError):
            Pipeline().add("a", lambda x: x).add("a", lambda x: x)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            Pipeline().run(1)
        with pytest.raises(ConfigError):
            Pipeline().fused()


class TestBaselineCorrectness:
    def test_matlab_style_matches_vectorised_kernel(self, config):
        """Same maths, different execution structure: the baseline and the
        DASSA kernel must agree to numerical precision."""
        data = np.random.default_rng(0).normal(size=(6, 800))
        baseline = matlab_style_pipeline(data, config)
        kernel = interferometry_block(data, config)
        np.testing.assert_allclose(baseline, kernel, atol=1e-9)

    def test_dassa_pipeline_matches_kernel(self, config):
        data = np.random.default_rng(1).normal(size=(8, 600))
        for threads in (1, 3, 8):
            out = dassa_pipeline(data, config, threads=threads)
            np.testing.assert_allclose(
                out, interferometry_block(data, config), atol=1e-9
            )

    def test_baseline_records_stage_times(self, config):
        timer = Timer()
        matlab_style_pipeline(
            np.random.default_rng(2).normal(size=(3, 500)), config, timer=timer
        )
        assert set(timer.phases) == {
            "read",
            "detrend:prepass",
            "detrend",
            "taper",
            "filtfilt",
            "resample",
            "fft",
            "correlate",
        }

    def test_dassa_faster_than_matlab_style(self, config):
        """The real Fig. 9 effect at test scale: the fused vectorised
        pipeline beats the stage-at-a-time interpreted-loop structure."""
        import time

        data = np.random.default_rng(3).normal(size=(48, 2000))
        t0 = time.perf_counter()
        matlab_style_pipeline(data, config)
        t_matlab = time.perf_counter() - t0
        t0 = time.perf_counter()
        dassa_pipeline(data, config, threads=4)
        t_dassa = time.perf_counter() - t0
        assert t_dassa < t_matlab

    def test_invalid_inputs(self, config):
        with pytest.raises(ConfigError):
            matlab_style_pipeline(np.zeros(10), config)
        with pytest.raises(ConfigError):
            dassa_pipeline(np.zeros((4, 100)), config, threads=0)


class TestFig9Model:
    def test_speedup_near_paper_16x(self):
        model = Fig9Model()
        assert 12.0 < model.speedup() < 20.0

    def test_matlab_slower_than_dassa(self):
        model = Fig9Model()
        assert model.matlab_time(100.0) > model.dassa_time(100.0)

    def test_more_threads_widen_gap(self):
        low = Fig9Model(threads=2)
        high = Fig9Model(threads=24)
        assert high.speedup() > low.speedup()

    def test_full_parallel_matlab_closes_gap(self):
        ideal = Fig9Model(parallel_fraction=1.0, interpreter_factor=1.0)
        assert ideal.speedup() < 1.5


class TestDASSAFacade:
    def test_search_merge_analyse_roundtrip(self, das_dir):
        with DASSA(threads=2) as dassa:
            files = dassa.search(das_dir["dir"], start="170620100545", count=4)
            assert len(files) == 4
            vca = dassa.merge(files)
            simi, centers = dassa.local_similarity(
                vca,
                LocalSimilarityConfig(half_window=5, half_lag=2, stride=10),
            )
            assert simi.shape[0] == 14  # 16 channels minus 2 edge channels
            assert len(centers) == simi.shape[1]

    def test_search_and_merge_one_shot(self, das_dir):
        with DASSA() as dassa:
            vca = dassa.search_and_merge(das_dir["dir"], pattern=r"\d{12}")
            from repro.storage.vca import open_vca

            with open_vca(vca) as handle:
                assert handle.shape == (16, 720)

    def test_merge_rca(self, das_dir, tmp_path):
        with DASSA(workdir=str(tmp_path / "w")) as dassa:
            files = dassa.search(das_dir["dir"], start="170620100545", count=2)
            rca = dassa.merge(files, real=True)
            from repro.hdf5lite import File

            with File(rca, "r") as f:
                assert f.dataset("RCA").shape == (16, 240)

    def test_interferometry_via_facade(self, das_dir):
        with DASSA() as dassa:
            vca = dassa.search_and_merge(das_dir["dir"], start="170620100545", count=6)
            config = InterferometryConfig(fs=2.0, band=(0.05, 0.4), resample_q=2)
            out = dassa.interferometry(vca, config)
            assert out.shape == (16,)
            assert out[0] == pytest.approx(1.0)

    def test_noise_correlations_via_facade(self, das_dir):
        with DASSA() as dassa:
            vca = dassa.search_and_merge(das_dir["dir"], start="170620100545", count=6)
            config = InterferometryConfig(fs=2.0, band=(0.05, 0.4), resample_q=2)
            lags, ncfs = dassa.noise_correlations(vca, config, max_lag_seconds=30.0)
            assert ncfs.shape[0] == 16
            assert np.all(np.abs(lags) <= 30.0)

    def test_detect_via_facade(self):
        with DASSA() as dassa:
            simi = np.full((20, 30), 0.3)
            simi[:, 10:13] = 0.9
            centers = np.arange(30) * 50 + 25
            events = dassa.detect(simi, centers, fs=100.0)
            assert len(events) == 1
            assert events[0].kind == "earthquake"

    def test_numpy_array_source(self):
        with DASSA() as dassa:
            data = np.random.default_rng(4).normal(size=(8, 300))
            simi, centers = dassa.local_similarity(
                data, LocalSimilarityConfig(half_window=5, half_lag=1, stride=20)
            )
            assert simi.shape[0] == 6

    def test_empty_search_merge_raises(self, das_dir):
        with DASSA() as dassa:
            with pytest.raises(StorageError):
                dassa.search_and_merge(das_dir["dir"], start="300101000000")

    def test_invalid_threads(self):
        with pytest.raises(ConfigError):
            DASSA(threads=0)
