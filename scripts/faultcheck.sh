#!/usr/bin/env bash
# Retired into the repro.checks exception-taxonomy analyzer (TAX001-003);
# the old allowlist lives on as a waiver in scripts/checks_baseline.json.
cd "$(dirname "$0")/.." && PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m repro.checks --only exception-taxonomy
