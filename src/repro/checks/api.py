"""Public-API analyzer (``API``).

Three checks on the import surface:

``API001`` — an ``__all__`` entry that names nothing the module
    defines or imports (a stale export; ``from m import *`` would
    raise).  Modules with a PEP 562 module-level ``__getattr__`` are
    skipped — their exports are computed (e.g. the lazily imported
    ``repro.DASSA``).
``API002`` — a public surface module without ``__all__``: every package
    ``__init__.py`` under ``src/repro`` and every non-underscore
    top-level module (``repro.errors``) must pin its export list.
    Relaxed scopes (benchmarks/, examples/) are scripts, not libraries,
    and are exempt.
``API003`` — a cross-layer import against the architecture's direction.
    The layer ranks encode the dependency DAG the repo is built on
    (storage sits on hdf5lite, core on everything, rt on core...); a
    module may import strictly *lower* layers only, so ``hdf5lite``
    importing from ``rt`` — or any same-rank sibling coupling — is
    flagged before it becomes an import cycle.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["PublicApiAnalyzer", "LAYER_RANKS"]

#: The architecture's dependency order: a module in layer L may import
#: only layers of strictly lower rank (itself excepted).  Mirrors
#: DESIGN.md §3's module map; update both together when adding a package.
LAYER_RANKS = {
    "_version": 0,
    "errors": 0,
    "utils": 1,
    "daslib": 1,       # standalone DSP library (deliberately dependency-free)
    "hdf5lite": 2,
    "cluster": 2,
    "simmpi": 3,
    "faults": 3,
    "storage": 4,
    "arrayudf": 5,
    "synthetic": 5,
    "core": 6,
    "rt": 7,
    "serve": 8,        # consumer-facing top; nothing may import it back
    "checks": 8,       # tooling on top; nothing may depend on it
}


def _module_scope_names(tree: ast.Module) -> tuple[set[str], bool]:
    """Module-level bindings, and whether a PEP 562 ``__getattr__`` exists."""
    names: set[str] = set()
    has_getattr = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
                elif isinstance(t, (ast.Tuple, ast.List)):
                    names.update(
                        e.id for e in t.elts if isinstance(e, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks / optional imports: one level deep.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add((alias.asname or alias.name).split(".")[0])
    return names, has_getattr


def _declared_all(tree: ast.Module) -> tuple[list[str] | None, int]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            try:
                value = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                return None, node.lineno
            if isinstance(value, (list, tuple)):
                return [str(v) for v in value], node.lineno
    return None, 0


def _imported_repro_packages(tree: ast.Module) -> Iterator[tuple[str, int]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield parts[1], node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import stays within the package
                continue
            module = node.module or ""
            parts = module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                yield parts[1], node.lineno
            else:
                for alias in node.names:
                    yield alias.name, node.lineno


@register
class PublicApiAnalyzer(Analyzer):
    name = "public-api"
    description = "__all__ completeness and cross-layer import direction"
    codes = {
        "API001": "__all__ exports a name the module does not define",
        "API002": "public module missing __all__",
        "API003": "import against the layer direction",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None or not project.in_scope(mod):
                continue
            yield from self._check_all(mod)
            if not mod.relaxed:
                yield from self._check_layers(mod)

    def _check_all(self, mod: SourceModule) -> Iterator[Finding]:
        declared, line = _declared_all(mod.tree)
        names, has_getattr = _module_scope_names(mod.tree)
        if declared is not None and not has_getattr:
            for entry in declared:
                if entry not in names and not mod.is_suppressed(line, "API001"):
                    yield self.finding(
                        "API001", mod, line,
                        f"__all__ exports {entry!r} which the module "
                        f"neither defines nor imports",
                        hint="remove the stale entry or import the name",
                    )
        if declared is None and not mod.relaxed and self._needs_all(mod):
            if not mod.node_suppressed(mod.tree.body[0] if mod.tree.body else mod.tree, "API002"):
                yield self.finding(
                    "API002", mod, 1,
                    "public module has no __all__",
                    hint="pin the export list so the public surface is explicit",
                )

    @staticmethod
    def _needs_all(mod: SourceModule) -> bool:
        parts = mod.rel.split("/")
        if parts[:2] != ["src", "repro"]:
            return False
        if parts[-1] == "__init__.py":
            return True
        # top-level modules (repro/errors.py); underscore-private exempt
        return len(parts) == 3 and not parts[-1].startswith("_")

    def _check_layers(self, mod: SourceModule) -> Iterator[Finding]:
        layer = mod.layer
        if layer is None or layer == "__init__":
            return
        my_rank = LAYER_RANKS.get(layer)
        if my_rank is None:
            return  # unregistered package: add it to LAYER_RANKS
        for target, line in _imported_repro_packages(mod.tree):
            if target == layer:
                continue
            their_rank = LAYER_RANKS.get(target)
            if their_rank is None or their_rank < my_rank:
                continue
            if mod.is_suppressed(line, "API003"):
                continue
            direction = "a higher layer" if their_rank > my_rank else "a same-rank layer"
            yield self.finding(
                "API003", mod, line,
                f"{layer} (rank {my_rank}) imports repro.{target} "
                f"(rank {their_rank}) — {direction}",
                hint="invert the dependency or move the shared piece down "
                     "a layer (see LAYER_RANKS in repro/checks/api.py)",
            )
