"""Key-value attributes attached to groups and datasets.

This is the storage behind the paper's two-level DAS metadata model
(Fig. 4): the file's root group holds global metadata (sampling frequency,
spatial resolution, timestamp, number of channels, ...) and per-channel
objects hold their own KV lists.

Values are restricted to JSON-representable scalars and flat lists so the
metadata footer stays portable; numpy scalar types are coerced on insert.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import FormatError

_SCALARS = (str, int, float, bool, type(None))


def _coerce(value: Any) -> Any:
    """Coerce a value to a JSON-storable form, rejecting the unstorable."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise FormatError("only 1-D arrays may be stored as attributes")
        return [_coerce(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    raise FormatError(
        f"attribute value of type {type(value).__name__} is not storable; "
        "use scalars or flat lists"
    )


class Attributes(MutableMapping):
    """A mutable KV mapping that notifies its owner of modifications."""

    __slots__ = ("_data", "_on_change", "_writable")

    def __init__(
        self,
        data: dict[str, Any] | None = None,
        on_change: Callable[[], None] | None = None,
        writable: bool = True,
    ):
        self._data: dict[str, Any] = dict(data) if data else {}
        self._on_change = on_change
        self._writable = writable

    def _mutate(self) -> None:
        if not self._writable:
            raise FormatError("attributes are read-only (file opened in mode 'r')")
        if self._on_change is not None:
            self._on_change()

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        if not isinstance(key, str):
            raise FormatError("attribute keys must be strings")
        coerced = _coerce(value)
        self._mutate()
        self._data[key] = coerced

    def __delitem__(self, key: str) -> None:
        self._mutate()
        del self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Attributes({self._data!r})"

    def to_dict(self) -> dict[str, Any]:
        return dict(self._data)

    def update_many(self, values: dict[str, Any]) -> None:
        for key, value in values.items():
            self[key] = value
