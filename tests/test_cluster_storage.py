"""Tests for the storage cost model and its discrete-event scheduler."""

import pytest

from repro.cluster.storage import BurstBufferModel, IORequest, StorageModel
from repro.errors import ConfigError


@pytest.fixture
def disk():
    return StorageModel(
        ost_count=4,
        ost_bandwidth=1e9,
        client_bandwidth=1e9,
        open_overhead=1e-3,
        per_request_overhead=1e-4,
    )


class TestSingleStream:
    def test_request_time_open(self, disk):
        assert disk.request_time(0, is_open=True) == pytest.approx(1e-3)

    def test_request_time_read(self, disk):
        assert disk.request_time(10**9) == pytest.approx(1e-4 + 1.0)

    def test_sequential_read_time(self, disk):
        t = disk.sequential_read_time(nbytes=10**9, nrequests=10, nopens=2)
        assert t == pytest.approx(2e-3 + 10e-4 + 1.0)

    def test_negative_rejected(self, disk):
        with pytest.raises(ConfigError):
            disk.request_time(-1)
        with pytest.raises(ConfigError):
            disk.sequential_read_time(1, -1)

    def test_aggregate_properties(self, disk):
        assert disk.aggregate_bandwidth == pytest.approx(4e9)
        assert disk.iops == pytest.approx(4 / 1e-4)

    def test_invalid_model(self):
        with pytest.raises(ConfigError):
            StorageModel(ost_count=0)
        with pytest.raises(ConfigError):
            StorageModel(open_overhead=-1)


class TestScheduler:
    def test_empty_batch(self, disk):
        assert disk.schedule([]) == {}
        assert disk.makespan([]) == 0.0

    def test_single_request(self, disk):
        reqs = [IORequest(rank=0, file_id=0, nbytes=10**6)]
        finish = disk.schedule(reqs)
        assert finish[0] == pytest.approx(1e-4 + 1e-3)

    def test_same_ost_serialises(self, disk):
        # two files 4 apart -> same OST -> served back to back
        reqs = [
            IORequest(rank=0, file_id=0, nbytes=10**6),
            IORequest(rank=1, file_id=4, nbytes=10**6),
        ]
        finish = disk.schedule(reqs)
        single = 1e-4 + 1e-3
        assert finish[0] == pytest.approx(single)
        assert finish[1] == pytest.approx(2 * single)

    def test_different_osts_parallel(self, disk):
        reqs = [
            IORequest(rank=0, file_id=0, nbytes=10**6),
            IORequest(rank=1, file_id=1, nbytes=10**6),
        ]
        finish = disk.schedule(reqs)
        single = 1e-4 + 1e-3
        assert finish[0] == pytest.approx(single)
        assert finish[1] == pytest.approx(single)

    def test_client_serialises_own_requests(self, disk):
        reqs = [
            IORequest(rank=0, file_id=0, nbytes=10**6),
            IORequest(rank=0, file_id=1, nbytes=10**6),
        ]
        finish = disk.schedule(reqs)
        assert finish[0] == pytest.approx(2 * (1e-4 + 1e-3))

    def test_start_time_respected(self, disk):
        reqs = [IORequest(rank=0, file_id=0, nbytes=0, start=5.0)]
        assert disk.schedule(reqs)[0] == pytest.approx(5.0 + 1e-4)

    def test_open_flag_uses_open_overhead(self, disk):
        reqs = [IORequest(rank=0, file_id=0, nbytes=0, is_open=True)]
        assert disk.schedule(reqs)[0] == pytest.approx(1e-3)

    def test_contention_grows_with_clients(self, disk):
        def batch(n):
            return [IORequest(rank=r, file_id=0, nbytes=10**6) for r in range(n)]

        assert disk.makespan(batch(16)) > disk.makespan(batch(4)) > disk.makespan(batch(1))

    def test_makespan_deterministic(self, disk):
        reqs = [
            IORequest(rank=r, file_id=f, nbytes=10**5)
            for r in range(8)
            for f in range(6)
        ]
        assert disk.makespan(list(reqs)) == disk.makespan(list(reversed(reqs)))


class TestBurstBuffer:
    def test_far_higher_iops(self):
        disk = StorageModel()
        bb = BurstBufferModel()
        assert bb.iops > 40 * disk.iops

    def test_cheaper_small_requests(self):
        disk = StorageModel()
        bb = BurstBufferModel()
        # 10k tiny requests: the disk's IOPS bound dominates
        reqs = [
            IORequest(rank=r % 64, file_id=r % 1000, nbytes=4096) for r in range(10000)
        ]
        assert bb.makespan(list(reqs)) < disk.makespan(list(reqs)) / 5
