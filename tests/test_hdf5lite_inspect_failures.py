"""Failure injection and integrity checking for hdf5lite files.

A long-running DAS acquisition produces millions of files; some arrive
damaged.  These tests corrupt files in targeted ways and check that (a)
readers fail loudly with FormatError rather than returning garbage, and
(b) the `verify` tool pinpoints the damage.
"""

import json
import os

import numpy as np
import pytest

from repro.errors import FormatError
from repro.hdf5lite import File, VirtualSource
from repro.hdf5lite.binary import HEADER_SIZE, Header
from repro.hdf5lite.inspect import describe, verify


@pytest.fixture
def good_file(tmp_path):
    path = str(tmp_path / "good.h5")
    with File(path, "w") as f:
        f.attrs["site"] = "test"
        f.create_dataset("a", data=np.arange(24.0).reshape(4, 6))
        f.create_dataset("chunky", data=np.arange(64.0).reshape(8, 8), chunks=(3, 3))
        f.create_group("g").attrs["x"] = 1
    return path


class TestDescribe:
    def test_lists_everything(self, good_file):
        with File(good_file, "r") as f:
            text = describe(f)
        assert "a  dataset (4, 6)" in text
        assert "[contiguous]" in text
        assert "chunks=(3, 3)" in text
        assert "g/" in text

    def test_attrs_flag(self, good_file):
        with File(good_file, "r") as f:
            text = describe(f, attrs=True)
        assert "@ site = 'test'" in text
        assert "@ x = 1" in text


class TestVerifyClean:
    def test_no_problems(self, good_file):
        with File(good_file, "r") as f:
            assert verify(f) == []

    def test_virtual_ok(self, tmp_path, good_file):
        vpath = str(tmp_path / "v.h5")
        with File(vpath, "w") as f:
            f.create_dataset(
                "v",
                shape=(4, 6),
                dtype=np.float64,
                virtual_sources=[
                    VirtualSource(good_file, "/a", (0, 0), (0, 0), (4, 6))
                ],
            )
        with File(vpath, "r") as f:
            assert verify(f) == []


class TestCorruption:
    def test_truncated_data_region(self, good_file):
        size = os.path.getsize(good_file)
        with open(good_file, "r+b") as fh:
            fh.truncate(size - 40)
        # Header still points past the end -> opening fails loudly.
        with pytest.raises(FormatError):
            File(good_file, "r")

    def test_corrupt_magic(self, good_file):
        with open(good_file, "r+b") as fh:
            fh.write(b"NOTHDF5!")
        with pytest.raises(FormatError, match="magic"):
            File(good_file, "r")

    def test_corrupt_metadata_json(self, good_file):
        with File(good_file, "r") as f:
            meta_offset = f._backend.read_header().meta_offset
        with open(good_file, "r+b") as fh:
            fh.seek(meta_offset)
            fh.write(b"{]garbage")
        with pytest.raises(FormatError, match="metadata"):
            File(good_file, "r")

    def test_unsupported_version(self, good_file):
        with File(good_file, "r") as f:
            header = f._backend.read_header()
        with open(good_file, "r+b") as fh:
            fh.write(Header(99, header.meta_offset, header.meta_len).pack())
        # Header.pack writes version as given:
        with pytest.raises(FormatError, match="version"):
            File(good_file, "r")

    def test_dataset_offset_beyond_file_detected(self, good_file):
        """Rewrite a dataset's offset in the footer; verify() flags it."""
        with File(good_file, "r") as f:
            header = f._backend.read_header()
            raw = f._backend.read_at(header.meta_offset, header.meta_len)
        meta = json.loads(raw)
        meta["datasets"]["a"]["offset"] = 10**9
        payload = json.dumps(meta).encode()
        with open(good_file, "r+b") as fh:
            fh.seek(header.meta_offset)
            fh.write(payload)
            fh.truncate(header.meta_offset + len(payload))
            fh.seek(0)
            fh.write(Header(1, header.meta_offset, len(payload)).pack())
        with File(good_file, "r") as f:
            problems = verify(f)
            assert any("exceeds the data region" in p.message for p in problems)
            with pytest.raises(FormatError):
                f.dataset("a").read()

    def test_missing_chunk_detected(self, good_file):
        with File(good_file, "r") as f:
            header = f._backend.read_header()
            raw = f._backend.read_at(header.meta_offset, header.meta_len)
        meta = json.loads(raw)
        del meta["datasets"]["chunky"]["chunk_index"]["0,0"]
        payload = json.dumps(meta).encode()
        with open(good_file, "r+b") as fh:
            fh.seek(header.meta_offset)
            fh.write(payload)
            fh.truncate(header.meta_offset + len(payload))
            fh.seek(0)
            fh.write(Header(1, header.meta_offset, len(payload)).pack())
        with File(good_file, "r") as f:
            problems = verify(f)
            assert any("chunk index" in p.message for p in problems)
            with pytest.raises(FormatError, match="missing chunk"):
                f.dataset("chunky").read()

    def test_missing_virtual_source_detected(self, tmp_path, good_file):
        vpath = str(tmp_path / "v.h5")
        with File(vpath, "w") as f:
            f.create_dataset(
                "v",
                shape=(4, 6),
                dtype=np.float64,
                virtual_sources=[
                    VirtualSource(good_file, "/a", (0, 0), (0, 0), (4, 6))
                ],
            )
        os.remove(good_file)
        with File(vpath, "r") as f:
            problems = verify(f)
            assert any("missing source file" in p.message for p in problems)
            with pytest.raises(FileNotFoundError):
                f.dataset("v").read()

    def test_source_shape_shrunk_detected(self, tmp_path):
        src = str(tmp_path / "src.h5")
        with File(src, "w") as f:
            f.create_dataset("d", data=np.zeros((8, 8)))
        vpath = str(tmp_path / "v.h5")
        with File(vpath, "w") as f:
            f.create_dataset(
                "v",
                shape=(8, 8),
                dtype=np.float64,
                virtual_sources=[VirtualSource(src, "/d", (0, 0), (0, 0), (8, 8))],
            )
        # Rewrite the source smaller than the mapping expects.
        with File(src, "w") as f:
            f.create_dataset("d", data=np.zeros((2, 2)))
        with File(vpath, "r") as f:
            problems = verify(f)
            assert any("exceeds its shape" in p.message for p in problems)

    def test_zero_byte_file(self, tmp_path):
        path = str(tmp_path / "empty.h5")
        open(path, "wb").close()
        with pytest.raises(FormatError):
            File(path, "r")
