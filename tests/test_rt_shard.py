"""Sharded RT monitoring: heartbeat state machine, idempotent catalog
aggregation, dead-rank fabric hooks, and the chaos-matrix invariant —
for every fault kind applied to a shard at a seeded point, the
recovered merged catalog equals the fault-free reference."""

import os

import pytest

from repro.core.detection import DetectedEvent
from repro.core.local_similarity import LocalSimilarityConfig
from repro.errors import (
    ConfigError,
    InjectedFaultError,
    MPIError,
    StaleReadError,
)
from repro.faults.chaos import ChaosAction, ChaosSchedule
from repro.faults.policy import FailurePolicy
from repro.rt import (
    CatalogAggregator,
    DetectorConfig,
    EventPolicy,
    HeartbeatConfig,
    HeartbeatMonitor,
    RTService,
    SeamEvent,
    ServiceConfig,
    ShardOptions,
    ShardSpec,
    SupervisorConfig,
    catalog_signature,
    run_sharded,
)
from repro.simmpi.fabric import Fabric, Message
from repro.synthetic.generator import drip_feed_dataset, fig1b_scene

FS = 50.0
CHANNELS = 48
MINUTES = 4
SPM = 600

SIM = LocalSimilarityConfig(
    half_window=25, channel_offset=1, half_lag=5, stride=25
)
DETECTOR = DetectorConfig(band=(0.5, 12.0), similarity=SIM)
POLICY = EventPolicy(threshold=0.4, min_fraction=0.25)
# queue_capacity=1 forces one file per tick, so checkpoint_every=1
# yields one checkpoint generation per file — the multi-generation
# history the torn-checkpoint fault needs.
SHARD_CONFIG = ServiceConfig(
    poll_interval=0.0,
    settle_seconds=0.0,
    stable_polls=1,
    checkpoint_every=1,
    max_retries=2,
    queue_capacity=1,
    update_catalog=False,
)
HB = HeartbeatConfig(
    interval=0.01, suspect_after=0.1, dead_after=0.3, restart_grace=10.0
)
SUPERVISOR = SupervisorConfig(
    heartbeat=HB, max_restarts=3, poll_sleep=0.002, wall_timeout=60.0
)
OPTIONS = ShardOptions(
    detector=DETECTOR,
    event_policy=POLICY,
    service_config=SHARD_CONFIG,
    restart_policy=FailurePolicy(retries=6, backoff=0.005),
    idle_sleep=0.001,
)


def _event(j_start=0, j_end=3, lo=1, hi=5):
    return SeamEvent(
        DetectedEvent(
            label=1,
            kind="vehicle",
            channel_lo=lo,
            channel_hi=hi,
            t_start=0.5,
            t_end=1.5,
            peak_similarity=0.9,
            n_cells=10,
            speed_channels_per_s=2.0,
        ),
        j_start,
        j_end,
    )


class TestHeartbeatMonitor:
    def test_alive_suspect_dead_progression(self):
        monitor = HeartbeatMonitor(HB, [0], now=0.0)
        monitor.beat(0, incarnation=0, now=0.0)
        assert monitor.poll(0.05) == []
        assert monitor.state(0) == "alive"
        assert monitor.poll(0.15) == []
        assert monitor.state(0) == "suspect"
        assert monitor.poll(0.35) == [0]
        assert monitor.state(0) == "dead"
        # Reported exactly once.
        assert monitor.poll(0.5) == []

    def test_beat_revives_suspect_but_not_dead(self):
        monitor = HeartbeatMonitor(HB, [0], now=0.0)
        monitor.poll(0.2)
        assert monitor.state(0) == "suspect"
        monitor.beat(0, incarnation=-1, now=0.21)
        assert monitor.state(0) == "alive"
        monitor.poll(1.0)
        assert monitor.state(0) == "dead"
        # Zombie fencing: a same-incarnation beat after death is the old
        # process talking; it must not cancel the replacement.
        monitor.beat(0, incarnation=-1, now=1.01)
        assert monitor.state(0) == "dead"
        # The new incarnation revives.
        monitor.beat(0, incarnation=0, now=1.02)
        assert monitor.state(0) == "alive"

    def test_restart_grace_expires_back_to_dead(self):
        monitor = HeartbeatMonitor(HB, [0, 1], now=0.0)
        monitor.poll(1.0)
        monitor.mark_restarting(0, now=1.0)
        assert monitor.poll(1.5) == []  # still within grace (and shard 1
        assert monitor.state(1) == "dead"  # already reported at 1.0)
        assert monitor.poll(1.0 + HB.restart_grace + 0.1) == [0]

    def test_stopped_shards_are_exempt(self):
        monitor = HeartbeatMonitor(HB, [0], now=0.0)
        monitor.mark_stopped(0)
        assert monitor.poll(100.0) == []
        assert monitor.state(0) == "stopped"

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            HeartbeatConfig(interval=0.5, suspect_after=0.2, dead_after=0.6)
        with pytest.raises(ConfigError):
            HeartbeatMonitor(HB, [])


class TestCatalogAggregator:
    def test_idempotent_apply_and_rebase(self):
        agg = CatalogAggregator({0: 0, 1: CHANNELS}, now=0.0)
        event = _event()
        assert agg.apply(1, [("rec", event)], now=1.0) == 1
        # The same (shard, record, span) row replayed is a duplicate.
        assert agg.apply(1, [("rec", event)], now=2.0) == 0
        assert agg.duplicates == 1
        # Same span from another shard is a distinct catalog row.
        assert agg.apply(0, [("rec", event)], now=2.0) == 1
        rows = agg.read()
        assert len(rows) == 2
        by_shard = {shard: ev for shard, _, ev in rows}
        assert by_shard[0].event.channel_lo == 1
        assert by_shard[1].event.channel_lo == 1 + CHANNELS
        assert by_shard[1].event.channel_hi == 5 + CHANNELS

    def test_bounded_staleness_read(self):
        agg = CatalogAggregator({0: 0, 1: 0}, now=0.0)
        agg.apply(0, [("rec", _event())], now=10.0)
        # Shard 1 has applied nothing since t=0: stale at bound 5.
        with pytest.raises(StaleReadError) as info:
            agg.read(now=10.0, max_staleness_s=5.0)
        assert info.value.stale_shards == {1: 10.0}
        assert info.value.bound_s == 5.0
        # Exempting the stale shard (it is dead) lets the read through.
        rows = agg.read(now=10.0, max_staleness_s=5.0, exempt={1})
        assert len(rows) == 1
        # And once shard 1 reports, the bound is satisfied.
        agg.apply(1, [], now=9.0)
        assert len(agg.read(now=10.0, max_staleness_s=5.0)) == 1

    def test_signature_ignores_labels(self):
        a = _event()
        b = SeamEvent(
            DetectedEvent(
                label=99,  # only the label differs
                kind=a.event.kind,
                channel_lo=a.event.channel_lo,
                channel_hi=a.event.channel_hi,
                t_start=a.event.t_start,
                t_end=a.event.t_end,
                peak_similarity=a.event.peak_similarity,
                n_cells=a.event.n_cells,
                speed_channels_per_s=a.event.speed_channels_per_s,
            ),
            a.j_start,
            a.j_end,
        )
        assert catalog_signature([(0, "r", a)]) == catalog_signature(
            [(0, "r", b)]
        )


class TestFabricDeadRanks:
    def test_posts_to_failed_rank_are_dropped(self):
        fabric = Fabric(2)
        fabric.fail_rank(1)
        fabric.post(1, Message(source=0, tag=7, payload="x", nbytes=1,
                               send_time=0.0))
        assert fabric.pending(1) == 0
        with pytest.raises(MPIError, match="failed"):
            fabric.match_nowait(1, 0, 7)

    def test_restore_clears_mailbox_and_reenables(self):
        fabric = Fabric(2)
        fabric.post(1, Message(source=0, tag=7, payload="stale", nbytes=1,
                               send_time=0.0))
        fabric.fail_rank(1)
        fabric.restore_rank(1)
        assert not fabric.is_failed(1)
        assert fabric.match_nowait(1, 0, 7) is None  # purged, not replayed
        fabric.post(1, Message(source=0, tag=7, payload="fresh", nbytes=1,
                               send_time=0.0))
        assert fabric.match_nowait(1, 0, 7).payload == "fresh"


class TestChaosSchedule:
    def test_seeded_schedules_are_reproducible(self):
        a = ChaosSchedule.generate(seed=5, n_shards=4, files_per_shard=6)
        b = ChaosSchedule.generate(seed=5, n_shards=4, files_per_shard=6)
        assert a.actions == b.actions
        assert all(1 <= act.at_file < 6 for act in a.actions)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChaosAction("no-such-kind", shard=0, at_file=1)
        with pytest.raises(ConfigError):
            ChaosAction("hang", shard=0, at_file=0)
        with pytest.raises(ConfigError):
            ChaosSchedule.generate(seed=0, n_shards=2, files_per_shard=1)


# ---------------------------------------------------------------------------
# integration: the chaos invariant
# ---------------------------------------------------------------------------

def _make_spools(root, n_shards):
    """Pre-land identical minute files in per-shard spool + ref dirs."""
    specs, refs = [], []
    for shard in range(n_shards):
        scene = fig1b_scene(
            n_channels=CHANNELS, fs=FS, minutes=MINUTES,
            samples_per_minute=SPM, seed=7 + shard,
        )
        spool = root / f"spool-{shard}"
        ref = root / f"ref-{shard}"
        state = root / "state" / f"shard-{shard}"
        spool.mkdir(parents=True)
        ref.mkdir(parents=True)
        state.mkdir(parents=True)
        for directory in (spool, ref):
            list(drip_feed_dataset(
                directory, MINUTES, scene=scene, samples_per_minute=SPM
            ))
        specs.append(ShardSpec(
            shard_id=shard,
            spool=str(spool),
            state_dir=str(state),
            channel_base=shard * CHANNELS,
            expected_files=MINUTES,
        ))
        refs.append(str(ref))
    return specs, refs


def _reference_signature(specs, refs):
    """The fault-free batch catalog: one plain RTService per spool."""
    rows = []
    for spec, ref in zip(specs, refs):
        service = RTService(
            ref, detector=DETECTOR, policy=POLICY, config=SHARD_CONFIG
        )
        service.drain()
        service.flush()
        for record, event in service.sink.load_records():
            rows.append(
                (spec.shard_id, record, event.rebased(spec.channel_base))
            )
    return catalog_signature(rows)


@pytest.fixture(scope="module")
def sharded_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("sharded")
    specs, refs = _make_spools(root, n_shards=2)
    expected = _reference_signature(specs, refs)
    assert expected, "reference catalog must not be empty"
    return root, specs, expected


def _fresh_state(specs, tag):
    """Chaos runs mutate spools/state; give each case its own state dirs
    and verify the spools were restored by the previous case."""
    fresh = []
    for spec in specs:
        assert os.path.isdir(spec.spool), "spool must be restored"
        state = os.path.join(
            os.path.dirname(spec.state_dir), f"{tag}-{spec.shard_id}"
        )
        os.makedirs(state, exist_ok=True)
        fresh.append(ShardSpec(
            shard_id=spec.shard_id,
            spool=spec.spool,
            state_dir=state,
            channel_base=spec.channel_base,
            expected_files=spec.expected_files,
        ))
    return fresh


class TestShardedRuns:
    def test_fault_free_run_matches_reference(self, sharded_setup):
        _, specs, expected = sharded_setup
        result = run_sharded(
            _fresh_state(specs, "clean"),
            options=OPTIONS,
            supervisor=SUPERVISOR,
        )
        assert result["signature"] == expected
        assert result["duplicates"] == 0
        assert result["restarts"] == {0: 0, 1: 0}

    @pytest.mark.parametrize(
        "kind", ["kill-at-file", "hang", "torn-checkpoint", "spool-vanish"]
    )
    def test_chaos_invariant_single_shard_fault(self, sharded_setup, kind):
        _, specs, expected = sharded_setup
        # Shard 1's scene finalizes its first events after tick 3, so a
        # fault at file 4 guarantees rows were forwarded before the
        # crash — the replay after restart must then be deduplicated.
        chaos = ChaosSchedule.single(kind, shard=1, at_file=MINUTES,
                                     down_ticks=2)
        result = run_sharded(
            _fresh_state(specs, kind),
            options=OPTIONS,
            supervisor=SUPERVISOR,
            chaos=chaos,
        )
        # The invariant: recovered merged catalog == fault-free batch
        # reference, event for event, no duplicates in the merge.
        assert result["signature"] == expected
        assert result["restarts"][1] >= 1
        assert result["restarts"][0] == 0
        assert result["recovery_s"][1], "recovery time must be measured"
        shard1 = result["shard_results"][1]
        assert shard1["chaos_fired"] == [kind]
        # Idempotent re-ingestion actually happened: the restarted shard
        # replayed its log and the aggregator dropped the replays.
        assert result["duplicates"] > 0
        if kind == "torn-checkpoint":
            assert shard1["checkpoint_fallbacks"], (
                "torn primary checkpoint must be detected and fall back"
            )

    def test_health_file_written(self, sharded_setup, tmp_path):
        import json

        _, specs, expected = sharded_setup
        health_path = str(tmp_path / "health.json")
        result = run_sharded(
            _fresh_state(specs, "health"),
            options=OPTIONS,
            supervisor=SUPERVISOR,
            health_path=health_path,
        )
        assert result["signature"] == expected
        with open(health_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert set(payload["shards"]) == {"0", "1"}
        for shard in payload["shards"].values():
            assert shard["state"] == "stopped"
            assert shard["ingested"] == MINUTES

    def test_cli_watch_shards_and_status(self, tmp_path, capsys):
        import json

        from repro.rt.cli import main as rt_main

        root = tmp_path / "root"
        for shard in range(2):
            scene = fig1b_scene(
                n_channels=CHANNELS, fs=FS, minutes=2,
                samples_per_minute=SPM, seed=7 + shard,
            )
            spool = root / f"shard-{shard}"
            spool.mkdir(parents=True)
            list(drip_feed_dataset(spool, 2, scene=scene,
                                   samples_per_minute=SPM))
        code = rt_main([
            "watch", str(root), "--shards", "2",
            "--channel-stride", str(CHANNELS),
            "--poll", "0", "--settle", "0", "--stable-polls", "1",
            "--threshold", "0.4", "--min-fraction", "0.25",
            "--half-window", "25", "--half-lag", "5", "--stride", "25",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 2
        assert summary["per_shard"]["0"]["ingested"] == 2
        assert summary["per_shard"]["1"]["ingested"] == 2
        assert summary["restarts"] == {"0": 0, "1": 0}  # json keys

        code = rt_main(["status", str(root)])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report["shards"]) == {"0", "1"}
        assert all(s["state"] == "stopped"
                   for s in report["shards"].values())

    def test_shard_chaos_kill_raises_injected_fault(self, tmp_path):
        # The on_file hook fires the action exactly once.
        from repro.rt.shard import ShardChaos

        spec = ShardSpec(shard_id=0, spool=str(tmp_path),
                         state_dir=str(tmp_path))
        chaos = ShardChaos(
            spec, [ChaosAction("kill-at-file", shard=0, at_file=2)]
        )
        chaos.on_file("a")
        with pytest.raises(InjectedFaultError, match="kill-at-file"):
            chaos.on_file("b")
        chaos.on_file("c")  # fired once, never again
        assert [a.kind for a in chaos.fired] == ["kill-at-file"]
