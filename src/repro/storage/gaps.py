"""Gap accounting for degraded reads.

When a reader masks an unreadable source instead of failing (``open_vca(...,
on_error="mask")``, the parallel readers' retry-then-mask path, the streamed
pipelines' ``continue`` policy), the lost region must be *reported*, not
silently filled.  A :class:`GapMap` is that report: a set of
:class:`GapSpan` records in absolute destination sample coordinates (the
VCA's time axis), carrying which source was lost, why, and after how many
attempts.

Downstream consumers use it two ways: :meth:`GapMap.time_mask` gives a
boolean per-sample mask for excluding masked columns from comparisons or
detections, and :meth:`GapMap.widened` pads each span by an operator's
input halo to get the *affected cone* — the output columns a local
operator could have contaminated with fill values.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class GapSpan:
    """One masked span: samples ``[t0, t1)`` of ``source`` are fill values."""

    source: str
    t0: int
    t1: int
    reason: str
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ConfigError(f"gap span [{self.t0}, {self.t1}) is inverted")

    @property
    def samples(self) -> int:
        return self.t1 - self.t0

    def overlaps(self, t0: int, t1: int) -> bool:
        return self.t0 < t1 and t0 < self.t1


class GapMap:
    """An ordered collection of masked spans, mergeable and serialisable."""

    def __init__(self, spans: Iterable[GapSpan] = ()):
        self.spans: list[GapSpan] = []
        for span in spans:
            self.add(span)

    # -- building ----------------------------------------------------------
    def add(self, span: GapSpan) -> None:
        """Record a span; overlapping/adjacent spans of the same source and
        reason coalesce (chunked reads report the same lost file once per
        chunk — the map keeps one record).

        Coalescing is transitive: a bridging span that connects two held
        spans collapses all three into one record, so the invariant "no
        two spans of the same (source, reason) overlap or touch" holds
        after every add.
        """
        merged = span
        pool = self.spans
        while True:
            rest: list[GapSpan] = []
            changed = False
            for held in pool:
                if (
                    held.source == merged.source
                    and held.reason == merged.reason
                    and held.t0 <= merged.t1
                    and merged.t0 <= held.t1
                ):
                    merged = GapSpan(
                        source=merged.source,
                        t0=min(held.t0, merged.t0),
                        t1=max(held.t1, merged.t1),
                        reason=merged.reason,
                        attempts=max(held.attempts, merged.attempts),
                    )
                    changed = True
                else:
                    rest.append(held)
            pool = rest
            if not changed:
                break
        pool.append(merged)
        self.spans[:] = pool

    def record(
        self, source: str, t0: int, t1: int, reason: str, attempts: int = 1
    ) -> None:
        self.add(GapSpan(source=source, t0=int(t0), t1=int(t1), reason=reason, attempts=attempts))

    def merge(self, other: "GapMap") -> None:
        for span in other.spans:
            self.add(span)

    def clear(self) -> None:
        self.spans.clear()

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def __bool__(self) -> bool:
        return bool(self.spans)

    def __iter__(self) -> Iterator[GapSpan]:
        return iter(sorted(self.spans, key=lambda s: (s.t0, s.t1, s.source)))

    @property
    def sources(self) -> set[str]:
        return {span.source for span in self.spans}

    @property
    def total_samples(self) -> int:
        """Masked samples counted once even where spans overlap."""
        merged: list[list[int]] = []
        for span in self:
            if merged and span.t0 <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], span.t1)
            else:
                merged.append([span.t0, span.t1])
        return sum(hi - lo for lo, hi in merged)

    def time_mask(self, n_samples: int, lo: int = 0) -> np.ndarray:
        """Boolean mask over samples ``[lo, lo + n_samples)``: True where a
        gap span covers the sample."""
        mask = np.zeros(int(n_samples), dtype=bool)
        for span in self.spans:
            a = max(span.t0 - lo, 0)
            b = min(span.t1 - lo, n_samples)
            if a < b:
                mask[a:b] = True
        return mask

    def widened(self, pad: int) -> "GapMap":
        """A new map with every span padded by ``pad`` samples on each side
        (the affected cone of an operator with input halo ``pad``)."""
        if pad < 0:
            raise ConfigError("pad must be >= 0")
        out = GapMap()
        for span in self.spans:
            out.add(
                GapSpan(
                    source=span.source,
                    t0=max(0, span.t0 - pad),
                    t1=span.t1 + pad,
                    reason=span.reason,
                    attempts=span.attempts,
                )
            )
        return out

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> list[dict]:
        return [asdict(span) for span in self]

    @classmethod
    def from_json(cls, payload: Iterable[dict]) -> "GapMap":
        return cls(GapSpan(**entry) for entry in payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GapMap {len(self.spans)} spans / {self.total_samples} samples>"
