"""ApplyMT — the multithreaded Apply of the Hybrid ArrayUDF Execution
Engine (paper Algorithm 1).

Faithful to the paper's OpenMP structure:

* the core cells are linearised and split **statically** among ``t``
  threads (``#pragma omp for schedule(static)``),
* each thread appends its results to a private vector ``Rp`` (no locks
  on the output),
* a barrier, then an exclusive prefix sum over the per-thread sizes
  computes each thread's displacement,
* every thread copies its ``Rp`` into its slice of the shared result
  ``R`` in parallel.

Because all threads share the one input block, node-level data (e.g.
the master channel of a cross-correlation) exists once per node rather
than once per core — the memory fix of Fig. 8.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.arrayudf.apply import cell_grid
from repro.arrayudf.stencil import Stencil
from repro.errors import UDFError
from repro.faults.policy import RETRYABLE, FailurePolicy, TaskFailure, retry_call


def static_schedule(n_items: int, n_threads: int, thread: int) -> tuple[int, int]:
    """OpenMP ``schedule(static)`` chunking of ``range(n_items)``."""
    if n_threads < 1 or not (0 <= thread < n_threads):
        raise UDFError(f"bad schedule: thread={thread} of {n_threads}")
    base, extra = divmod(n_items, n_threads)
    lo = thread * base + min(thread, extra)
    hi = lo + base + (1 if thread < extra else 0)
    return lo, hi


def apply_mt(
    block: np.ndarray,
    udf: Callable[[Stencil], float],
    threads: int = 4,
    core_rows: tuple[int, int] | None = None,
    core_cols: tuple[int, int] | None = None,
    row_stride: int = 1,
    col_stride: int = 1,
    boundary: str = "error",
    dtype: object = np.float64,
    policy: FailurePolicy | None = None,
    failures: list[TaskFailure] | None = None,
) -> np.ndarray:
    """Multithreaded Apply (Algorithm 1).  Same contract as
    :func:`repro.arrayudf.apply.apply`, computed by ``threads`` worker
    threads with per-thread result vectors merged via prefix offsets.

    With a :class:`~repro.faults.policy.FailurePolicy`, execution switches
    from the paper's static schedule to a fault-tolerant task queue:
    cells are grouped into contiguous tasks pulled by workers, a failing
    task is retried (``policy.retries``, exponential ``policy.backoff``),
    tasks running longer than ``policy.timeout`` get a speculative second
    copy on an idle worker (writes land in disjoint output ranges, so
    re-execution is idempotent), and a task that stays broken either
    raises a :class:`~repro.errors.UDFError` (``fail_fast``) or fills its
    cells with ``policy.fill`` and appends a
    :class:`~repro.faults.policy.TaskFailure` to ``failures``
    (``continue``).  Without a policy, behaviour is byte-identical to the
    original static schedule."""
    block = np.asarray(block)
    row_cells, col_cells = cell_grid(
        block.shape, core_rows, core_cols, row_stride, col_stride
    )
    n_rows, n_cols = len(row_cells), len(col_cells)
    n_cells = n_rows * n_cols
    if threads < 1:
        raise UDFError("threads must be >= 1")
    threads = min(threads, max(1, n_cells))
    if policy is not None:
        return _apply_mt_ft(
            block, udf, threads, row_cells, col_cells, boundary, dtype,
            policy, failures,
        )

    # Shared result vector R and per-thread private vectors Rp.
    result = np.empty(n_cells, dtype=dtype)
    partials: list[list] = [[] for _ in range(threads)]
    sizes = [0] * threads
    errors: list[BaseException] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def worker(thread_id: int) -> None:
        try:
            lo, hi = static_schedule(n_cells, threads, thread_id)
            rp = partials[thread_id]
            for flat in range(lo, hi):
                row = row_cells[flat // n_cols]
                col = col_cells[flat % n_cols]
                rp.append(udf(Stencil(block, row, col, boundary=boundary)))
            sizes[thread_id] = len(rp)  # p[h] = Rp.size()
            barrier.wait()  # #pragma omp barrier
            # Exclusive prefix over sizes gives this thread's displacement
            # (Algorithm 1 computes it once in a single section; each
            # thread recomputing the same prefix is equivalent and
            # lock-free).
            displacement = sum(sizes[:thread_id])
            result[displacement : displacement + len(rp)] = rp
        except BaseException as exc:  # noqa: BLE001 - propagate worker errors
            with errors_lock:
                errors.append(exc)
            barrier.abort()

    if threads == 1:
        worker(0)
    else:
        pool = [
            threading.Thread(target=worker, args=(h,), name=f"applymt-{h}")
            for h in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

    if errors:
        first = errors[0]
        if isinstance(first, threading.BrokenBarrierError):
            first = next(
                (e for e in errors if not isinstance(e, threading.BrokenBarrierError)),
                first,
            )
        raise UDFError(f"UDF failed in ApplyMT: {type(first).__name__}: {first}") from first
    return result.reshape(n_rows, n_cols)


class _TaskBoard:
    """Shared scheduler state for the fault-tolerant path.

    One lock covers the whole board: task statuses, straggler bookkeeping,
    and the error list move together (a speculative copy decision reads
    status + started + speculated in one breath), so finer locks would buy
    nothing and invite inversions.  Result writes happen under the same
    lock so "never demote a finished copy" and the published cells can
    never disagree.
    """

    def __init__(self, n_tasks: int):
        self._lock = threading.Lock()
        self.status = ["pending"] * n_tasks  # guarded-by: _lock
        self.started = [0.0] * n_tasks  # guarded-by: _lock
        self.speculated = [False] * n_tasks  # guarded-by: _lock
        self.errors: list[tuple] = []  # guarded-by: _lock
        self.stop = threading.Event()

    def claim(self, timeout: float | None) -> tuple[int | None, bool]:
        """Claim a pending task, or a straggler eligible for a speculative
        copy; ``(None, False)`` when neither exists right now."""
        now = time.monotonic()
        with self._lock:
            for tid, st in enumerate(self.status):
                if st == "pending":
                    self.status[tid] = "running"
                    self.started[tid] = now
                    return tid, False
            if timeout is not None:
                for tid, st in enumerate(self.status):
                    if (
                        st == "running"
                        and not self.speculated[tid]
                        and now - self.started[tid] > timeout
                    ):
                        self.speculated[tid] = True
                        return tid, True
        return None, False

    def any_running(self) -> bool:
        with self._lock:
            return any(st == "running" for st in self.status)

    def finish(self, tid: int, result: np.ndarray, lo: int, hi: int, out: np.ndarray) -> None:
        """A successful copy: publish the output and mark the task done."""
        with self._lock:
            result[lo:hi] = out
            self.status[tid] = "done"

    def fail(
        self,
        tid: int,
        attempts: int,
        exc: BaseException,
        fail_fast: bool,
        result: np.ndarray,
        lo: int,
        hi: int,
        salvaged: np.ndarray | None,
        bad: list[int] | None,
    ) -> None:
        """A failed copy: record the error, or the salvage outcome."""
        with self._lock:
            if self.status[tid] == "done":  # never demote a finished copy
                return
            if fail_fast:
                self.status[tid] = "failed"
                self.errors.append((tid, attempts, exc, []))
                self.stop.set()
            else:
                result[lo:hi] = salvaged
                if bad:
                    self.status[tid] = "failed"
                    self.errors.append((tid, attempts, exc, bad))
                else:  # every cell recovered on the isolation pass
                    self.status[tid] = "done"

    def final_failures(self) -> list[tuple]:
        """Failures not rescued by a later successful copy."""
        with self._lock:
            return [e for e in self.errors if self.status[e[0]] != "done"]


def _apply_mt_ft(
    block: np.ndarray,
    udf: Callable[[Stencil], float],
    threads: int,
    row_cells,
    col_cells,
    boundary: str,
    dtype: object,
    policy: FailurePolicy,
    failures: list[TaskFailure] | None,
) -> np.ndarray:
    """Fault-tolerant ApplyMT: task queue + retry + speculative stragglers.

    Cells are linearised and split into ``~4x threads`` contiguous tasks;
    each task's output range in the shared result is disjoint, so running
    a task twice (retry or speculative straggler copy) writes the same
    values — the MapReduce idempotence argument.
    """
    n_rows, n_cols = len(row_cells), len(col_cells)
    n_cells = n_rows * n_cols
    result = np.empty(n_cells, dtype=dtype)
    n_tasks = min(max(1, n_cells), threads * 4)
    bounds = [static_schedule(n_cells, n_tasks, t) for t in range(n_tasks)]
    board = _TaskBoard(n_tasks)

    def run_task(tid: int) -> np.ndarray:
        lo, hi = bounds[tid]
        out = np.empty(hi - lo, dtype=dtype)
        for i, flat in enumerate(range(lo, hi)):
            row = row_cells[flat // n_cols]
            col = col_cells[flat % n_cols]
            out[i] = udf(Stencil(block, row, col, boundary=boundary))
        return out

    def attempt(tid: int) -> tuple[np.ndarray | None, int, BaseException | None]:
        attempts = 0
        while True:
            attempts += 1
            try:
                return run_task(tid), attempts, None
            except RETRYABLE as exc:
                if attempts > policy.retries:
                    return None, attempts, exc
                if policy.backoff > 0:
                    time.sleep(policy.backoff * (2 ** (attempts - 1)))
            except Exception as exc:  # noqa: BLE001 - a deterministic UDF bug; retrying cannot help
                return None, attempts, exc

    def salvage(tid: int) -> tuple[np.ndarray, list[int]]:
        """Continue-mode cell isolation: re-run a failed task cell by
        cell so only the cells that actually fail become fill values."""
        lo, hi = bounds[tid]
        out = np.empty(hi - lo, dtype=dtype)
        bad: list[int] = []
        for i, flat in enumerate(range(lo, hi)):
            row = row_cells[flat // n_cols]
            col = col_cells[flat % n_cols]
            try:
                out[i] = retry_call(
                    lambda: udf(Stencil(block, row, col, boundary=boundary)),
                    retries=policy.retries,
                    backoff=policy.backoff,
                )
            except Exception:  # noqa: BLE001 - the cell stays lost; fill and report it
                out[i] = policy.fill
                bad.append(flat)
        return out, bad

    def worker() -> None:
        while not board.stop.is_set():
            tid, _speculative = board.claim(policy.timeout)
            if tid is None:
                if not board.any_running():
                    return
                # Wait for in-flight tasks: either they finish, or (with a
                # timeout) they become eligible for a speculative copy.
                time.sleep(
                    0.001 if policy.timeout is None else min(0.01, policy.timeout / 10)
                )
                continue
            out, attempts, exc = attempt(tid)
            lo, hi = bounds[tid]
            if out is not None:
                board.finish(tid, result, lo, hi, out)
                continue
            salvaged, bad = None, None
            if not policy.fail_fast:
                salvaged, bad = salvage(tid)
            board.fail(
                tid, attempts, exc, policy.fail_fast, result, lo, hi, salvaged, bad
            )

    n_workers = min(threads, n_tasks)
    if n_workers == 1:
        worker()
    else:
        pool = [
            threading.Thread(target=worker, name=f"applymt-ft-{h}")
            for h in range(n_workers)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

    final = board.final_failures()
    if final and policy.fail_fast:
        tid, attempts, exc, _bad = final[0]
        lo, hi = bounds[tid]
        raise UDFError(
            f"ApplyMT task {tid} (cells [{lo}, {hi})) failed after "
            f"{attempts} attempts: {type(exc).__name__}: {exc}"
        ) from exc
    if failures is not None:
        for tid, attempts, exc, bad in final:
            lo, hi = bounds[tid]
            failures.append(
                TaskFailure(
                    unit=f"cells[{lo}:{hi}) ({len(bad)} lost)",
                    attempts=attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return result.reshape(n_rows, n_cols)
