"""Automatic system-setting selection (the paper's stated future work).

"How to automatically select system settings, such as the number of
nodes, to run the analysis code is another topic we will explore in
future" (paper §VIII).  With the machine model in hand this is a
search: evaluate engine geometries (node count, engine kind, threads)
against the workload's estimate and pick by objective — fastest,
cheapest (node-hours), or best parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrayudf.engine import (
    BaseEngine,
    ComputeModel,
    EngineReport,
    HybridEngine,
    MPIEngine,
    WorkloadSpec,
)
from repro.cluster.machine import ClusterSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class PlanOption:
    """One evaluated configuration."""

    engine: str
    nodes: int
    ranks_per_node: int
    threads_per_rank: int
    total_time: float
    node_hours: float
    feasible: bool
    reason: str = ""

    @property
    def cores_used(self) -> int:
        return self.nodes * self.ranks_per_node * self.threads_per_rank


def _evaluate(engine: BaseEngine, workload: WorkloadSpec, read_pattern: str) -> PlanOption:
    report: EngineReport = engine.estimate(workload, read_pattern=read_pattern)
    if report.failed:
        return PlanOption(
            engine=engine.name,
            nodes=engine.nodes,
            ranks_per_node=engine.ranks_per_node,
            threads_per_rank=engine.threads_per_rank,
            total_time=float("inf"),
            node_hours=float("inf"),
            feasible=False,
            reason=report.failed,
        )
    return PlanOption(
        engine=engine.name,
        nodes=engine.nodes,
        ranks_per_node=engine.ranks_per_node,
        threads_per_rank=engine.threads_per_rank,
        total_time=report.total_time,
        node_hours=engine.nodes * report.total_time / 3600.0,
        feasible=True,
    )


def plan(
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    node_counts: list[int] | None = None,
    cores_per_node: int | None = None,
    objective: str = "time",
    read_pattern: str = "comm-avoiding",
    compute: ComputeModel | None = None,
    include_mpi_engine: bool = True,
) -> list[PlanOption]:
    """Evaluate configurations; returns options sorted best-first.

    ``objective``: ``"time"`` (fastest wall clock), ``"node_hours"``
    (cheapest allocation), or ``"balanced"`` (node-hours x time — a
    compromise that penalises both stragglers and waste).
    """
    if objective not in ("time", "node_hours", "balanced"):
        raise ConfigError(f"unknown objective {objective!r}")
    if node_counts is None:
        node_counts = [n for n in (8, 16, 32, 64, 91, 182, 364, 728, 1456) if n <= cluster.nodes]
    if not node_counts:
        raise ConfigError("no node counts to evaluate")
    if any(n < 1 or n > cluster.nodes for n in node_counts):
        raise ConfigError(f"node counts must be within [1, {cluster.nodes}]")
    cores = cores_per_node if cores_per_node is not None else cluster.node.cores
    if not (1 <= cores <= cluster.node.cores):
        raise ConfigError(f"cores_per_node must be within [1, {cluster.node.cores}]")

    options: list[PlanOption] = []
    for nodes in node_counts:
        sized = cluster.with_nodes(max(cluster.nodes, nodes))
        options.append(
            _evaluate(
                HybridEngine(sized, nodes, threads_per_rank=cores, compute=compute),
                workload,
                read_pattern,
            )
        )
        if include_mpi_engine:
            options.append(
                _evaluate(
                    MPIEngine(sized, nodes, ranks_per_node=cores, compute=compute),
                    workload,
                    read_pattern,
                )
            )

    def score(option: PlanOption) -> float:
        if not option.feasible:
            return float("inf")
        if objective == "time":
            return option.total_time
        if objective == "node_hours":
            return option.node_hours
        return option.node_hours * option.total_time

    options.sort(key=lambda option: (score(option), option.nodes))
    return options


def best_plan(
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    **kwargs,
) -> PlanOption:
    """The single best feasible configuration; raises if none fits."""
    options = plan(cluster, workload, **kwargs)
    for option in options:
        if option.feasible:
            return option
    raise ConfigError(
        "no feasible configuration: every evaluated geometry fails "
        f"(first reason: {options[0].reason if options else 'none evaluated'})"
    )
