"""ApplyMT — the multithreaded Apply of the Hybrid ArrayUDF Execution
Engine (paper Algorithm 1).

Faithful to the paper's OpenMP structure:

* the core cells are linearised and split **statically** among ``t``
  threads (``#pragma omp for schedule(static)``),
* each thread appends its results to a private vector ``Rp`` (no locks
  on the output),
* a barrier, then an exclusive prefix sum over the per-thread sizes
  computes each thread's displacement,
* every thread copies its ``Rp`` into its slice of the shared result
  ``R`` in parallel.

Because all threads share the one input block, node-level data (e.g.
the master channel of a cross-correlation) exists once per node rather
than once per core — the memory fix of Fig. 8.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.arrayudf.apply import cell_grid
from repro.arrayudf.stencil import Stencil
from repro.errors import UDFError


def static_schedule(n_items: int, n_threads: int, thread: int) -> tuple[int, int]:
    """OpenMP ``schedule(static)`` chunking of ``range(n_items)``."""
    if n_threads < 1 or not (0 <= thread < n_threads):
        raise UDFError(f"bad schedule: thread={thread} of {n_threads}")
    base, extra = divmod(n_items, n_threads)
    lo = thread * base + min(thread, extra)
    hi = lo + base + (1 if thread < extra else 0)
    return lo, hi


def apply_mt(
    block: np.ndarray,
    udf: Callable[[Stencil], float],
    threads: int = 4,
    core_rows: tuple[int, int] | None = None,
    core_cols: tuple[int, int] | None = None,
    row_stride: int = 1,
    col_stride: int = 1,
    boundary: str = "error",
    dtype: object = np.float64,
) -> np.ndarray:
    """Multithreaded Apply (Algorithm 1).  Same contract as
    :func:`repro.arrayudf.apply.apply`, computed by ``threads`` worker
    threads with per-thread result vectors merged via prefix offsets."""
    block = np.asarray(block)
    row_cells, col_cells = cell_grid(
        block.shape, core_rows, core_cols, row_stride, col_stride
    )
    n_rows, n_cols = len(row_cells), len(col_cells)
    n_cells = n_rows * n_cols
    if threads < 1:
        raise UDFError("threads must be >= 1")
    threads = min(threads, max(1, n_cells))

    # Shared result vector R and per-thread private vectors Rp.
    result = np.empty(n_cells, dtype=dtype)
    partials: list[list] = [[] for _ in range(threads)]
    sizes = [0] * threads
    errors: list[BaseException] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def worker(thread_id: int) -> None:
        try:
            lo, hi = static_schedule(n_cells, threads, thread_id)
            rp = partials[thread_id]
            for flat in range(lo, hi):
                row = row_cells[flat // n_cols]
                col = col_cells[flat % n_cols]
                rp.append(udf(Stencil(block, row, col, boundary=boundary)))
            sizes[thread_id] = len(rp)  # p[h] = Rp.size()
            barrier.wait()  # #pragma omp barrier
            # Exclusive prefix over sizes gives this thread's displacement
            # (Algorithm 1 computes it once in a single section; each
            # thread recomputing the same prefix is equivalent and
            # lock-free).
            displacement = sum(sizes[:thread_id])
            result[displacement : displacement + len(rp)] = rp
        except BaseException as exc:  # noqa: BLE001 - propagate worker errors
            with errors_lock:
                errors.append(exc)
            barrier.abort()

    if threads == 1:
        worker(0)
    else:
        pool = [
            threading.Thread(target=worker, args=(h,), name=f"applymt-{h}")
            for h in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

    if errors:
        first = errors[0]
        if isinstance(first, threading.BrokenBarrierError):
            first = next(
                (e for e in errors if not isinstance(e, threading.BrokenBarrierError)),
                first,
            )
        raise UDFError(f"UDF failed in ApplyMT: {type(first).__name__}: {first}") from first
    return result.reshape(n_rows, n_cols)
