"""Tests for parallel output writing, velocity fitting, and the
das_inspect CLI."""

import numpy as np
import pytest

from repro.cluster import cori_haswell
from repro.core.interferometry import InterferometryConfig
from repro.core.stacking import linear_stack, window_ncfs
from repro.core.velocity import VelocityFit, fit_moveout, pick_arrivals
from repro.errors import ConfigError, MPIError
from repro.hdf5lite import File
from repro.hdf5lite.cli import main as das_inspect_main
from repro.simmpi import run_spmd
from repro.storage.parallel_write import write_output_parallel


class TestParallelWrite:
    def test_blocks_merged_in_rank_order(self, tmp_path):
        path = str(tmp_path / "out.h5")
        cluster = cori_haswell(4)

        def fn(comm):
            block = np.full((2, 5), float(comm.rank))
            return write_output_parallel(comm, path, block, cluster.storage)

        result = run_spmd(fn, 4, cluster=cluster, ranks_per_node=1)
        assert result.results == [(0, 2), (2, 4), (4, 6), (6, 8)]
        with File(path, "r") as f:
            out = f.dataset("Output").read()
        expected = np.repeat(np.arange(4.0), 2)[:, None] * np.ones(5)
        np.testing.assert_allclose(out, expected)

    def test_uneven_blocks(self, tmp_path):
        path = str(tmp_path / "out.h5")

        def fn(comm):
            rows = comm.rank + 1
            block = np.full((rows, 3), float(comm.rank))
            return write_output_parallel(comm, path, block)

        result = run_spmd(fn, 3)
        assert result.results == [(0, 1), (1, 3), (3, 6)]
        with File(path, "r") as f:
            assert f.dataset("Output").shape == (6, 3)

    def test_attrs_written(self, tmp_path):
        path = str(tmp_path / "out.h5")

        def fn(comm):
            return write_output_parallel(
                comm, path, np.zeros((1, 2)), attrs={"analysis": "local-similarity"}
            )

        run_spmd(fn, 2)
        with File(path, "r") as f:
            assert f.attrs["analysis"] == "local-similarity"

    def test_column_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "out.h5")

        def fn(comm):
            block = np.zeros((1, 2 + comm.rank))
            write_output_parallel(comm, path, block)

        with pytest.raises(MPIError, match="column"):
            run_spmd(fn, 2)

    def test_write_time_charged(self, tmp_path):
        path = str(tmp_path / "out.h5")
        cluster = cori_haswell(2)

        def fn(comm):
            write_output_parallel(
                comm, path, np.zeros((4, 1000), dtype=np.float64), cluster.storage
            )
            return [op for op, _, _ in comm.tracer.schedule() if op == "write"]

        result = run_spmd(fn, 2, cluster=cluster, ranks_per_node=1)
        assert all(len(w) == 1 for w in result.results)


class TestVelocity:
    def _ncf_field(self, velocity=40.0, channels=16, spacing=2.0, fs=100.0):
        """Synthetic NCFs: a Ricker arrival at d/velocity per channel."""
        lags = np.arange(-200, 201) / fs
        ncfs = np.zeros((channels, len(lags)))
        for channel in range(channels):
            t_arr = channel * spacing / velocity
            ncfs[channel] = np.exp(-((lags - t_arr) ** 2) / (2 * 0.02**2))
        return lags, ncfs, spacing

    def test_pick_arrivals(self):
        lags, ncfs, _ = self._ncf_field()
        picks = pick_arrivals(ncfs, lags)
        np.testing.assert_allclose(picks[5], 5 * 2.0 / 40.0, atol=0.02)

    def test_fit_recovers_velocity(self):
        lags, ncfs, spacing = self._ncf_field(velocity=40.0)
        fit = fit_moveout(ncfs, lags, channel_spacing=spacing)
        assert isinstance(fit, VelocityFit)
        assert fit.velocity == pytest.approx(40.0, rel=0.1)
        assert fit.r_squared > 0.98

    def test_fit_other_velocity(self):
        lags, ncfs, spacing = self._ncf_field(velocity=100.0)
        fit = fit_moveout(ncfs, lags, channel_spacing=spacing)
        assert fit.velocity == pytest.approx(100.0, rel=0.15)

    def test_min_distance_excludes_near_channels(self):
        lags, ncfs, spacing = self._ncf_field()
        fit = fit_moveout(ncfs, lags, channel_spacing=spacing, min_distance=6.0)
        assert fit.n_channels < ncfs.shape[0]

    def test_incoherent_input_rejected(self):
        rng = np.random.default_rng(0)
        lags = np.arange(-100, 101) / 100.0
        ncfs = rng.normal(size=(8, len(lags)))
        with pytest.raises(ConfigError):
            # random picks -> non-physical slope (usually) or fine; force
            # failure with reversed moveout:
            reversed_ncfs = np.zeros_like(ncfs)
            for channel in range(8):
                t_arr = (7 - channel) * 0.1
                reversed_ncfs[channel] = np.exp(
                    -((lags - t_arr) ** 2) / (2 * 0.01**2)
                )
            fit_moveout(reversed_ncfs, lags, channel_spacing=2.0)

    def test_validation(self):
        lags = np.arange(-10, 11) / 10.0
        ncfs = np.zeros((4, len(lags)))
        with pytest.raises(ConfigError):
            fit_moveout(ncfs, lags, channel_spacing=0.0)
        with pytest.raises(ConfigError):
            fit_moveout(ncfs, lags, channel_spacing=2.0, master_channel=9)
        with pytest.raises(ConfigError):
            pick_arrivals(ncfs, lags, min_lag=2.0)

    def test_end_to_end_from_noise(self):
        """Full physics chain: delayed common noise → windowed NCFs →
        stack → velocity fit recovers the propagation speed."""
        fs = 100.0
        spacing = 2.0
        velocity = 50.0
        channels = 10
        rng = np.random.default_rng(1)
        n = int(fs * 240)
        common = rng.normal(size=n)
        data = np.stack(
            [
                np.roll(common, int(round(c * spacing / velocity * fs)))
                + 0.3 * rng.normal(size=n)
                for c in range(channels)
            ]
        )
        config = InterferometryConfig(fs=fs, band=(1.0, 10.0), resample_q=2)
        lags, ncfs3 = window_ncfs(data, config, window_seconds=30.0, max_lag_seconds=2.0)
        stacked = linear_stack(ncfs3)
        fit = fit_moveout(stacked, lags, channel_spacing=spacing, min_distance=2.0)
        assert fit.velocity == pytest.approx(velocity, rel=0.2)


class TestInspectCLI:
    def test_listing(self, tmp_path, capsys):
        path = str(tmp_path / "x.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.zeros((2, 3)))
        rc = das_inspect_main([path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "d  dataset (2, 3)" in out

    def test_verify_ok(self, tmp_path, capsys):
        path = str(tmp_path / "x.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.zeros(4))
        rc = das_inspect_main(["--verify", path])
        assert rc == 0
        assert "integrity: ok" in capsys.readouterr().out

    def test_verify_broken_source(self, tmp_path, capsys):
        import os

        from repro.hdf5lite import VirtualSource

        src = str(tmp_path / "src.h5")
        with File(src, "w") as f:
            f.create_dataset("d", data=np.zeros((2, 2)))
        vpath = str(tmp_path / "v.h5")
        with File(vpath, "w") as f:
            f.create_dataset(
                "v",
                shape=(2, 2),
                dtype=np.float64,
                virtual_sources=[VirtualSource(src, "/d", (0, 0), (0, 0), (2, 2))],
            )
        os.remove(src)
        rc = das_inspect_main(["--verify", vpath])
        assert rc == 1
        assert "PROBLEM" in capsys.readouterr().err

    def test_not_a_file(self, tmp_path, capsys):
        rc = das_inspect_main([str(tmp_path / "missing.h5")])
        assert rc == 2
