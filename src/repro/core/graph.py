"""Lazy expression graphs over streaming pipelines.

The eager :class:`~repro.core.pipeline.StreamPipeline` executes operators
in declaration order, so a channel selection or a decimation written
*after* the scan still pays for full-resolution reads.  This module is
the declarative layer above it: a :class:`Query` builds a small
expression graph (source, map, sink, post nodes) and nothing executes
until :mod:`repro.core.optimizer` lowers the graph into a physical plan
— pushing selection/decimation into the storage source, fusing adjacent
halo-compatible maps, and sharing common prefixes between queries that
branch from the same node.

Two structural operators are defined here because the optimizer's
pushdown rule targets them:

* :class:`ChannelSelectOp` — keep channel rows ``[lo, hi)``;
* :class:`SubsampleOp` — keep every ``step``-th raw sample (exact
  pointwise selection on the lattice ``{0, step, 2*step, ...}``, unlike
  :class:`~repro.core.operators.DecimateOp` which low-pass filters
  first).

Both are ordinary :class:`~repro.core.pipeline.Operator` subclasses, so
an *unoptimized* plan runs them eagerly inside the chain — which is what
makes the pushdown rewrite testably bit-exact: the optimized plan reads
the selected lattice straight from storage and must produce byte-equal
output.

:func:`verify_geometry` is the runtime half of the ``PLN`` lint series:
the planner trusts each operator's declared interval algebra
(``out_total`` / ``out_core`` / ``out_full`` / ``in_needed``), so before
an optimized plan runs, each operator's declarations are round-trip
checked against the record geometry exactly the way the runner composes
them (tiling, coverage, and containment of every core target in its
padded production).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.core.pipeline import Operator, SinkOp, _clamp
from repro.errors import ConfigError
from repro.storage.chunks import iter_intervals

__all__ = [
    "ChannelSelectOp",
    "CoordFrame",
    "Node",
    "Query",
    "SubsampleOp",
    "verify_geometry",
]


@dataclass(frozen=True)
class CoordFrame:
    """Maps an optimized plan's output coordinates back to raw source
    coordinates.

    Pushdown makes the executed stream a view — channel row 0 is raw
    channel ``channel_lo`` and output sample ``j`` is raw sample
    ``j * sample_step`` — while gap reports and event columns must stay
    meaningful in the original recording.  The facade exposes the frame
    of the last run so callers can translate.
    """

    channel_lo: int = 0
    channel_hi: int | None = None
    sample_step: int = 1

    @property
    def identity(self) -> bool:
        return self.channel_lo == 0 and self.channel_hi is None and (
            self.sample_step == 1
        )

    def raw_channel(self, row):
        """Raw channel index of output row ``row`` (int or array)."""
        return row + self.channel_lo

    def raw_sample(self, col):
        """Raw sample index of output sample ``col`` (int or array)."""
        return col * self.sample_step


class ChannelSelectOp(Operator):
    """Keep channel rows ``[lo, hi)`` of the input stream.

    Pushdown-eligible: the optimizer lowers a leading selection into a
    :class:`~repro.storage.chunks.SlicedSource` row range so unselected
    channels are never read.  Run eagerly (unoptimized), it slices rows
    in memory — output row ``r`` is input row ``lo + r``, hence the
    ``in_rows`` override; under threading ``ctx.channel_lo`` is the
    absolute input row of the block's row 0, so the eager form intersects
    its selection with the rows it was handed.
    """

    def __init__(self, lo: int, hi: int):
        lo, hi = int(lo), int(hi)
        if not (0 <= lo < hi):
            raise ConfigError(f"bad channel range [{lo}, {hi})")
        self.lo = lo
        self.hi = hi
        self.name = f"select[{lo}:{hi}]"

    def out_channels(self, channels_in: int) -> int:
        if self.hi > channels_in:
            raise ConfigError(
                f"channel selection [{self.lo}, {self.hi}) exceeds the "
                f"{channels_in} channels available"
            )
        return self.hi - self.lo

    def in_rows(self, lo: int, hi: int) -> tuple[int, int]:
        return lo + self.lo, hi + self.lo

    def apply(self, data: np.ndarray, ctx) -> np.ndarray:
        a = max(self.lo, ctx.channel_lo)
        b = min(self.hi, ctx.channel_lo + data.shape[0])
        if b < a:
            raise ConfigError(
                f"{self.name}: block rows [{ctx.channel_lo}, "
                f"{ctx.channel_lo + data.shape[0]}) miss the selection"
            )
        return data[a - ctx.channel_lo : b - ctx.channel_lo]


class SubsampleOp(Operator):
    """Keep every ``step``-th raw sample — exact pointwise decimation.

    The kept lattice is anchored at absolute sample 0 (``{0, step,
    2*step, ...}``), not at each block's first sample; ``apply`` offsets
    into the block accordingly, so chunked execution selects exactly the
    same samples as a whole-record run.  This is what the optimizer's
    decimation pushdown lowers into a strided storage read; contrast
    :class:`~repro.core.operators.DecimateOp`, which applies an
    anti-aliasing filter and is therefore never pushed down.
    """

    def __init__(self, step: int):
        step = int(step)
        if step < 1:
            raise ConfigError(f"subsample step must be >= 1, got {step}")
        self.step = step
        self.decimate = step
        self.name = f"subsample[{step}]"

    def apply(self, data: np.ndarray, ctx) -> np.ndarray:
        offset = (-ctx.start) % self.step
        return np.ascontiguousarray(data[..., offset :: self.step])


# ---------------------------------------------------------------------------
# the expression graph
# ---------------------------------------------------------------------------

_NODE_IDS = itertools.count(1)


class Node:
    """One plan node: ``source``, ``map``, ``sink``, or ``post``.

    Nodes are immutable once created and shared by identity — two queries
    built from the same intermediate hold the *same* node objects for the
    shared prefix, which is exactly what the optimizer's
    common-subexpression rule keys on.
    """

    __slots__ = ("id", "kind", "op", "parent", "payload")

    def __init__(
        self,
        kind: str,
        parent: "Node | None" = None,
        op: object = None,
        payload: dict | None = None,
    ):
        self.id = next(_NODE_IDS)
        self.kind = kind
        self.op = op
        self.parent = parent
        self.payload = payload or {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        what = self.payload.get("label") if self.kind == "source" else (
            getattr(self.op, "name", None)
        )
        return f"<Node {self.id} {self.kind} {what!r}>"


class Query:
    """A lazily-built analysis expression ending at :attr:`node`.

    Build with :meth:`scan` then chain :meth:`select_channels` /
    :meth:`decimate` / :meth:`then`; nothing reads data until the
    optimizer executes the plan.  Queries are cheap immutable handles:
    every builder call returns a new ``Query`` whose node points at the
    previous one, so branching (two detectors over one filtered stream)
    shares the prefix nodes by identity.
    """

    def __init__(self, node: Node, label: str | None = None):
        self.node = node
        self.label = label

    # -- construction -------------------------------------------------------
    @classmethod
    def scan(
        cls, source: object, fs: float | None = None, label: str | None = None
    ) -> "Query":
        """Start a query over ``source`` (anything
        :func:`~repro.storage.chunks.as_source` accepts)."""
        return cls(
            Node("source", payload={"source": source, "fs": fs, "label": label}),
            label=label,
        )

    def then(self, op: object, label: str | None = None) -> "Query":
        """Append an operator; sinks end the map section, operators after
        a sink become post stages (mirroring ``StreamPipeline``)."""
        if isinstance(op, SinkOp):
            if self._has_sink():
                raise ConfigError("query already has a sink")
            kind = "sink"
        elif isinstance(op, Operator):
            kind = "post" if self._has_sink() else "map"
        else:
            raise ConfigError(f"not an operator: {op!r}")
        return Query(
            Node(kind, parent=self.node, op=op), label=label or self.label
        )

    def select_channels(self, lo: int, hi: int) -> "Query":
        """Keep channel rows ``[lo, hi)`` (pushdown-eligible)."""
        return self.then(ChannelSelectOp(lo, hi))

    def decimate(self, step: int) -> "Query":
        """Keep every ``step``-th raw sample (pushdown-eligible; exact
        pointwise selection, no anti-aliasing filter)."""
        return self.then(SubsampleOp(step))

    def with_label(self, label: str) -> "Query":
        return Query(self.node, label=label)

    # -- inspection ---------------------------------------------------------
    def chain(self) -> list[Node]:
        """Nodes from the source to this query's tip, in execution order."""
        nodes: list[Node] = []
        node: Node | None = self.node
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        if not nodes or nodes[0].kind != "source":
            raise ConfigError("query does not start at a scan")
        return nodes

    def operators(self) -> list:
        """The eager operator list (maps, sink, post) in pipeline order."""
        return [n.op for n in self.chain() if n.op is not None]

    def _has_sink(self) -> bool:
        node: Node | None = self.node
        while node is not None:
            if node.kind == "sink":
                return True
            node = node.parent
        return False


# ---------------------------------------------------------------------------
# geometry verification (runtime half of the PLN lint series)
# ---------------------------------------------------------------------------


def verify_geometry(
    op: Operator,
    total: int,
    chunk_sizes: Iterable[int] | None = None,
) -> None:
    """Round-trip check an operator's declared interval algebra.

    Emulates the runner's planning for a record of ``total`` input
    samples over a few chunkings and requires, per chunk ``[c0, c1)``:

    * **tiling** — consecutive clamped ``out_core`` intervals share their
      boundary (no owned output is dropped or produced twice);
    * **coverage** — the final chunk's core reaches ``out_total(total)``;
    * **containment** — the padded production ``out_full(in_needed(tgt))``
      (both clamped, as the runner clamps) contains the core target
      ``tgt``, so trimming can never fail at run time.

    Raises :class:`~repro.errors.ConfigError` naming the operator and the
    first violated invariant.  The planner calls this before trusting an
    unfamiliar operator's declarations; the static ``PLN`` analyzers in
    :mod:`repro.checks` lint the same declarations at review time.
    """
    if total < 1:
        raise ConfigError("verify_geometry needs total >= 1")
    out_total = op.out_total(total)
    if out_total < 0:
        raise ConfigError(
            f"operator {op.name!r}: out_total({total}) = {out_total} < 0"
        )
    if chunk_sizes is None:
        chunk_sizes = sorted(
            {
                total,
                max(1, total // 2),
                max(1, total // 3),
                max(1, total // 7),
                min(total, max(1, op.decimate)),
            }
        )
    for chunk in chunk_sizes:
        chunk = max(1, min(int(chunk), total))
        prev_hi = 0
        for c0, c1 in iter_intervals(total, chunk):
            lo, hi = _clamp(*op.out_core(c0, c1), out_total)
            if lo != prev_hi:
                raise ConfigError(
                    f"operator {op.name!r}: out_core does not tile — chunk "
                    f"[{c0}, {c1}) owns [{lo}, {hi}) but the previous chunk "
                    f"ended at {prev_hi} (total={total}, chunk={chunk})"
                )
            prev_hi = hi
            if hi <= lo:
                continue
            a, b = _clamp(*op.in_needed(lo, hi), total)
            fa, fb = _clamp(*op.out_full(a, b), out_total)
            if not (fa <= lo and hi <= fb):
                raise ConfigError(
                    f"operator {op.name!r}: containment violated — target "
                    f"[{lo}, {hi}) needs inputs [{a}, {b}) but out_full "
                    f"produces only [{fa}, {fb}) (total={total})"
                )
        if prev_hi != out_total:
            raise ConfigError(
                f"operator {op.name!r}: out_core covers [0, {prev_hi}) but "
                f"out_total({total}) = {out_total} (chunk={chunk})"
            )
