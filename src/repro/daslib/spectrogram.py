"""Short-time Fourier transform and spectrogram.

Used for the Fig. 1b-style time-frequency view of DAS channels and by
band-ratio event screening.  Built on the sliding-window view + real
FFT, no scipy.
"""

from __future__ import annotations

import numpy as np

from repro.daslib.fft import rfft, rfftfreq
from repro.daslib.moving import sliding_windows
from repro.daslib.window import get_window


def stft(
    x: np.ndarray,
    nperseg: int = 256,
    noverlap: int | None = None,
    fs: float = 1.0,
    window: str | tuple = "hann",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time Fourier transform of the last axis.

    Returns ``(freqs, times, S)`` where ``S[..., f, t]`` is the complex
    STFT; ``times`` are segment centres in seconds.  ``noverlap``
    defaults to ``nperseg // 2``.
    """
    x = np.asarray(x, dtype=np.float64)
    if nperseg < 2:
        raise ValueError("nperseg must be >= 2")
    if x.shape[-1] < nperseg:
        raise ValueError(
            f"signal of {x.shape[-1]} samples shorter than nperseg={nperseg}"
        )
    if noverlap is None:
        noverlap = nperseg // 2
    if not (0 <= noverlap < nperseg):
        raise ValueError("need 0 <= noverlap < nperseg")
    step = nperseg - noverlap
    frames = sliding_windows(x, nperseg, step=step, axis=-1)
    taper = get_window(window, nperseg)
    spectra = rfft(frames * taper, axis=-1)
    # (..., n_frames, n_freqs) -> (..., n_freqs, n_frames)
    spectra = np.moveaxis(spectra, -1, -2)
    n_frames = frames.shape[-2]
    times = (np.arange(n_frames) * step + nperseg / 2) / fs
    freqs = rfftfreq(nperseg, 1.0 / fs)
    return freqs, times, spectra


def spectrogram(
    x: np.ndarray,
    nperseg: int = 256,
    noverlap: int | None = None,
    fs: float = 1.0,
    window: str | tuple = "hann",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Power spectrogram ``|STFT|^2`` with density scaling."""
    freqs, times, spectra = stft(
        x, nperseg=nperseg, noverlap=noverlap, fs=fs, window=window
    )
    taper = get_window(window, nperseg)
    scale = 1.0 / (fs * np.sum(taper**2))
    power = (np.abs(spectra) ** 2) * scale
    # One-sided density: double everything but DC (and Nyquist when even).
    if nperseg % 2 == 0:
        power[..., 1:-1, :] *= 2.0
    else:
        power[..., 1:, :] *= 2.0
    return freqs, times, power


def band_power(
    x: np.ndarray,
    fs: float,
    band: tuple[float, float],
    nperseg: int = 256,
    noverlap: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Power inside a frequency band over time: ``(times, power)``.

    A cheap event screen: traffic and earthquakes live in different
    bands, so their band-power traces separate before any correlation.
    """
    lo, hi = band
    if not (0 <= lo < hi <= fs / 2):
        raise ValueError(f"band {band} outside [0, Nyquist]")
    freqs, times, power = spectrogram(x, nperseg=nperseg, noverlap=noverlap, fs=fs)
    select = (freqs >= lo) & (freqs <= hi)
    if not select.any():
        raise ValueError(f"band {band} contains no FFT bins at nperseg={nperseg}")
    return times, power[..., select, :].sum(axis=-2)
