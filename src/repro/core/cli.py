"""``das_analyze`` — the end-to-end command: search → merge → analyse.

Examples::

    das_analyze -d data/ -s 170620100545 -c 6 --analysis similarity \
                -o simi.h5 --fs 500
    das_analyze -d data/ -e '1706201005.*' --analysis interferometry -o corr.h5
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.core.detection import detect_events
from repro.core.framework import DASSA
from repro.core.interferometry import InterferometryConfig
from repro.core.local_similarity import LocalSimilarityConfig
from repro.errors import ReproError
from repro.hdf5lite import File


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das_analyze",
        description="Search, merge, and analyse DAS data in one command.",
    )
    parser.add_argument("-d", "--directory", required=True)
    parser.add_argument("-s", "--start", help="type-1 query start timestamp")
    parser.add_argument("-c", "--count", type=int, default=None)
    parser.add_argument("-e", "--regex", help="type-2 query regex")
    parser.add_argument(
        "--analysis",
        choices=("similarity", "interferometry"),
        default="similarity",
    )
    parser.add_argument("-o", "--output", help="write results to this hdf5lite file")
    parser.add_argument("--threads", type=int, default=4)
    # similarity knobs (Algorithm 2)
    parser.add_argument("--half-window", type=int, default=25, help="M")
    parser.add_argument("--channel-offset", type=int, default=1, help="K")
    parser.add_argument("--half-lag", type=int, default=5, help="L")
    parser.add_argument("--stride", type=int, default=25)
    parser.add_argument("--detect", action="store_true", help="pick events")
    parser.add_argument("--threshold", type=float, default=3.0)
    # interferometry knobs (Algorithm 3)
    parser.add_argument("--band", type=float, nargs=2, default=(0.5, 12.0))
    parser.add_argument("--resample-q", type=int, default=10)
    parser.add_argument("--master", type=int, default=0)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with DASSA(threads=args.threads) as dassa:
            hits = dassa.search(
                args.directory, start=args.start, count=args.count, pattern=args.regex
            )
            if not hits:
                print("das_analyze: no files matched", file=sys.stderr)
                return 1
            print(f"merged {len(hits)} files "
                  f"({hits[0].timestamp} .. {hits[-1].timestamp})")
            vca = dassa.merge(hits)

            from repro.storage.vca import open_vca

            with open_vca(vca) as handle:
                fs = handle.metadata.sampling_frequency
                shape = handle.shape
            print(f"array: {shape[0]} channels x {shape[1]} samples at {fs:g} Hz")

            if args.analysis == "similarity":
                config = LocalSimilarityConfig(
                    half_window=args.half_window,
                    channel_offset=args.channel_offset,
                    half_lag=args.half_lag,
                    stride=args.stride,
                )
                simi, centers = dassa.local_similarity(vca, config)
                print(f"similarity map: {simi.shape}")
                if args.output:
                    with File(args.output, "w") as f:
                        f.attrs["analysis"] = "local-similarity"
                        f.attrs["fs"] = fs
                        f.create_dataset("similarity", data=simi)
                        f.create_dataset("centers", data=centers.astype(np.int64))
                    print(f"wrote {args.output}")
                if args.detect:
                    events = detect_events(
                        simi,
                        centers,
                        fs=fs,
                        threshold_sigmas=args.threshold,
                        remove_channel_bias=True,
                        split_array_wide=True,
                    )
                    print(f"{len(events)} event(s):")
                    for ev in events:
                        print(
                            f"  {ev.kind:<12} channels {ev.channel_lo}-{ev.channel_hi}"
                            f"  t={ev.t_start:.1f}-{ev.t_end:.1f}s"
                            f"  peak={ev.peak_similarity:.2f}"
                        )
            else:
                config = InterferometryConfig(
                    fs=fs,
                    band=(args.band[0], args.band[1]),
                    resample_q=args.resample_q,
                    master_channel=args.master,
                )
                corr = dassa.interferometry(vca, config)
                print(f"per-channel |corr| vs master {args.master}: "
                      f"mean={corr.mean():.3f} max={corr.max():.3f}")
                if args.output:
                    with File(args.output, "w") as f:
                        f.attrs["analysis"] = "interferometry"
                        f.attrs["fs"] = fs
                        f.attrs["master"] = args.master
                        f.create_dataset("correlation", data=corr)
                    print(f"wrote {args.output}")
    except ReproError as exc:
        print(f"das_analyze: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
