"""``python -m repro.rt`` — the monitoring service's command line.

``watch`` runs the service loop over a spool directory until SIGTERM /
SIGINT (checkpointing on the way out, so the next ``watch`` resumes) or,
with ``--drain``, until the spool is quiet; ``watch --shards N`` runs
the supervised sharded deployment over ``<root>/shard-<i>``
subdirectories (one interrogator spool each) and prints the merged
catalog summary; ``status`` prints the event log and quarantine of a
spool — plus per-shard health when a supervisor has written its health
file there — without running anything.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from repro.core.local_similarity import LocalSimilarityConfig
from repro.errors import ConfigError, ReproError
from repro.rt.events import EventPolicy, EventSink
from repro.rt.ingest import Quarantine
from repro.rt.scheduler import DETECTORS, DetectorConfig
from repro.rt.service import EVENTS_NAME, RTService, ServiceConfig
from repro.rt.shard import ShardOptions, ShardSpec
from repro.rt.supervisor import HEALTH_NAME, SupervisorConfig, run_sharded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rt",
        description="Real-time DAS monitoring over a spool directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    watch = sub.add_parser("watch", help="run the monitoring service")
    watch.add_argument("spool", help="directory acquisition files land in")
    watch.add_argument(
        "--drain",
        action="store_true",
        help="process what is there, flush the record, and exit",
    )
    watch.add_argument(
        "--max-ticks", type=int, default=None, help="stop after N polls"
    )
    watch.add_argument("--poll", type=float, default=1.0, help="poll interval [s]")
    watch.add_argument(
        "--settle", type=float, default=1.0, help="mtime settle time [s]"
    )
    watch.add_argument(
        "--stable-polls",
        type=int,
        default=2,
        help="scans a file's size must hold still",
    )
    watch.add_argument("--queue-capacity", type=int, default=64)
    watch.add_argument("--max-retries", type=int, default=3)
    watch.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="files between checkpoints (0 disables checkpointing)",
    )
    watch.add_argument("--events", default=None, help="event log path (JSONL)")
    watch.add_argument(
        "--detector", choices=DETECTORS, default="local_similarity"
    )
    watch.add_argument(
        "--band",
        type=float,
        nargs=2,
        default=(0.5, 12.0),
        metavar=("LO", "HI"),
        help="bandpass corner frequencies [Hz]",
    )
    watch.add_argument(
        "--no-band", action="store_true", help="feed the detector raw samples"
    )
    watch.add_argument("--half-window", type=int, default=25, help="M")
    watch.add_argument("--channel-offset", type=int, default=1, help="K")
    watch.add_argument("--half-lag", type=int, default=5, help="L")
    watch.add_argument("--stride", type=int, default=25)
    watch.add_argument("--nsta", type=int, default=25)
    watch.add_argument("--nlta", type=int, default=250)
    watch.add_argument("--threshold", type=float, default=0.5)
    watch.add_argument("--min-fraction", type=float, default=0.3)
    watch.add_argument("--quiet", action="store_true")
    watch.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run N supervised shards over <spool>/shard-<i> "
        "subdirectories and merge their catalogs (drain semantics)",
    )
    watch.add_argument(
        "--channel-stride",
        type=int,
        default=0,
        help="channel offset between consecutive shards' interrogators "
        "(rebases merged events; 0 = no rebase)",
    )
    watch.add_argument(
        "--health",
        default=None,
        help="supervisor health file path "
        f"(default <spool>/{HEALTH_NAME})",
    )

    status = sub.add_parser("status", help="inspect a spool's log/quarantine")
    status.add_argument("spool")
    status.add_argument("--events", default=None)
    return parser


def _detector_from_args(args: argparse.Namespace) -> DetectorConfig:
    return DetectorConfig(
        detector=args.detector,
        band=None if args.no_band else tuple(args.band),
        similarity=LocalSimilarityConfig(
            half_window=args.half_window,
            channel_offset=args.channel_offset,
            half_lag=args.half_lag,
            stride=args.stride,
        ),
        nsta=args.nsta,
        nlta=args.nlta,
    )


def _policy_from_args(args: argparse.Namespace) -> EventPolicy:
    return EventPolicy(
        threshold=args.threshold, min_fraction=args.min_fraction
    )


def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        poll_interval=args.poll,
        settle_seconds=args.settle,
        stable_polls=args.stable_polls,
        queue_capacity=args.queue_capacity,
        max_retries=args.max_retries,
        checkpoint_every=args.checkpoint_every,
    )


def _service_from_args(args: argparse.Namespace) -> RTService:
    detector = _detector_from_args(args)
    policy = _policy_from_args(args)
    config = _config_from_args(args)
    on_event = None
    if not args.quiet:

        def on_event(seam_event):
            event = seam_event.event
            print(
                f"event #{event.label} {event.kind}: "
                f"channels [{event.channel_lo}, {event.channel_hi}]  "
                f"t [{event.t_start:.2f}, {event.t_end:.2f}] s  "
                f"peak {event.peak_similarity:.3f}",
                flush=True,
            )

    return RTService(
        args.spool,
        detector=detector,
        policy=policy,
        config=config,
        events_path=args.events,
        on_event=on_event,
    )


def cmd_watch_sharded(args: argparse.Namespace) -> int:
    """Supervised sharded drain over ``<spool>/shard-<i>`` directories.

    Each shard gets its own simmpi rank, heartbeat supervision, and
    checkpoint-resume restarts; durable state lives under
    ``<spool>/state/shard-<i>`` so a vanished interrogator volume
    cannot take its recovery state with it.
    """
    if args.shards < 1:
        raise ConfigError("--shards must be >= 1")
    specs = []
    for shard in range(args.shards):
        spool = os.path.join(args.spool, f"shard-{shard}")
        if not os.path.isdir(spool):
            raise ConfigError(f"shard spool missing: {spool}")
        expected = len(
            [n for n in os.listdir(spool) if n.endswith((".h5", ".hdf5"))]
        )
        specs.append(
            ShardSpec(
                shard_id=shard,
                spool=spool,
                state_dir=os.path.join(
                    args.spool, "state", f"shard-{shard}"
                ),
                channel_base=shard * args.channel_stride,
                expected_files=expected,
            )
        )
    options = ShardOptions(
        detector=_detector_from_args(args),
        event_policy=_policy_from_args(args),
        service_config=_config_from_args(args),
    )
    health_path = args.health or os.path.join(args.spool, HEALTH_NAME)
    result = run_sharded(
        specs,
        options=options,
        supervisor=SupervisorConfig(),
        health_path=health_path,
    )
    summary = {
        "shards": args.shards,
        "events": result["events"],
        "duplicates_dropped": result["duplicates"],
        "restarts": result["restarts"],
        "health": health_path,
        "per_shard": {
            str(shard): {
                "ingested": shard_result["ingested"],
                "events": shard_result["events"],
                "restarts": shard_result["restarts"],
            }
            for shard, shard_result in result["shard_results"].items()
        },
    }
    if not args.quiet:
        print(json.dumps(summary, indent=2))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    if args.shards is not None:
        return cmd_watch_sharded(args)
    service = _service_from_args(args)
    stopping = {"flag": False}

    def request_stop(signum, frame):
        stopping["flag"] = True

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, request_stop)
        except (ValueError, OSError):
            # Signal handlers are a best-effort nicety: off the main
            # thread (tests) or on unsupported platforms the service
            # simply runs without graceful-stop support.
            pass  # noqa: TAX003 - graceful stop is optional; watch loop still honours stop_check/max_ticks
    try:
        if args.drain:
            service.drain()
            service.flush()
        else:
            service.run(
                stop_check=lambda: stopping["flag"], max_ticks=args.max_ticks
            )
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    if not args.quiet:
        print(service.metrics.report())
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    events_path = (
        args.events
        if args.events is not None
        else os.path.join(args.spool, EVENTS_NAME)
    )
    sink = EventSink(events_path)
    events = sink.load()
    quarantine = Quarantine(args.spool)
    report = {
        "spool": args.spool,
        "events": len(events),
        "kinds": sorted({e.event.kind for e in events}),
        "quarantined": sorted(quarantine.reasons),
    }
    health_path = os.path.join(args.spool, HEALTH_NAME)
    if os.path.exists(health_path):
        with open(health_path, encoding="utf-8") as handle:
            health = json.load(handle)
        report["shards"] = {
            shard: {
                "state": info["state"],
                "ingested": info.get("ingested", 0),
                "events": info.get("events", 0),
                "restarts": info.get("restarts", 0),
            }
            for shard, info in sorted(health.get("shards", {}).items())
        }
    print(json.dumps(report, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "watch":
            return cmd_watch(args)
        return cmd_status(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
