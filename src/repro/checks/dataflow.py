"""Generic worklist dataflow solver over :mod:`repro.checks.cfg` graphs.

The engine runs forward *may*-analyses: facts are sets (any hashable
frozen collection works), ``join`` is union-like, and the solver iterates
to a fixpoint with a worklist.  Exception edges can carry a different
transfer than normal/back edges — crucial for resource-leak analysis,
where a statement that *releases* a resource still releases it before an
exception raised later in the same statement region can escape, but a
statement that *acquires* one may raise before the acquisition lands:

``transfer(node, state)``
    state after the statement completes normally;
``transfer_exc(node, state)``
    state carried along the statement's exception edges.  Defaults to
    the *input* state (the statement may raise before any of its
    effects happen) — a safe over-approximation for leak detection.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.checks.cfg import CFG, CFGNode
from repro.errors import ReproError

__all__ = ["solve_forward"]

State = Hashable


def solve_forward(
    cfg: CFG,
    transfer: Callable[[CFGNode, State], State],
    *,
    init: State,
    join: Callable[[State, State], State],
    transfer_exc: Callable[[CFGNode, State], State] | None = None,
    max_iterations: int = 100_000,
) -> tuple[dict[int, State], dict[int, State]]:
    """Iterate to fixpoint; returns ``(state_in, state_out)`` per node uid.

    ``state_in[uid]`` is the join over all incoming edge states;
    ``state_out[uid]`` the state after ``transfer``.  Synthetic nodes
    (entry/exit/raise-exit) pass state through unchanged.  The exit
    nodes' ``state_in`` is what analyzers usually inspect: facts that
    may hold when the function returns (``cfg.exit``) or when an
    exception escapes it (``cfg.raise_exit``).
    """
    state_in: dict[int, State] = {}
    state_out: dict[int, State] = {}
    state_in[cfg.entry] = init

    worklist: list[int] = [cfg.entry]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise ReproError("dataflow solver failed to converge")
        uid = worklist.pop()
        node = cfg.nodes[uid]
        in_state = state_in.get(uid, init)
        if node.kind == "stmt":
            out_normal = transfer(node, in_state)
            out_exc = (
                transfer_exc(node, in_state) if transfer_exc is not None else in_state
            )
        else:
            out_normal = out_exc = in_state
        state_out[uid] = out_normal
        for edge in cfg.succs.get(uid, ()):
            carried = out_exc if edge.kind == "exception" else out_normal
            old = state_in.get(edge.target)
            merged = carried if old is None else join(old, carried)
            if merged != old:
                state_in[edge.target] = merged
                if edge.target not in worklist:
                    worklist.append(edge.target)
    return state_in, state_out
