"""Thread-parallel execution of fused operator chains over row blocks.

The streaming execution core (:mod:`repro.core.pipeline`) runs a whole
chain of DSP operators on each data chunk.  Within a chunk, DASSA's
Hybrid ArrayUDF Execution Engine structure applies: the output rows are
split **statically** among threads (``#pragma omp for schedule(static)``
as in :func:`repro.arrayudf.apply_mt.apply_mt`), each thread runs the
entire fused chain on its private row block, and the per-thread results
are concatenated in schedule order — the same prefix-offset merge as
Algorithm 1, with a whole vectorised pipeline in place of a per-cell
UDF.  All threads share the one input chunk, so node-level state (e.g.
a master spectrum) exists once per chunk rather than once per thread.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.arrayudf.apply_mt import static_schedule
from repro.errors import UDFError


def map_blocks_mt(
    n_rows: int,
    threads: int,
    worker: Callable[[int, int, int], object],
) -> list:
    """Run ``worker(thread_id, row_lo, row_hi)`` over a static partition of
    ``range(n_rows)`` and return the per-thread results in schedule order
    (i.e. ascending row order — the caller concatenates them).

    Threads whose slice is empty are skipped.  Worker exceptions are
    collected and re-raised as :class:`~repro.errors.UDFError`, first
    failure wins — the same contract as ``apply_mt``.
    """
    if n_rows < 0:
        raise UDFError("n_rows must be >= 0")
    if threads < 1:
        raise UDFError("threads must be >= 1")
    threads = min(threads, max(1, n_rows))
    if threads == 1:
        return [worker(0, 0, n_rows)]

    results: list = [None] * threads
    taken: list[bool] = [False] * threads
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def run(thread_id: int) -> None:
        try:
            lo, hi = static_schedule(n_rows, threads, thread_id)
            if hi > lo:
                results[thread_id] = worker(thread_id, lo, hi)
                taken[thread_id] = True
        except BaseException as exc:  # noqa: BLE001 - propagate worker errors
            with errors_lock:
                errors.append(exc)

    pool = [
        threading.Thread(target=run, args=(h,), name=f"fused-mt-{h}")
        for h in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if errors:
        first = errors[0]
        raise UDFError(
            f"fused chain failed in worker: {type(first).__name__}: {first}"
        ) from first
    return [r for r, ok in zip(results, taken) if ok]


def partition_row_blocks(n_rows: int, threads: int) -> Sequence[tuple[int, int]]:
    """The non-empty ``(lo, hi)`` row slices ``map_blocks_mt`` would use."""
    threads = min(max(1, threads), max(1, n_rows))
    out = []
    for h in range(threads):
        lo, hi = static_schedule(n_rows, threads, h)
        if hi > lo:
            out.append((lo, hi))
    return out
