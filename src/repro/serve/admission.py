"""Multi-tenant admission control: token buckets, bounded waiting, metrics.

Every request entering the serving layer passes :meth:`AdmissionController.admit`
before any backend byte moves.  A tenant has two token buckets — one
metering *requests per second*, one metering *backend bytes per second* —
and a bounded waiting-room.  The failure modes are deliberately typed and
separable (:mod:`repro.errors`):

* :class:`~repro.errors.QuotaExceededError` — the buckets cannot cover
  the request now (and the caller declined to wait, or timed out).
  Carries ``retry_after``: pacing, client should back off.
* :class:`~repro.errors.AdmissionQueueFullError` — too many requests from
  this tenant are *already waiting*.  Load shedding, drop immediately.

Isolation falls out of per-tenant buckets: a greedy tenant exhausts its
own tokens and queues behind its own bound, while other tenants' buckets
refill independently — the benchmark (``benchmarks/bench_serve.py``)
asserts the resulting p95 bound.

Refill is lazy (computed from the clock on each call, no background
thread) and waiting is time-based (``Condition.wait`` with the exact
refill deadline), so an idle controller costs nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import AdmissionQueueFullError, ConfigError, QuotaExceededError
from repro.rt.metrics import LatencyStats

__all__ = [
    "TokenBucket",
    "TenantQuota",
    "TenantMetrics",
    "Admission",
    "AdmissionController",
]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s refill up to ``burst``.

    Not self-synchronizing — the owning :class:`AdmissionController`
    serializes access under its lock, which keeps peek-then-take across
    *two* buckets (requests and bytes) atomic without lock nesting.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ConfigError("token rate must be > 0")
        if burst <= 0:
            raise ConfigError("token burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = float(clock())

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens

    def peek(self, n: float) -> float:
        """Seconds until ``n`` tokens are available (0.0 = available now).

        Does not consume anything, so a caller can peek several buckets
        and only take when *all* can cover their cost — no token leaks
        on a partially-satisfiable request.
        """
        self._refill(self._clock())
        if self._tokens >= n:
            return 0.0
        return (n - self._tokens) / self.rate

    def take(self, n: float) -> None:
        """Consume ``n`` tokens; caller must have seen ``peek(n) == 0``."""
        self._refill(self._clock())
        self._tokens -= n

    def settle(self, delta: float) -> None:
        """Post-hoc correction: charge ``delta`` extra tokens (negative
        = refund).

        An under-estimate becomes *debt* — the balance may go negative,
        which ``peek`` prices as extra refill time for the tenant's next
        request; an over-estimate is refunded, clamped at ``burst`` so a
        refund can never mint tokens the bucket could not hold.
        """
        self._refill(self._clock())
        self._tokens = min(self.burst, self._tokens - delta)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant budgets.  ``max_queue`` bounds how many of the tenant's
    requests may *wait* for tokens at once (the waiting room, not the
    bucket): anything beyond it is shed with
    :class:`~repro.errors.AdmissionQueueFullError`."""

    requests_per_s: float = 50.0
    request_burst: float = 20.0
    bytes_per_s: float = 64.0 * 2**20
    byte_burst: float = 32.0 * 2**20
    max_queue: int = 16

    def __post_init__(self) -> None:
        if self.max_queue < 0:
            raise ConfigError("max_queue must be >= 0")


@dataclass
class TenantMetrics:
    """Counters and reservoirs for one tenant (all mutated under the
    controller's lock; ``snapshot`` is the read API)."""

    admitted: int = 0
    rejected_quota: int = 0
    rejected_queue: int = 0
    bytes_admitted: int = 0
    bytes_actual: int = 0
    reconciled: int = 0
    wait: LatencyStats = field(default_factory=LatencyStats)
    latency: LatencyStats = field(default_factory=LatencyStats)

    def snapshot(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "bytes_admitted": self.bytes_admitted,
            "bytes_actual": self.bytes_actual,
            "reconciled": self.reconciled,
            "wait": self.wait.snapshot(),
            "latency": self.latency.snapshot(),
        }


@dataclass(frozen=True)
class Admission:
    """A granted ticket: tokens are already consumed.

    ``charged`` is what the byte bucket was actually debited for — the
    *estimate* of the backend cost, clamped at the tenant's burst.  Pass
    the ticket back through :meth:`AdmissionController.reconcile` with
    the measured byte count to square the estimate against reality.
    """

    tenant: str
    nbytes: int
    waited_s: float
    charged: float = 0.0


class _TenantState:
    """Buckets + metrics for one tenant.  Every field (including the
    mutable ``waiting`` depth) is protected by the *controller's* lock —
    the state object itself carries none."""

    def __init__(self, quota: TenantQuota, clock) -> None:
        self.quota = quota
        self.requests = TokenBucket(quota.requests_per_s, quota.request_burst, clock)
        self.bytes = TokenBucket(quota.bytes_per_s, quota.byte_burst, clock)
        self.metrics = TenantMetrics()
        self.waiting = 0


class AdmissionController:
    """Admits requests against per-tenant token buckets.

    One lock serializes everything (bucket math is microseconds; the
    *backend work* a ticket authorizes happens outside the lock).
    Waiters sleep on a condition with the exact bucket-refill deadline,
    so wakeups are time-driven — token refill is a function of the
    clock, not of other threads calling in.
    """

    def __init__(
        self,
        default: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        clock=time.monotonic,
    ):
        self.default_quota = default if default is not None else TenantQuota()
        self._quotas = dict(quotas or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._tenants: dict[str, _TenantState] = {}  # guarded-by: _lock

    def _state(self, tenant: str) -> _TenantState:  # holds-lock
        state = self._tenants.get(tenant)
        if state is None:
            quota = self._quotas.get(tenant, self.default_quota)
            state = _TenantState(quota, self._clock)
            self._tenants[tenant] = state
        return state

    def admit(
        self,
        tenant: str,
        nbytes: int = 0,
        wait: bool = True,
        timeout: float | None = None,
    ) -> Admission:
        """Admit one request costing 1 request-token and ``nbytes``
        byte-tokens; blocks (bounded) until both buckets can cover it.

        Raises :class:`~repro.errors.AdmissionQueueFullError` when the
        tenant's waiting room is full, and
        :class:`~repro.errors.QuotaExceededError` when the tokens are
        not available and ``wait=False`` — or the ``timeout`` expired.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigError("nbytes must be >= 0")
        started = self._clock()
        deadline = None if timeout is None else started + float(timeout)
        with self._lock:
            state = self._state(tenant)
            byte_cost = float(min(nbytes, state.quota.byte_burst))
            queued = False
            try:
                while True:
                    needed = max(
                        state.requests.peek(1.0), state.bytes.peek(byte_cost)
                    )
                    if needed <= 0.0:
                        state.requests.take(1.0)
                        state.bytes.take(byte_cost)
                        waited = self._clock() - started
                        state.metrics.admitted += 1
                        state.metrics.bytes_admitted += nbytes
                        state.metrics.wait.record(waited)
                        return Admission(tenant, nbytes, waited, byte_cost)
                    kind = "requests" if state.requests.peek(1.0) > 0 else "bytes"
                    if not wait:
                        state.metrics.rejected_quota += 1
                        raise QuotaExceededError(tenant, kind, retry_after=needed)
                    if deadline is not None and self._clock() >= deadline:
                        state.metrics.rejected_quota += 1
                        raise QuotaExceededError(tenant, kind, retry_after=needed)
                    if not queued:
                        if state.waiting >= state.quota.max_queue:
                            state.metrics.rejected_queue += 1
                            raise AdmissionQueueFullError(
                                tenant, state.quota.max_queue
                            )
                        state.waiting += 1
                        queued = True
                    remaining = (
                        needed
                        if deadline is None
                        else min(needed, max(0.0, deadline - self._clock()))
                    )
                    self._cond.wait(max(remaining, 1e-4))
            finally:
                if queued:
                    state.waiting -= 1

    def reconcile(self, admission: Admission, actual_nbytes: int) -> None:
        """Square the admitted estimate against the measured backend
        bytes once the read has completed.

        The byte bucket was debited ``admission.charged`` (an output-size
        estimate) up front; the difference to ``actual_nbytes`` is
        settled now — an under-estimate leaves the bucket in debt (the
        tenant's *next* request pays for it in refill time), an
        over-estimate is refunded up to the burst.  Refunds wake waiters
        so freed tokens are usable immediately.
        """
        actual_nbytes = int(actual_nbytes)
        if actual_nbytes < 0:
            raise ConfigError("actual_nbytes must be >= 0")
        with self._lock:
            state = self._state(admission.tenant)
            delta = float(actual_nbytes) - admission.charged
            state.bytes.settle(delta)
            state.metrics.bytes_actual += actual_nbytes
            state.metrics.reconciled += 1
            if delta < 0:
                self._cond.notify_all()

    def record_latency(self, tenant: str, seconds: float) -> None:
        """Fold a served request's end-to-end latency into the tenant's
        reservoir (called by the session after the backend work)."""
        with self._lock:
            self._state(tenant).metrics.latency.record(seconds)

    def metrics(self, tenant: str) -> dict:
        with self._lock:
            return self._state(tenant).metrics.snapshot()

    def snapshot(self) -> dict:
        """All tenants' metrics, keyed by tenant name."""
        with self._lock:
            return {
                name: state.metrics.snapshot()
                for name, state in sorted(self._tenants.items())
            }
