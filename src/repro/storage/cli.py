"""``das_search`` command-line tool (paper §IV-A).

Examples (matching the paper's usage)::

    das_search -d /data/das -s 170728224510 -c 2
    das_search -d /data/das -e '170728224[567]10'

Optionally merges the hits into a VCA or RCA::

    das_search -d /data/das -s 170728224510 -c 60 --vca merged_vca.h5
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.errors import ReproError
from repro.storage.rca import create_rca
from repro.storage.search import das_search
from repro.storage.vca import create_vca


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das_search",
        description="Search DAS files by timestamp and optionally merge them.",
    )
    parser.add_argument(
        "-d", "--directory", default=".", help="directory holding DAS files"
    )
    parser.add_argument(
        "-s", "--start", help="type-1 query: start timestamp (yymmddhhmmss)"
    )
    parser.add_argument(
        "-c",
        "--count",
        type=int,
        default=None,
        help="type-1 query: number of files at/after the start",
    )
    parser.add_argument(
        "-e", "--regex", help="type-2 query: regex over file timestamps"
    )
    parser.add_argument("--vca", help="merge hits into a VCA at this path")
    parser.add_argument("--rca", help="merge hits into an RCA at this path")
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only file paths"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        t0 = time.perf_counter()
        hits = das_search(
            args.directory, start=args.start, count=args.count, pattern=args.regex
        )
        search_elapsed = time.perf_counter() - t0
        for info in hits:
            if args.quiet:
                print(info.path)
            else:
                print(f"{info.timestamp}  {info.path}")
        if not args.quiet:
            print(f"# {len(hits)} file(s) in {search_elapsed * 1e3:.3f} ms")
        if args.vca:
            t0 = time.perf_counter()
            create_vca(args.vca, hits)
            if not args.quiet:
                print(f"# VCA {args.vca} in {(time.perf_counter() - t0) * 1e3:.3f} ms")
        if args.rca:
            t0 = time.perf_counter()
            create_rca(args.rca, hits)
            if not args.quiet:
                print(f"# RCA {args.rca} in {time.perf_counter() - t0:.3f} s")
    except ReproError as exc:
        print(f"das_search: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
