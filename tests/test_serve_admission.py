"""Admission control: buckets, typed rejection, fairness, thread-safety.

The contract under test (``repro.serve.admission``):

* token buckets refill lazily from the clock, capped at burst;
* a request that cannot be covered is rejected with the *typed* taxonomy
  errors — :class:`~repro.errors.QuotaExceededError` carrying a
  ``retry_after`` pacing hint (quota), or
  :class:`~repro.errors.AdmissionQueueFullError` (waiting room full) —
  never a bare exception;
* tenants are isolated: one tenant draining its buckets never consumes
  another's tokens;
* the controller survives a multi-thread hammer with the runtime
  lock sanitizer installed and zero violations.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import (
    AdmissionQueueFullError,
    ConfigError,
    QuotaExceededError,
    ServeError,
)
from repro.serve.admission import (
    AdmissionController,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- token bucket ------------------------------------------------------------

def test_bucket_starts_full_and_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
    assert bucket.peek(5.0) == 0.0
    bucket.take(5.0)
    assert bucket.peek(1.0) == pytest.approx(0.1)
    clock.advance(0.1)
    assert bucket.peek(1.0) == 0.0
    clock.advance(100.0)  # refill caps at burst
    assert bucket.tokens == pytest.approx(5.0)


def test_bucket_peek_does_not_consume():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    for _ in range(5):
        assert bucket.peek(2.0) == 0.0
    assert bucket.tokens == pytest.approx(2.0)


def test_bucket_validates():
    with pytest.raises(ConfigError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ConfigError):
        TokenBucket(rate=1.0, burst=0.0)


# -- typed rejection ---------------------------------------------------------

def test_quota_exceeded_is_typed_with_retry_after():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(requests_per_s=2.0, request_burst=1.0),
        clock=clock,
    )
    ctl.admit("a", wait=False)
    with pytest.raises(QuotaExceededError) as err:
        ctl.admit("a", wait=False)
    assert isinstance(err.value, ServeError)
    assert err.value.tenant == "a"
    assert err.value.kind == "requests"
    assert err.value.retry_after == pytest.approx(0.5)
    # backing off by retry_after is sufficient
    clock.advance(err.value.retry_after)
    ctl.admit("a", wait=False)


def test_byte_quota_kind():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(
            requests_per_s=100.0,
            request_burst=100.0,
            bytes_per_s=100.0,
            byte_burst=100.0,
        ),
        clock=clock,
    )
    ctl.admit("a", nbytes=100, wait=False)
    with pytest.raises(QuotaExceededError) as err:
        ctl.admit("a", nbytes=50, wait=False)
    assert err.value.kind == "bytes"


def test_oversized_request_clamped_to_burst():
    # a single request larger than the byte burst must not deadlock: its
    # cost clamps to the burst (it pays the whole bucket)
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(bytes_per_s=100.0, byte_burst=100.0), clock=clock
    )
    granted = ctl.admit("a", nbytes=10_000, wait=False)
    assert granted.nbytes == 10_000


def test_queue_full_is_typed_and_immediate():
    ctl = AdmissionController(
        default=TenantQuota(
            requests_per_s=0.001, request_burst=1.0, max_queue=0
        )
    )
    ctl.admit("a")  # consumes the burst
    # max_queue=0: nothing may wait, shed immediately even with wait=True
    with pytest.raises(AdmissionQueueFullError) as err:
        ctl.admit("a")
    assert isinstance(err.value, ServeError)
    assert err.value.tenant == "a"
    assert err.value.depth == 0


def test_wait_timeout_raises_quota_error():
    ctl = AdmissionController(
        default=TenantQuota(requests_per_s=0.01, request_burst=1.0)
    )
    ctl.admit("a")
    with pytest.raises(QuotaExceededError):
        ctl.admit("a", timeout=0.02)


def test_admit_waits_for_refill():
    ctl = AdmissionController(
        default=TenantQuota(requests_per_s=50.0, request_burst=1.0)
    )
    ctl.admit("a")
    granted = ctl.admit("a")  # must wait ~20ms for one token
    assert granted.waited_s > 0.0


# -- fairness / isolation ----------------------------------------------------

def test_tenants_draw_from_separate_buckets():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(requests_per_s=1.0, request_burst=3.0),
        clock=clock,
    )
    for _ in range(3):
        ctl.admit("greedy", wait=False)
    with pytest.raises(QuotaExceededError):
        ctl.admit("greedy", wait=False)
    # the polite tenant's bucket is untouched
    for _ in range(3):
        ctl.admit("polite", wait=False)


def test_per_tenant_quota_override():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(requests_per_s=1.0, request_burst=1.0),
        quotas={"vip": TenantQuota(requests_per_s=1.0, request_burst=10.0)},
        clock=clock,
    )
    for _ in range(10):
        ctl.admit("vip", wait=False)
    ctl.admit("other", wait=False)
    with pytest.raises(QuotaExceededError):
        ctl.admit("other", wait=False)


def test_metrics_accounting():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(requests_per_s=1.0, request_burst=2.0),
        clock=clock,
    )
    ctl.admit("a", nbytes=100, wait=False)
    ctl.admit("a", nbytes=50, wait=False)
    with pytest.raises(QuotaExceededError):
        ctl.admit("a", wait=False)
    ctl.record_latency("a", 0.25)
    snap = ctl.metrics("a")
    assert snap["admitted"] == 2
    assert snap["rejected_quota"] == 1
    assert snap["rejected_queue"] == 0
    assert snap["bytes_admitted"] == 150
    assert snap["latency"]["count"] == 1
    assert snap["latency"]["p50_s"] == pytest.approx(0.25)
    assert set(ctl.snapshot()) == {"a"}


# -- byte-accurate reconciliation --------------------------------------------

def test_settle_debt_prices_into_next_peek():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=10.0, clock=clock)
    bucket.take(4.0)
    bucket.settle(8.0)  # actual cost exceeded the estimate by 8
    assert bucket.tokens == pytest.approx(-2.0)  # debt
    assert bucket.peek(1.0) == pytest.approx(0.3)  # 3 tokens @ 10/s


def test_settle_refund_clamps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=10.0, clock=clock)
    bucket.take(3.0)
    bucket.settle(-100.0)  # over-refund must not mint tokens
    assert bucket.tokens == pytest.approx(10.0)


def test_reconcile_underestimate_charges_the_difference():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(
            requests_per_s=1000.0,
            request_burst=1000.0,
            bytes_per_s=100.0,
            byte_burst=100.0,
        ),
        clock=clock,
    )
    admission = ctl.admit("a", nbytes=10, wait=False)
    assert admission.charged == pytest.approx(10.0)
    # The read actually moved 90 backend bytes: 80 more drain now.
    ctl.reconcile(admission, actual_nbytes=90)
    with pytest.raises(QuotaExceededError) as err:
        ctl.admit("a", nbytes=50, wait=False)  # only 10 tokens remain
    assert err.value.retry_after == pytest.approx(0.4)
    snap = ctl.metrics("a")
    assert snap["bytes_admitted"] == 10
    assert snap["bytes_actual"] == 90
    assert snap["reconciled"] == 1


def test_reconcile_overestimate_refunds_unused_tokens():
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(
            requests_per_s=1000.0,
            request_burst=1000.0,
            bytes_per_s=100.0,
            byte_burst=100.0,
        ),
        clock=clock,
    )
    admission = ctl.admit("a", nbytes=80, wait=False)
    ctl.reconcile(admission, actual_nbytes=10)  # cache hit: cheap read
    # 100 - 80 + 70 refunded = 90 available right now.
    ctl.admit("a", nbytes=90, wait=False)


def test_reconcile_conserves_over_estimate_and_actual():
    """Whatever the estimates were, after reconciliation the bucket has
    drained exactly the *actual* bytes (modulo the burst clamp)."""
    clock = FakeClock()
    ctl = AdmissionController(
        default=TenantQuota(
            requests_per_s=1000.0,
            request_burst=1000.0,
            bytes_per_s=1.0,
            byte_burst=1000.0,
        ),
        clock=clock,
    )
    for estimate, actual in [(100, 37), (0, 250), (300, 300), (50, 0)]:
        admission = ctl.admit("a", nbytes=estimate, wait=False)
        ctl.reconcile(admission, actual_nbytes=actual)
    state = ctl._tenants["a"]
    assert state.bytes.tokens == pytest.approx(1000.0 - (37 + 250 + 300))
    assert ctl.metrics("a")["bytes_actual"] == 37 + 250 + 300


def test_reconcile_rejects_negative_actual():
    ctl = AdmissionController(clock=FakeClock())
    admission = ctl.admit("a", nbytes=1, wait=False)
    with pytest.raises(ConfigError):
        ctl.reconcile(admission, actual_nbytes=-1)


# -- concurrency -------------------------------------------------------------

def test_hammer_is_sanitizer_clean_and_conserves_tokens(lock_sanitizer):
    """Many threads, two tenants, mixed waiting and non-waiting admits:
    no lock-order inversions or unguarded writes, and the books balance
    (every thread's outcome is exactly one of admitted/typed-rejection)."""
    ctl = AdmissionController(
        default=TenantQuota(
            requests_per_s=400.0,
            request_burst=8.0,
            bytes_per_s=1e9,
            byte_burst=1e9,
            max_queue=4,
        )
    )
    n_threads, per_thread = 8, 25
    outcomes: list[str] = []
    outcomes_lock = threading.Lock()
    start = threading.Barrier(n_threads)

    def viewer(idx: int) -> None:
        tenant = "even" if idx % 2 == 0 else "odd"
        rng = np.random.default_rng(idx)
        start.wait()
        for i in range(per_thread):
            try:
                if rng.integers(2) == 0:
                    ctl.admit(tenant, nbytes=4096, timeout=0.05)
                else:
                    ctl.admit(tenant, nbytes=4096, wait=False)
                got = "admitted"
            except QuotaExceededError:
                got = "quota"
            except AdmissionQueueFullError:
                got = "queue"
            with outcomes_lock:
                outcomes.append(got)

    threads = [
        threading.Thread(target=viewer, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(outcomes) == n_threads * per_thread
    snap = ctl.snapshot()
    admitted = sum(s["admitted"] for s in snap.values())
    rej_quota = sum(s["rejected_quota"] for s in snap.values())
    rej_queue = sum(s["rejected_queue"] for s in snap.values())
    assert admitted == outcomes.count("admitted") > 0
    assert rej_quota == outcomes.count("quota")
    assert rej_queue == outcomes.count("queue")
    assert admitted + rej_quota + rej_queue == len(outcomes)
    lock_sanitizer.raise_on_violations()
    assert lock_sanitizer.violations == []
