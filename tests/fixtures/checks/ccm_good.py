"""Checks fixture: simmpi protocol — the blessed shapes.

Twins of ``ccm_bad.py``: collectives entered by both arms (the
aggregator pattern), sends matched by the peer arm's recv (directly
and through helpers), the parity-ordered halo exchange, and an
error-guard arm that only raises.  Expected: no CCM findings.
"""


def aggregator_pattern(comm, rank):
    if rank == 0:
        totals = comm.gather(local_sum(), root=0)
        return sum(totals)
    else:
        comm.gather(local_sum(), root=0)
        return None


def local_sum():
    return 1


def matched_pair(comm, rank):
    if rank == 0:
        comm.send(b"work", dest=1, tag=7)
        return None
    else:
        return comm.recv(source=0, tag=7)


def matched_through_helpers(comm, rank):
    if rank == 0:
        push(comm)
    else:
        pull(comm)


def push(comm):
    comm.send(b"x", dest=1, tag=2)


def pull(comm):
    return comm.recv(source=0, tag=2)


def parity_exchange(comm, rank, peer):
    if rank % 2 == 0:
        comm.send(b"edge", dest=peer, tag=5)
        return comm.recv(source=peer, tag=5)
    else:
        got = comm.recv(source=peer, tag=5)
        comm.send(b"edge", dest=peer, tag=5)
        return got


def guarded_self_send(comm, rank, dest):
    if dest == rank:
        raise ValueError("cannot send to self")  # error guard, not a role split
    comm.send(b"payload", dest=dest, tag=1)
