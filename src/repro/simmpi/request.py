"""Nonblocking communication requests (mpi4py-style ``isend``/``irecv``).

In the simulated runtime an eager ``isend`` completes locally at once
(the payload is buffered in the destination's mailbox); ``irecv``
returns a request whose ``wait`` performs the matching receive.  The
virtual-clock semantics follow MPI's progress model: the send's
transfer time is charged when the request is waited on, overlapping
with whatever compute the rank did in between (``wait`` only advances
the clock to the completion time if it is in the future).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.communicator import Communicator


class Request:
    """Handle for an in-flight nonblocking operation."""

    __slots__ = ("_comm", "_kind", "_done", "_value", "_complete_time", "_source", "_tag")

    def __init__(
        self,
        comm: "Communicator",
        kind: str,
        complete_time: float = 0.0,
        source: int = -1,
        tag: int = -1,
    ):
        self._comm = comm
        self._kind = kind
        self._done = False
        self._value: Any = None
        self._complete_time = complete_time
        self._source = source
        self._tag = tag

    @property
    def completed(self) -> bool:
        return self._done

    def wait(self) -> Any:
        """Block until the operation finishes; returns the received
        payload for ``irecv`` requests, ``None`` for ``isend``."""
        if self._done:
            return self._value
        if self._kind == "isend":
            # The transfer was scheduled at post time; completion means the
            # clock has passed the transfer's end.
            self._comm.clock.synchronize(self._complete_time)
        elif self._kind == "irecv":
            self._value = self._comm.recv(self._source, self._tag)
        else:  # pragma: no cover - defensive
            raise MPIError(f"unknown request kind {self._kind!r}")
        self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check (mpi4py's ``Request.test``).

        For ``irecv``, polls the mailbox without blocking.
        """
        if self._done:
            return True, self._value
        if self._kind == "isend":
            if self._comm.clock.now >= self._complete_time:
                self._done = True
                return True, None
            return False, None
        # irecv: poll the mailbox for a matching message.
        msg = self._comm._fabric.match_nowait(
            self._comm.rank, self._source, self._tag
        )
        if msg is None:
            return False, None
        self._comm.clock.synchronize(msg.send_time)
        self._comm.tracer.record(
            "recv", msg.nbytes, msg.source, self._comm.clock.now, self._comm.clock.now
        )
        self._value = msg.payload
        self._done = True
        return True, self._value

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<Request {self._kind} {state}>"
