"""1-D interpolation (``Das_interp1``, MATLAB ``interp1`` semantics)."""

from __future__ import annotations

import numpy as np


def interp1(
    x0: np.ndarray,
    y0: np.ndarray,
    x: np.ndarray,
    kind: str = "linear",
    fill_value: float | str = np.nan,
    axis: int = -1,
) -> np.ndarray:
    """Interpolate ``f(x0) = y0`` at query points ``x``.

    ``kind`` is ``"linear"`` or ``"nearest"``.  Out-of-range queries get
    ``fill_value`` (``"extrapolate"`` enables linear extrapolation).
    ``y0`` may be N-dimensional with the sample axis given by ``axis``.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if x0.ndim != 1:
        raise ValueError("x0 must be 1-D")
    if len(x0) < 2:
        raise ValueError("need at least two sample points")
    if y0.shape[axis] != len(x0):
        raise ValueError(
            f"y0 axis {axis} has length {y0.shape[axis]}, expected {len(x0)}"
        )
    if np.any(np.diff(x0) <= 0):
        order = np.argsort(x0, kind="stable")
        x0 = x0[order]
        y0 = np.take(y0, order, axis=axis)
        if np.any(np.diff(x0) <= 0):
            raise ValueError("x0 must contain distinct values")

    moved = np.moveaxis(y0, axis, -1)
    flat_x = x.reshape(-1)

    if kind == "nearest":
        mids = (x0[1:] + x0[:-1]) / 2.0
        idx = np.searchsorted(mids, flat_x)
        out = moved[..., idx]
    elif kind == "linear":
        idx = np.clip(np.searchsorted(x0, flat_x) - 1, 0, len(x0) - 2)
        x_lo = x0[idx]
        x_hi = x0[idx + 1]
        weight = (flat_x - x_lo) / (x_hi - x_lo)
        out = moved[..., idx] * (1.0 - weight) + moved[..., idx + 1] * weight
    else:
        raise ValueError(f"unknown interpolation kind {kind!r}")

    if fill_value != "extrapolate":
        outside = (flat_x < x0[0]) | (flat_x > x0[-1])
        if np.any(outside):
            out = np.array(out, dtype=np.float64)
            out[..., outside] = float(fill_value)

    out = out.reshape(moved.shape[:-1] + x.shape)
    if y0.ndim == 1:
        return out.reshape(x.shape)
    return np.moveaxis(out, -1, axis) if x.ndim == 1 else out
