"""Tests for the parallel read strategies (paper Fig. 5) and their
model-mode cost evaluation."""

import numpy as np
import pytest

from repro.cluster import cori_haswell, laptop
from repro.errors import StorageError
from repro.simmpi import run_spmd
from repro.storage.model import (
    files_per_rank,
    model_collective_per_file,
    model_communication_avoiding,
    model_rca_create,
    model_rca_read,
    model_search,
    model_vca_create,
)
from repro.storage.parallel_read import (
    channel_block,
    read_rca_direct,
    read_vca_collective_per_file,
    read_vca_communication_avoiding,
)
from repro.storage.rca import create_rca
from repro.storage.vca import create_vca


@pytest.fixture
def merged(das_dir, tmp_path):
    vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
    rca_path = create_rca(str(tmp_path / "r.h5"), das_dir["paths"])
    return {"vca": vca_path, "rca": rca_path, "full": das_dir["full"]}


class TestChannelBlock:
    def test_even_partition(self):
        assert channel_block(16, 4, 0) == (0, 4)
        assert channel_block(16, 4, 3) == (12, 16)

    def test_uneven_partition_covers_everything(self):
        blocks = [channel_block(11, 3, r) for r in range(3)]
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 11
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c
        sizes = [b - a for a, b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid(self):
        with pytest.raises(StorageError):
            channel_block(8, 0, 0)
        with pytest.raises(StorageError):
            channel_block(8, 2, 5)

    def test_files_per_rank_round_robin(self):
        assert files_per_rank(10, 4, 0) == 3
        assert files_per_rank(10, 4, 1) == 3
        assert files_per_rank(10, 4, 2) == 2
        assert sum(files_per_rank(10, 4, r) for r in range(4)) == 10


def _assemble(results, full, size):
    """Stack per-rank channel blocks and compare with the ground truth."""
    stacked = np.concatenate(results, axis=0)
    np.testing.assert_array_equal(stacked, full)


class TestCollectivePerFile:
    def test_correctness(self, merged):
        cluster = laptop()

        def fn(comm):
            return read_vca_collective_per_file(comm, merged["vca"], cluster.storage)

        result = run_spmd(fn, 4, cluster=cori_haswell(4), ranks_per_node=1)
        _assemble(result.results, merged["full"], 4)

    def test_uneven_ranks(self, merged):
        def fn(comm):
            return read_vca_collective_per_file(comm, merged["vca"])

        result = run_spmd(fn, 3)
        _assemble(result.results, merged["full"], 3)

    def test_one_broadcast_per_file(self, merged):
        def fn(comm):
            read_vca_collective_per_file(comm, merged["vca"])
            return [op for op, _, _ in comm.tracer.schedule() if op == "bcast"]

        result = run_spmd(fn, 4)
        assert all(len(bcasts) == 6 for bcasts in result.results)  # 6 files


class TestCommunicationAvoiding:
    def test_correctness(self, merged):
        cluster = laptop()

        def fn(comm):
            return read_vca_communication_avoiding(
                comm, merged["vca"], cluster.storage
            )

        result = run_spmd(fn, 4, cluster=cori_haswell(4), ranks_per_node=1)
        _assemble(result.results, merged["full"], 4)

    def test_more_ranks_than_files(self, merged):
        def fn(comm):
            return read_vca_communication_avoiding(comm, merged["vca"])

        result = run_spmd(fn, 8)
        _assemble(result.results, merged["full"], 8)

    def test_single_alltoall(self, merged):
        def fn(comm):
            read_vca_communication_avoiding(comm, merged["vca"])
            return [op for op, _, _ in comm.tracer.schedule() if op == "alltoallv"]

        result = run_spmd(fn, 4)
        assert all(len(a2a) == 1 for a2a in result.results)

    def test_faster_than_collective_in_virtual_time(self, merged):
        """The headline Fig. 7 property at small scale: the comm-avoiding
        reader's virtual makespan beats collective-per-file."""
        cluster = cori_haswell(8)

        def coll(comm):
            read_vca_collective_per_file(comm, merged["vca"], cluster.storage)

        def avoid(comm):
            read_vca_communication_avoiding(comm, merged["vca"], cluster.storage)

        t_coll = run_spmd(coll, 8, cluster=cluster, ranks_per_node=1).makespan
        t_avoid = run_spmd(avoid, 8, cluster=cluster, ranks_per_node=1).makespan
        assert t_avoid < t_coll


class TestUnevenFileLengths:
    """Acquisition restarts produce short files; the readers must handle
    sources of different time lengths."""

    @pytest.fixture
    def uneven(self, tmp_path):
        from repro.storage.dasfile import write_das_file
        from repro.storage.metadata import DASMetadata, timestamp_add_seconds

        rng = np.random.default_rng(7)
        stamp = "170620100545"
        blocks, paths = [], []
        for length in (120, 37, 120, 64):
            block = rng.normal(size=(16, length)).astype(np.float32)
            path = str(tmp_path / f"u_{stamp}.h5")
            write_das_file(
                path,
                block,
                DASMetadata(sampling_frequency=2.0, timestamp=stamp, n_channels=16),
                channel_groups=False,
            )
            blocks.append(block)
            paths.append(path)
            stamp = timestamp_add_seconds(stamp, 60)
        vca = create_vca(str(tmp_path / "uv.h5"), paths)
        return vca, np.concatenate(blocks, axis=1)

    def test_collective_reader(self, uneven):
        vca, full = uneven

        def fn(comm):
            return read_vca_collective_per_file(comm, vca)

        result = run_spmd(fn, 4)
        np.testing.assert_array_equal(
            np.concatenate(result.results, axis=0), full
        )

    def test_commavoid_reader(self, uneven):
        vca, full = uneven

        def fn(comm):
            return read_vca_communication_avoiding(comm, vca)

        result = run_spmd(fn, 3)
        np.testing.assert_array_equal(
            np.concatenate(result.results, axis=0), full
        )


class TestRCADirect:
    def test_correctness(self, merged):
        def fn(comm):
            return read_rca_direct(comm, merged["rca"])

        result = run_spmd(fn, 4)
        _assemble(result.results, merged["full"], 4)

    def test_single_request_per_rank(self, merged):
        from repro.utils.iostats import IOStats

        def fn(comm):
            return read_rca_direct(comm, merged["rca"])

        # a rank's channel block of a row-major array is contiguous:
        # verify via a solo read with instrumented I/O
        stats = IOStats()
        from repro.hdf5lite import File

        with File(merged["rca"], "r", iostats=stats) as f:
            before = stats.reads
            f.dataset("RCA")[0:4, :]
            assert stats.reads - before == 1


class TestCostModels:
    def test_commavoid_beats_collective_at_paper_scale(self):
        """Fig. 7 shape: ~37x on 90 ranks / 2880 files."""
        cluster = cori_haswell(90)
        p, n = 90, 2880
        file_bytes = 700 * 2**20
        coll = model_collective_per_file(cluster, p, n, file_bytes)
        avoid = model_communication_avoiding(cluster, p, n, file_bytes)
        ratio = coll.total / avoid.total
        assert ratio > 10, f"expected >10x, got {ratio:.1f}x"
        assert ratio < 200, f"implausibly large ratio {ratio:.1f}x"

    def test_commavoid_beats_rca_read(self):
        """Fig. 7: communication-avoiding is even faster than reading the
        physically merged RCA (which burns client bandwidth on one file)."""
        cluster = cori_haswell(90)
        n, p = 2880, 90
        file_bytes = 700 * 2**20
        avoid = model_communication_avoiding(cluster, p, n, file_bytes)
        rca = model_rca_read(cluster, p, n * file_bytes)
        assert avoid.total < rca.total

    def test_collective_slower_than_rca(self):
        """Fig. 7: collective-per-file is even more time-consuming than
        the RCA read."""
        cluster = cori_haswell(90)
        n, p = 720, 90
        file_bytes = 700 * 2**20
        coll = model_collective_per_file(cluster, p, n, file_bytes)
        rca = model_rca_read(cluster, p, n * file_bytes)
        assert coll.total > rca.total

    def test_vca_create_much_faster_than_rca_create(self):
        """Fig. 6: ~70,000x construction gap at 2880 files."""
        cluster = cori_haswell()
        n = 2880
        t_vca = model_vca_create(cluster, n)
        t_rca = model_rca_create(cluster, n, 700 * 2**20)
        assert t_rca / t_vca > 1000

    def test_rca_create_magnitude(self):
        """Paper: creating the 2880-file RCA took ~9978 s."""
        cluster = cori_haswell()
        t = model_rca_create(cluster, 2880, 700 * 2**20)
        assert 1500 < t < 30000

    def test_vca_create_magnitude(self):
        """Paper: creating a VCA took <= 0.01 s... per a handful of files;
        metadata cost stays tiny (sub-minute even for 2880 files)."""
        cluster = cori_haswell()
        assert model_vca_create(cluster, 2880) < 60.0

    def test_search_magnitude(self):
        """Paper: searching 2880 files took <= 0.002 s."""
        cluster = cori_haswell()
        assert model_search(cluster, 2880) <= 0.002

    def test_broadcast_count_bookkeeping(self):
        cluster = cori_haswell(16)
        coll = model_collective_per_file(cluster, 16, 100, 1000)
        avoid = model_communication_avoiding(cluster, 16, 100, 1000)
        assert coll.n_broadcasts == 100
        assert avoid.n_broadcasts == 0
        # collective I/O reads each file with k aggregators (stripes)
        assert coll.n_requests == 100 * cluster.storage.default_stripe_count
        assert avoid.n_requests == 100


class TestDtypeAccounting:
    """Regression: the readers charged `size * 4` bytes regardless of the
    dataset dtype; float64 sources were billed at half their real I/O."""

    @pytest.fixture
    def f64(self, tmp_path):
        from repro.storage.dasfile import write_das_file
        from repro.storage.metadata import DASMetadata, timestamp_add_seconds

        rng = np.random.default_rng(3)
        stamp = "170620100545"
        paths, blocks = [], []
        for _ in range(4):
            block = rng.normal(size=(8, 40))
            path = str(tmp_path / f"d_{stamp}.h5")
            write_das_file(
                path,
                block,
                DASMetadata(sampling_frequency=2.0, timestamp=stamp, n_channels=8),
                channel_groups=False,
                dtype=np.float64,
            )
            paths.append(path)
            blocks.append(block)
            stamp = timestamp_add_seconds(stamp, 60)
        vca = create_vca(str(tmp_path / "v64.h5"), paths, dtype=np.float64)
        rca = create_rca(str(tmp_path / "r64.h5"), paths, dtype=np.float64)
        return {"vca": vca, "rca": rca, "n_files": 4, "shape": (8, 40)}

    def test_commavoid_charges_itemsize_bytes(self, f64):
        cluster = cori_haswell(2)

        def fn(comm):
            read_vca_communication_avoiding(comm, f64["vca"], cluster.storage)
            return comm.tracer.schedule()

        result = run_spmd(fn, 2, cluster=cluster, ranks_per_node=1)
        rows, cols = f64["shape"]
        for rank, schedule in enumerate(result.results):
            reads = [s for s in schedule if s[0] == "read"]
            expected = files_per_rank(f64["n_files"], 2, rank) * rows * cols * 8
            assert reads[0][1] == expected

    def test_collective_charges_itemsize_bytes(self, f64):
        cluster = cori_haswell(2)

        def fn(comm):
            read_vca_collective_per_file(comm, f64["vca"], cluster.storage)
            return comm.tracer.schedule()

        result = run_spmd(fn, 2, cluster=cluster, ranks_per_node=1)
        rows, cols = f64["shape"]
        file_bytes = rows * cols * 8
        for schedule in result.results:
            agg_reads = [s for s in schedule if s[0] == "read" and s[1] > 0]
            assert all(r[1] == file_bytes for r in agg_reads)

    def test_rca_direct_charges_itemsize_bytes(self, f64):
        cluster = cori_haswell(2)

        def fn(comm):
            read_rca_direct(comm, f64["rca"], cluster.storage)
            return comm.tracer.schedule()

        result = run_spmd(fn, 2, cluster=cluster, ranks_per_node=1)
        rows, cols = f64["shape"]
        total_cols = f64["n_files"] * cols
        for rank, schedule in enumerate(result.results):
            lo, hi = channel_block(rows, 2, rank)
            reads = [s for s in schedule if s[0] == "read"]
            assert reads[0][1] == (hi - lo) * total_cols * 8


class TestPooledReaders:
    """The readers accept a shared FilePool: same results, fewer opens."""

    def _pooled_run(self, reader, path, ranks):
        from repro.hdf5lite import BlockCache, FilePool
        from repro.utils.iostats import IOStats

        stats = IOStats()
        cache = BlockCache(iostats=stats)
        with FilePool(iostats=stats, cache=cache) as pool:
            def fn(comm):
                return reader(comm, path, pool=pool, iostats=stats)

            result = run_spmd(fn, ranks)
        return result, stats

    def test_commavoid_pooled_matches_unpooled(self, merged):
        result, stats = self._pooled_run(
            read_vca_communication_avoiding, merged["vca"], 4
        )
        _assemble(result.results, merged["full"], 4)
        # 6 sources + the VCA file itself, each opened exactly once.
        assert stats.opens == 7

    def test_collective_pooled_matches_unpooled(self, merged):
        result, stats = self._pooled_run(
            read_vca_collective_per_file, merged["vca"], 4
        )
        _assemble(result.results, merged["full"], 4)
        assert stats.opens == 7

    def test_rca_pooled(self, merged):
        result, stats = self._pooled_run(read_rca_direct, merged["rca"], 4)
        _assemble(result.results, merged["full"], 4)
        assert stats.opens == 1


class TestTraceEquivalence:
    """The executed schedules match what the model assumes."""

    def test_collective_schedule_matches_model(self, merged):
        cluster = cori_haswell(4)

        def fn(comm):
            read_vca_collective_per_file(comm, merged["vca"], cluster.storage)
            return comm.tracer.schedule()

        result = run_spmd(fn, 4, cluster=cluster, ranks_per_node=1)
        n_files = 6
        for rank, schedule in enumerate(result.results):
            bcasts = [s for s in schedule if s[0] == "bcast"]
            reads = [s for s in schedule if s[0] == "read" and s[1] > 0]
            assert len(bcasts) == n_files
            # aggregator rotation: rank r reads files r, r+p, ...
            assert len(reads) == files_per_rank(n_files, 4, rank)

    def test_commavoid_schedule_matches_model(self, merged):
        cluster = cori_haswell(4)

        def fn(comm):
            read_vca_communication_avoiding(comm, merged["vca"], cluster.storage)
            return comm.tracer.schedule()

        result = run_spmd(fn, 4, cluster=cluster, ranks_per_node=1)
        for rank, schedule in enumerate(result.results):
            assert sum(1 for s in schedule if s[0] == "alltoallv") == 1
            reads = [s for s in schedule if s[0] == "read"]
            assert len(reads) == 1  # one batched read charge
            expected_bytes = files_per_rank(6, 4, rank) * 16 * 120 * 4
            assert reads[0][1] == expected_bytes
