"""Tests for scatterv/gatherv, communicator split, and chunked engine runs."""

import numpy as np
import pytest

from repro.arrayudf.engine import HybridEngine, MPIEngine
from repro.cluster import laptop
from repro.errors import MPIError
from repro.simmpi import run_spmd


class TestScattervGatherv:
    def test_uneven_scatter(self):
        counts = [3, 1, 2]

        def fn(comm):
            data = list(range(6)) if comm.rank == 0 else None
            return comm.scatterv(data, counts, root=0)

        result = run_spmd(fn, 3)
        assert result.results == [[0, 1, 2], [3], [4, 5]]

    def test_zero_count_rank(self):
        counts = [2, 0, 1]

        def fn(comm):
            data = ["a", "b", "c"] if comm.rank == 0 else None
            return comm.scatterv(data, counts, root=0)

        result = run_spmd(fn, 3)
        assert result.results == [["a", "b"], [], ["c"]]

    def test_scatterv_length_mismatch(self):
        def fn(comm):
            comm.scatterv([1, 2], [2, 2], root=0)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_scatterv_bad_counts(self):
        def fn(comm):
            comm.scatterv([1], [1], root=0)  # wrong number of counts

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_gatherv_concatenates_in_rank_order(self):
        def fn(comm):
            mine = list(range(comm.rank + 1))
            return comm.gatherv(mine, root=0)

        result = run_spmd(fn, 3)
        assert result.results[0] == [0, 0, 1, 0, 1, 2]
        assert result.results[1] is None

    def test_scatterv_gatherv_roundtrip(self):
        counts = [1, 4, 2, 3]
        payload = list(range(10))

        def fn(comm):
            mine = comm.scatterv(payload if comm.rank == 0 else None, counts, root=0)
            return comm.gatherv(mine, root=0)

        result = run_spmd(fn, 4)
        assert result.results[0] == payload


class TestSplit:
    def test_split_into_two_groups(self):
        def fn(comm):
            color = comm.rank % 2
            sub = comm.split(color)
            total = sub.allreduce(comm.rank)
            return (color, sub.rank, sub.size, total)

        result = run_spmd(fn, 6)
        evens = [r for r in result.results if r[0] == 0]
        odds = [r for r in result.results if r[0] == 1]
        assert all(r[2] == 3 for r in evens + odds)
        assert {r[1] for r in evens} == {0, 1, 2}
        assert all(r[3] == 0 + 2 + 4 for r in evens)
        assert all(r[3] == 1 + 3 + 5 for r in odds)

    def test_split_single_color(self):
        def fn(comm):
            sub = comm.split(0)
            return (sub.rank, sub.size)

        result = run_spmd(fn, 4)
        assert result.results == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_split_key_reorders(self):
        def fn(comm):
            # reverse ordering via key
            sub = comm.split(0, key=comm.size - comm.rank)
            return sub.rank

        result = run_spmd(fn, 4)
        assert result.results == [3, 2, 1, 0]

    def test_split_point_to_point_within_group(self):
        def fn(comm):
            sub = comm.split(comm.rank // 2)
            if sub.rank == 0:
                sub.send(f"from-{comm.rank}", dest=1)
                return None
            return sub.recv(source=0)

        result = run_spmd(fn, 4)
        assert result.results[1] == "from-0"
        assert result.results[3] == "from-2"

    def test_negative_color_rejected(self):
        def fn(comm):
            comm.split(-1)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_per_node_subcommunicators(self):
        """The hybrid-engine pattern: one sub-communicator per node."""
        from repro.cluster import cori_haswell

        def fn(comm):
            node_comm = comm.split(comm.node)
            return (comm.node, node_comm.size, node_comm.allreduce(1))

        result = run_spmd(fn, 8, cluster=cori_haswell(2), ranks_per_node=4)
        assert all(size == 4 and total == 4 for (_, size, total) in result.results)
        assert {node for node, _, _ in result.results} == {0, 1}


class TestRunChunked:
    def test_vectorised_matches_per_cell(self):
        data = np.random.default_rng(0).normal(size=(24, 40))
        cluster = laptop(nodes=4, cores=2)
        engine = MPIEngine(cluster, 4, ranks_per_node=1)
        per_cell = engine.run(data, lambda s: 2.0 * s.value()).result
        chunked = engine.run_chunked(data, lambda block: 2.0 * block).result
        np.testing.assert_allclose(chunked, per_cell)

    def test_halo_trimming(self):
        data = np.arange(16 * 4, dtype=np.float64).reshape(16, 4)
        engine = HybridEngine(laptop(nodes=4, cores=2), 4, threads_per_rank=2)

        def shift_sum(block):
            padded = np.pad(block, ((1, 1), (0, 0)), mode="edge")
            return padded[:-2] + padded[2:]

        out = engine.run_chunked(data, shift_sum, halo=1).result
        padded = np.pad(data, ((1, 1), (0, 0)), mode="edge")
        expected = padded[:-2] + padded[2:]
        np.testing.assert_allclose(out, expected)

    def test_shared_state_broadcast(self):
        data = np.random.default_rng(1).normal(size=(12, 30))
        engine = MPIEngine(laptop(nodes=3, cores=2), 3, ranks_per_node=1)

        def make_state(source):
            return np.asarray(source[0:1, :]).sum()

        def udf(block, state):
            return block + state

        out = engine.run_chunked(data, udf, shared_state=make_state).result
        np.testing.assert_allclose(out, data + data[0].sum())

    def test_output_written_to_disk(self, tmp_path):
        from repro.hdf5lite import File

        data = np.random.default_rng(2).normal(size=(8, 10))
        engine = MPIEngine(laptop(nodes=2, cores=2), 2, ranks_per_node=1)
        out_path = str(tmp_path / "out.h5")
        result = engine.run_chunked(
            data, lambda block: block * 3.0, output_path=out_path
        )
        with File(out_path, "r") as f:
            np.testing.assert_allclose(f.dataset("Output").read(), data * 3.0)
        np.testing.assert_allclose(result.result, data * 3.0)

    def test_wrong_output_rows_rejected(self):
        data = np.zeros((8, 10))
        engine = MPIEngine(laptop(nodes=2, cores=2), 2, ranks_per_node=1)
        with pytest.raises(MPIError, match="rows"):
            engine.run_chunked(data, lambda block: block[:1])
