"""Fixture-pair tests for the flow-sensitive analyzer families:
CCM (simmpi protocol), RES (resource lifecycle), ATM (atomic
persistence) — plus the line-drift stability of fingerprints."""

from collections import Counter
from pathlib import Path

from repro.checks.atm import AtomicPersistenceAnalyzer
from repro.checks.baseline import Baseline
from repro.checks.ccm import CommProtocolAnalyzer
from repro.checks.res import ResourceLifecycleAnalyzer
from repro.checks.source import Project, load_module

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "checks"


def project_for(name: str) -> Project:
    mod = load_module(FIXTURES / name, f"tests/fixtures/checks/{name}")
    return Project(root=FIXTURES, modules=[mod])


def codes(findings) -> Counter:
    return Counter(f.code for f in findings)


# -- CCM: simmpi protocol ----------------------------------------------------

def test_ccm_good_is_clean():
    findings = list(CommProtocolAnalyzer().run(project_for("ccm_good.py")))
    assert findings == [], [f.format() for f in findings]


def test_ccm_bad_findings():
    findings = list(CommProtocolAnalyzer().run(project_for("ccm_bad.py")))
    assert codes(findings) == {"CCM001": 2, "CCM002": 1, "CCM003": 1}


def test_ccm_collective_found_interprocedurally():
    """reduce_through_helper never names a collective itself — the
    reduce sits one call deep, behind ``collect``."""
    findings = list(CommProtocolAnalyzer().run(project_for("ccm_bad.py")))
    assert any(
        f.code == "CCM001" and "reduce_through_helper" in f.message
        for f in findings
    )


def test_ccm_matched_send_recv_through_helpers_is_clean():
    """The good twin of the interprocedural case: push/pull helpers
    pair a send with its recv across the rank branch."""
    findings = list(CommProtocolAnalyzer().run(project_for("ccm_good.py")))
    assert not any("matched_through_helpers" in f.message for f in findings)


def test_ccm_error_guard_arm_is_not_a_role_split():
    findings = list(CommProtocolAnalyzer().run(project_for("ccm_good.py")))
    assert not any("guarded_self_send" in f.message for f in findings)


# -- RES: resource lifecycle -------------------------------------------------

def test_res_good_is_clean():
    findings = list(ResourceLifecycleAnalyzer().run(project_for("res_good.py")))
    assert findings == [], [f.format() for f in findings]


def test_res_bad_findings():
    findings = list(ResourceLifecycleAnalyzer().run(project_for("res_bad.py")))
    assert codes(findings) == {"RES001": 3, "RES002": 3}


def test_res_leak_reported_on_exception_path_only_when_closed_normally():
    """leak_on_exception closes on the happy path; only the exception
    edge between open and close leaks."""
    findings = list(ResourceLifecycleAnalyzer().run(project_for("res_bad.py")))
    exc_leaks = [
        f for f in findings
        if f.code == "RES001" and "leak_on_exception" in f.message
    ]
    assert len(exc_leaks) == 1
    assert "exception path" in exc_leaks[0].message


def test_res_holds_lock_method_composes_with_guarded_by():
    """``drain`` never takes the lock lexically — the # holds-lock
    marker plus the class's # guarded-by declaration supply it."""
    findings = list(ResourceLifecycleAnalyzer().run(project_for("res_bad.py")))
    drain_line = next(
        i for i, raw in enumerate(
            (FIXTURES / "res_bad.py").read_text().splitlines(), start=1
        )
        if "recv(4096)" in raw
    )
    assert any(f.code == "RES002" and f.line == drain_line for f in findings)


# -- ATM: atomic persistence -------------------------------------------------

def test_atm_good_is_clean():
    findings = list(AtomicPersistenceAnalyzer().run(project_for("atm_good.py")))
    assert findings == [], [f.format() for f in findings]


def test_atm_bad_findings():
    findings = list(AtomicPersistenceAnalyzer().run(project_for("atm_bad.py")))
    assert codes(findings) == {"ATM001": 2, "ATM002": 1, "ATM003": 1}


def test_atm_noqa_suppresses_write(tmp_path):
    src = (
        "def save_report(path, text):\n"
        "    with open(path, \"w\") as fh:"
        "  # noqa: ATM001 - throwaway artifact\n"
        "        fh.write(text)\n"
    )
    path = tmp_path / "mod.py"
    path.write_text(src)
    project = Project(root=tmp_path, modules=[load_module(path, "mod.py")])
    assert list(AtomicPersistenceAnalyzer().run(project)) == []


# -- fingerprints ------------------------------------------------------------

def test_fingerprint_survives_line_drift(tmp_path):
    """Shifting a finding down the file (new code above it) must not
    change its fingerprint — else baselines churn on every edit."""
    body = (
        "def save_bare(path, payload):\n"
        "    with open(path, \"w\") as fh:\n"
        "        fh.write(payload)\n"
    )
    shifted = "# a comment\n\n\ndef unrelated():\n    return 1\n\n\n" + body

    def fingerprint(text: str) -> tuple[str, int]:
        path = tmp_path / "mod.py"
        path.write_text(text)
        project = Project(root=tmp_path, modules=[load_module(path, "mod.py")])
        (finding,) = AtomicPersistenceAnalyzer().run(project)
        return finding.fingerprint, finding.line

    original, line_one = fingerprint(body)
    drifted, line_two = fingerprint(shifted)
    assert line_one != line_two
    assert original == drifted


def test_baseline_matches_drifted_finding(tmp_path):
    """End to end: a finding pinned in the baseline stays pinned after
    its line moves."""
    body = (
        "def save_bare(path, payload):\n"
        "    with open(path, \"w\") as fh:\n"
        "        fh.write(payload)\n"
    )

    def findings_for(text: str):
        path = tmp_path / "mod.py"
        path.write_text(text)
        project = Project(root=tmp_path, modules=[load_module(path, "mod.py")])
        return list(AtomicPersistenceAnalyzer().run(project))

    first = findings_for(body)
    baseline_path = tmp_path / "baseline.json"
    Baseline.load(None).save(baseline_path, first)
    drifted = findings_for("\n\n\n" + body)
    new, baselined = Baseline.load(baseline_path).split(drifted)
    assert new == []
    assert len(baselined) == 1
