"""Compute-model calibration.

Estimate-mode results convert samples to seconds through
:class:`~repro.arrayudf.engine.ComputeModel`.  Rather than inventing
``seconds_per_sample``, this module *measures* it: run the actual kernel
on a real block on this machine and scale by the ratio of a reference
core's throughput to this machine's (both measured with the same
numpy-heavy probe).  The paper's own methodology is the same in spirit —
its absolute times come from Cori runs; ours come from calibrated local
runs projected onto the Cori model.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.arrayudf.engine import ComputeModel
from repro.errors import ConfigError


def measure_seconds_per_sample(
    kernel: Callable[[np.ndarray], object],
    block: np.ndarray,
    repeats: int = 3,
) -> float:
    """Wall-time of ``kernel(block)`` per input sample (best of N)."""
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    block = np.asarray(block)
    if block.size == 0:
        raise ConfigError("cannot calibrate on an empty block")
    kernel(block)  # warm-up (allocations, plan caches)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel(block)
        best = min(best, time.perf_counter() - t0)
    return best / block.size


def machine_speed_probe(n: int = 2**18, repeats: int = 3) -> float:
    """Throughput of a numpy-heavy probe (samples/second) on this host.

    Used to translate kernel timings between machines: the same probe on
    the reference machine defines the scale.
    """
    rng = np.random.default_rng(0)
    x = rng.normal(size=n)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        spectrum = np.fft.rfft(x)
        y = np.fft.irfft(spectrum * np.conj(spectrum), n)
        float(y.sum())
        best = min(best, time.perf_counter() - t0)
    return n / best


def calibrate(
    kernel: Callable[[np.ndarray], object],
    block: np.ndarray,
    target_speed: float | None = None,
    thread_coordination: float = 0.03,
    repeats: int = 3,
) -> ComputeModel:
    """Build a :class:`ComputeModel` from a measured kernel.

    ``target_speed`` is the probe throughput of the machine being
    modelled (e.g. a Cori Haswell core); when given, the measured
    per-sample cost is rescaled by ``local_speed / target_speed`` so the
    model speaks in target-machine seconds.
    """
    sps = measure_seconds_per_sample(kernel, block, repeats=repeats)
    if target_speed is not None:
        if target_speed <= 0:
            raise ConfigError("target_speed must be positive")
        sps *= machine_speed_probe() / target_speed
    return ComputeModel(seconds_per_sample=sps, thread_coordination=thread_coordination)
