"""Shard supervision: failure detection, restart, and catalog merge.

Rank 0 of a sharded RT run is the supervisor.  It owns three pieces:

* :class:`HeartbeatMonitor` — a pure, injectable-clock state machine
  per shard: ``alive`` → (missed deadline) → ``suspect`` → (longer
  miss) → ``dead``.  A beat with a *higher incarnation* revives any
  state; a same-incarnation beat only revives ``suspect`` (a dead
  shard must come back as a new incarnation — fencing against a zombie
  process beating after its replacement started).
* :class:`CatalogAggregator` — the merged event catalog.  Ingestion is
  idempotent on ``(shard, record, j_start, j_end)`` — a restarted
  shard replays its whole local log and every already-applied row is
  counted as a duplicate, not double-counted.  Reads support a
  bounded-staleness contract: ``read(max_staleness_s=...)`` raises a
  typed :class:`~repro.errors.StaleReadError` naming the shards whose
  contributions are older than the bound.
* :func:`supervisor_main` — the polling loop: drain events and beats,
  drive the monitor, command restarts (restoring the failed rank on
  the fabric first), publish per-shard health to an atomic JSON file,
  stop everyone once all shards report complete, and return the merged
  catalog plus recovery timings.

:func:`run_sharded` is the one-call driver: it lays supervisor + N
shards onto ``simmpi`` ranks via ``run_spmd`` and returns the
supervisor's result.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError, MPIError, StaleReadError
from repro.faults.chaos import ChaosSchedule
from repro.rt.events import SeamEvent
from repro.rt.shard import (
    SUPERVISOR_RANK,
    TAG_COMMAND,
    TAG_EVENTS,
    TAG_HEARTBEAT,
    ShardOptions,
    ShardSpec,
    shard_main,
)
from repro.simmpi.executor import run_spmd
from repro.simmpi.fabric import ANY_SOURCE

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "RESTARTING",
    "STOPPED",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "CatalogAggregator",
    "catalog_signature",
    "SupervisorConfig",
    "supervisor_main",
    "run_sharded",
    "HEALTH_NAME",
]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
RESTARTING = "restarting"
STOPPED = "stopped"

HEALTH_NAME = ".das_shard_health.json"


@dataclass(frozen=True)
class HeartbeatConfig:
    """Deadlines of the failure detector (seconds of silence).

    ``suspect_after``/``dead_after`` are measured from the last beat;
    ``restart_grace`` bounds how long a commanded restart may take
    before the shard is declared dead *again* (and restarted again, up
    to the supervisor's ``max_restarts``).

    Defaults are sized for real minute-file workloads: shards beat
    after every processed file, so the silent window of a *healthy*
    shard is one file's processing time — ``dead_after`` must exceed
    the worst single-file cost or busy shards get restart-thrashed.
    Tests pass much tighter deadlines explicitly.
    """

    interval: float = 0.05
    suspect_after: float = 10.0
    dead_after: float = 30.0
    restart_grace: float = 30.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError("heartbeat interval must be > 0")
        if not self.interval <= self.suspect_after < self.dead_after:
            raise ConfigError(
                "need interval <= suspect_after < dead_after "
                f"(got {self.interval}, {self.suspect_after}, {self.dead_after})"
            )
        if self.restart_grace <= 0:
            raise ConfigError("restart_grace must be > 0")


class HeartbeatMonitor:
    """Missed-deadline failure detection, one state machine per shard.

    Pure and clock-injected: every transition is driven by explicit
    ``now`` values, so the whole machine is unit-testable without
    sleeping.  :meth:`poll` returns the shards that *newly* became dead
    — the supervisor acts exactly once per death.
    """

    def __init__(self, config: HeartbeatConfig, shards, now: float = 0.0):
        self.config = config
        shards = list(shards)
        if not shards:
            raise ConfigError("monitor needs at least one shard")
        self._last: dict[int, float] = {s: float(now) for s in shards}
        self._incarnation: dict[int, int] = {s: -1 for s in shards}
        self._state: dict[int, str] = {s: ALIVE for s in shards}
        self._marked: dict[int, float] = {}

    def _known(self, shard: int) -> None:
        if shard not in self._state:
            raise ConfigError(f"unknown shard {shard}")

    def beat(self, shard: int, incarnation: int, now: float) -> str:
        """Apply one heartbeat; returns the resulting state."""
        self._known(shard)
        state = self._state[shard]
        if state == STOPPED:
            return state
        if incarnation > self._incarnation[shard]:
            # A new incarnation revives anything — this is the restarted
            # process announcing itself.
            self._incarnation[shard] = int(incarnation)
            self._last[shard] = float(now)
            self._state[shard] = ALIVE
            self._marked.pop(shard, None)
        elif state in (ALIVE, SUSPECT):
            self._last[shard] = float(now)
            self._state[shard] = ALIVE
        # A same-incarnation beat while DEAD/RESTARTING is a zombie —
        # the supervisor already decided to replace this process; its
        # late beats must not cancel the restart (fencing).
        return self._state[shard]

    def mark_restarting(self, shard: int, now: float) -> None:
        self._known(shard)
        self._state[shard] = RESTARTING
        self._marked[shard] = float(now)

    def mark_stopped(self, shard: int) -> None:
        self._known(shard)
        self._state[shard] = STOPPED

    def poll(self, now: float) -> list[int]:
        """Advance deadlines; returns shards that just became dead."""
        newly_dead: list[int] = []
        for shard, state in self._state.items():
            if state in (DEAD, STOPPED):
                continue
            if state == RESTARTING:
                if now - self._marked[shard] >= self.config.restart_grace:
                    self._state[shard] = DEAD
                    newly_dead.append(shard)
                continue
            silence = now - self._last[shard]
            if silence >= self.config.dead_after:
                self._state[shard] = DEAD
                newly_dead.append(shard)
            elif silence >= self.config.suspect_after:
                self._state[shard] = SUSPECT
        return newly_dead

    def state(self, shard: int) -> str:
        self._known(shard)
        return self._state[shard]

    def states(self) -> dict[int, str]:
        return dict(self._state)

    def silence(self, shard: int, now: float) -> float:
        self._known(shard)
        return max(0.0, float(now) - self._last[shard])


class CatalogAggregator:
    """The merged multi-shard event catalog with idempotent ingestion.

    ``channel_bases`` maps shard id → first global channel it owns;
    events arrive in shard-local channel coordinates and are rebased on
    apply.  The idempotency key is ``(shard, record, j_start, j_end)``
    — deterministic for a given input stream, so a replayed row maps to
    the same key and is dropped as a duplicate.
    """

    def __init__(self, channel_bases: dict[int, int], now: float = 0.0):
        self._bases = {int(s): int(b) for s, b in channel_bases.items()}
        self._rows: dict[tuple, tuple[int, str, SeamEvent]] = {}
        self._last_applied: dict[int, float] = {
            s: float(now) for s in self._bases
        }
        self.duplicates = 0
        self.applied = 0

    def apply(self, shard: int, rows, now: float) -> int:
        """Merge ``[(record, SeamEvent), ...]`` from one shard; returns
        how many rows were new."""
        if shard not in self._bases:
            raise ConfigError(f"unknown shard {shard}")
        base = self._bases[shard]
        added = 0
        for record, event in rows:
            key = (shard, str(record), event.j_start, event.j_end)
            if key in self._rows:
                self.duplicates += 1
                continue
            self._rows[key] = (shard, str(record), event.rebased(base))
            added += 1
        self.applied += added
        self._last_applied[shard] = float(now)
        return added

    def staleness(self, now: float) -> dict[int, float]:
        return {
            s: max(0.0, float(now) - t) for s, t in self._last_applied.items()
        }

    def read(
        self,
        now: float = 0.0,
        max_staleness_s: float | None = None,
        exempt=(),
    ) -> list[tuple[int, str, SeamEvent]]:
        """The merged catalog, canonically ordered.

        With ``max_staleness_s`` set, every shard not in ``exempt``
        (dead/stopped shards, typically) must have applied an update
        within the bound, else :class:`~repro.errors.StaleReadError`
        names the violators — the caller chooses between retrying,
        widening the bound, or reading anyway with ``None``.
        """
        if max_staleness_s is not None:
            exempt = set(exempt)
            stale = {
                s: age
                for s, age in self.staleness(now).items()
                if s not in exempt and age > max_staleness_s
            }
            if stale:
                raise StaleReadError(stale, max_staleness_s)
        return sorted(
            self._rows.values(),
            key=lambda row: (
                row[2].event.t_start,
                row[0],
                row[1],
                row[2].j_start,
                row[2].j_end,
            ),
        )

    def __len__(self) -> int:
        return len(self._rows)


def catalog_signature(rows) -> list[tuple]:
    """Order-independent, label-free identity of a merged catalog.

    ``rows`` is ``[(shard, record, SeamEvent), ...]``.  Labels are
    excluded (they number emission order, which replay may permute);
    everything physical — spans, global channels, times, peak, cell
    count, kind — participates, so "event-for-event identical" is
    exactly signature equality.
    """
    out = []
    for shard, record, seam_event in rows:
        ev = seam_event.event
        out.append(
            (
                int(shard),
                str(record),
                seam_event.j_start,
                seam_event.j_end,
                ev.kind,
                ev.channel_lo,
                ev.channel_hi,
                ev.n_cells,
                round(ev.t_start, 6),
                round(ev.t_end, 6),
                round(ev.peak_similarity, 6),
                round(ev.speed_channels_per_s, 6),
            )
        )
    return sorted(out)


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervisor loop knobs."""

    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    max_restarts: int = 3
    poll_sleep: float = 0.002
    wall_timeout: float = 600.0
    staleness_bound_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.wall_timeout <= 0:
            raise ConfigError("wall_timeout must be > 0")


def _write_health(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def supervisor_main(
    comm,
    specs: list[ShardSpec],
    config: SupervisorConfig,
    health_path: str | None = None,
    clock=time.monotonic,
) -> dict:
    """Rank 0: supervise the shards, merge the catalog, report health."""
    shard_ids = [spec.shard_id for spec in specs]
    now = clock()
    monitor = HeartbeatMonitor(config.heartbeat, shard_ids, now=now)
    aggregator = CatalogAggregator(
        {spec.shard_id: spec.channel_base for spec in specs}, now=now
    )
    rank_of = {spec.shard_id: spec.rank for spec in specs}
    status: dict[int, dict] = {
        sid: {
            "incarnation": 0,
            "ingested": 0,
            "events": 0,
            "quarantined": 0,
            "complete": False,
            "stopped": False,
            "restarts": 0,
        }
        for sid in shard_ids
    }
    dead_since: dict[int, float] = {}
    recovery_s: dict[int, list[float]] = {sid: [] for sid in shard_ids}
    fabric = comm.fabric
    deadline = clock() + config.wall_timeout
    stop_sent = False

    def drain() -> None:
        now = clock()
        while True:
            msg = fabric.match_nowait(SUPERVISOR_RANK, ANY_SOURCE, TAG_EVENTS)
            if msg is None:
                break
            payload = msg.payload
            aggregator.apply(payload["shard"], payload["rows"], now=now)
        while True:
            msg = fabric.match_nowait(SUPERVISOR_RANK, ANY_SOURCE, TAG_HEARTBEAT)
            if msg is None:
                break
            beat = msg.payload
            sid = beat["shard"]
            previous = status[sid]["incarnation"]
            monitor.beat(sid, beat["incarnation"], now=now)
            if beat["incarnation"] > previous and sid in dead_since:
                recovery_s[sid].append(now - dead_since.pop(sid))
            for key in (
                "incarnation", "ingested", "events",
                "quarantined", "complete", "restarts",
            ):
                status[sid][key] = beat[key]
            if beat.get("stopped"):
                status[sid]["stopped"] = True
                monitor.mark_stopped(sid)

    while not all(status[sid]["stopped"] for sid in shard_ids):
        now = clock()
        if now > deadline:
            raise MPIError(
                f"sharded run exceeded wall timeout {config.wall_timeout}s; "
                f"states={monitor.states()} status={status}"
            )
        drain()
        for sid in monitor.poll(now):
            if status[sid]["restarts"] >= config.max_restarts:
                raise MPIError(
                    f"shard {sid} dead after {config.max_restarts} restarts"
                )
            dead_since.setdefault(sid, now)
            rank = rank_of[sid]
            # Restore the failed rank first: posts to a failed rank are
            # dropped, and the replacement process starts with an empty
            # mailbox either way.
            fabric.restore_rank(rank)
            comm.send({"cmd": "restart"}, dest=rank, tag=TAG_COMMAND)
            monitor.mark_restarting(sid, now)
            status[sid]["restarts"] += 1
        if not stop_sent and all(
            status[sid]["complete"] and monitor.state(sid) == ALIVE
            for sid in shard_ids
        ):
            for sid in shard_ids:
                comm.send({"cmd": "stop"}, dest=rank_of[sid], tag=TAG_COMMAND)
            stop_sent = True
        if health_path is not None:
            _write_health(health_path, _health_payload(
                monitor, status, recovery_s, clock()
            ))
        time.sleep(config.poll_sleep)
    # Final drain: every shard posted its tail events *before* its
    # stopped beat, and fabric posts are seq-ordered per mailbox, so
    # one more drain after the last stopped beat sees everything.
    drain()
    rows = aggregator.read(
        now=clock(),
        max_staleness_s=config.staleness_bound_s,
        exempt=[sid for sid in shard_ids if status[sid]["stopped"]],
    )
    health = _health_payload(monitor, status, recovery_s, clock())
    if health_path is not None:
        _write_health(health_path, health)
    return {
        "rows": rows,
        "signature": catalog_signature(rows),
        "health": health,
        "recovery_s": {s: list(v) for s, v in recovery_s.items()},
        "restarts": {s: status[s]["restarts"] for s in shard_ids},
        "duplicates": aggregator.duplicates,
        "events": len(rows),
    }


def _health_payload(monitor, status, recovery_s, now) -> dict:
    return {
        "updated_unix": time.time(),
        "shards": {
            str(sid): {
                "state": monitor.state(sid),
                "silence_s": round(monitor.silence(sid, now), 4),
                "recoveries_s": [round(r, 4) for r in recovery_s[sid]],
                **status[sid],
            }
            for sid in status
        },
    }


def run_sharded(
    specs: list[ShardSpec],
    options: ShardOptions | None = None,
    supervisor: SupervisorConfig | None = None,
    chaos: ChaosSchedule | None = None,
    health_path: str | None = None,
    cluster=None,
) -> dict:
    """Run supervisor + one rank per shard; returns the merged result.

    The chaos schedule (if any) is split per shard; each shard rank
    interprets only its own actions.  ``cluster`` (a
    :class:`~repro.cluster.machine.ClusterSpec`) attaches the virtual
    network cost model to every message for scaling studies.
    """
    if not specs:
        raise ConfigError("need at least one shard spec")
    ids = [spec.shard_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ConfigError(f"duplicate shard ids: {sorted(ids)}")
    options = options if options is not None else ShardOptions()
    supervisor = supervisor if supervisor is not None else SupervisorConfig()
    by_rank = {spec.rank: spec for spec in specs}

    def rank_main(comm):
        if comm.rank == SUPERVISOR_RANK:
            return supervisor_main(
                comm, specs, supervisor, health_path=health_path
            )
        spec = by_rank[comm.rank]
        actions = chaos.for_shard(spec.shard_id) if chaos is not None else []
        return shard_main(comm, spec, options, actions)

    result = run_spmd(
        rank_main,
        size=len(specs) + 1,
        cluster=cluster,
        trace=False,
        recv_timeout=supervisor.wall_timeout,
    )
    merged = dict(result.results[SUPERVISOR_RANK])
    merged["shard_results"] = {
        shard_result["shard"]: shard_result
        for shard_result in result.results[1:]
    }
    merged["makespan_virtual_s"] = result.makespan
    return merged
