"""Per-chunk compression codecs for hdf5lite datasets.

The paper's whole I/O argument (§IV, Figs. 6-9) is about bytes moved per
analysis pass; this module shrinks those bytes at the storage layer.  A
chunked dataset may carry a ``repro:codec`` attribute naming the codec
its chunks were encoded with — files without the attribute hold raw
chunk bytes and stay readable by every pre-codec reader unchanged.

Codecs are small objects with ``encode(array) -> bytes`` and
``decode(payload, shape, dtype) -> array``; they are looked up from a
registry by *spec string* so the choice round-trips through the
attribute footer:

``delta-zlib[:level]``
    Lossless.  The chunk's raw bit patterns (viewed as unsigned
    integers) are delta-encoded with a previous-sample predictor —
    modular arithmetic, so the inverse ``cumsum`` is exact for every
    input — then deflated.  Best for slowly varying integer-like data.
``transpose-zlib[:level]``
    Lossless.  Bitshuffle-style *byte* transpose: the i-th byte of every
    element is grouped together before deflate, so the highly redundant
    sign/exponent bytes of float DAS samples compress independently of
    the noisy mantissa bytes.  The default lossless choice for floats.
``quantize:<tol>[:level]``
    Controlled loss (DASPack direction): finite values are quantized to
    a declared absolute tolerance — ``|decoded - original| <= tol`` —
    and the resulting integer stream is delta-encoded (the residual
    stream of a previous-sample predictor) then deflated.  Non-finite
    samples (the NaN fills of degraded reads) are preserved bit-exactly
    via a side list.

Composition with the fault/perf layers happens in
:mod:`repro.hdf5lite.dataset`: CRC32 sidecars checksum the *encoded*
bytes (corruption is caught before decode), and the
:class:`~repro.hdf5lite.cache.BlockCache` admits *decoded* chunks, so
decompression runs once per cached block and the warm path pays zero
CPU for compression.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, FormatError

__all__ = [
    "CODEC_ATTR",
    "Codec",
    "DeltaZlibCodec",
    "TransposeZlibCodec",
    "QuantizeCodec",
    "available_codecs",
    "register_codec",
    "resolve_codec",
]

#: Dataset attribute naming the codec its chunks are encoded with.
CODEC_ATTR = "repro:codec"

#: Default deflate level (zlib's own default trade-off).
DEFAULT_LEVEL = 6

_UINT_FOR_ITEMSIZE = {
    1: np.uint8,
    2: np.uint16,
    4: np.uint32,
    8: np.uint64,
}


def _element_count(shape: Sequence[int]) -> int:
    return int(np.prod(shape, dtype=np.int64)) if len(shape) else 1


def _check_level(level: int) -> int:
    level = int(level)
    if not 0 <= level <= 9:
        raise ConfigError(f"zlib level must be in [0, 9], got {level}")
    return level


def _check_decoded_size(payload_len: int, shape: Sequence[int], dtype: np.dtype) -> int:
    n = _element_count(shape)
    expected = n * dtype.itemsize
    if payload_len != expected:
        raise FormatError(
            f"decoded chunk holds {payload_len} bytes, expected {expected} "
            f"for shape {tuple(shape)} {dtype}"
        )
    return n


class Codec:
    """One per-chunk encoding.

    ``spec`` is the round-trippable registry string stored in the
    dataset's ``repro:codec`` attribute; ``lossless`` declares whether
    ``decode(encode(a))`` is bit-identical to ``a`` (readers surface it,
    e.g. ``das_inspect``).
    """

    spec: str = ""
    lossless: bool = True

    def encode(self, arr: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(
        self, payload: bytes, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "lossless" if self.lossless else "lossy"
        return f"<{type(self).__name__} {self.spec!r} ({kind})>"


class DeltaZlibCodec(Codec):
    """Lossless: previous-sample delta over the flattened chunk's bit
    patterns (modular unsigned arithmetic), then deflate."""

    def __init__(self, level: int = DEFAULT_LEVEL):
        self.level = _check_level(level)
        self.spec = "delta-zlib" if self.level == DEFAULT_LEVEL else f"delta-zlib:{self.level}"

    def encode(self, arr: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(arr)
        utype = _UINT_FOR_ITEMSIZE.get(arr.dtype.itemsize)
        if utype is None:
            return zlib.compress(arr.tobytes(), self.level)
        flat = arr.reshape(-1).view(utype)
        delta = np.empty_like(flat)
        if flat.size:
            delta[0] = flat[0]
            np.subtract(flat[1:], flat[:-1], out=delta[1:])
        return zlib.compress(delta.tobytes(), self.level)

    def decode(
        self, payload: bytes, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        dtype = np.dtype(dtype)
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise FormatError(f"undecodable delta-zlib chunk: {exc}") from exc
        _check_decoded_size(len(raw), shape, dtype)
        utype = _UINT_FOR_ITEMSIZE.get(dtype.itemsize)
        if utype is None:
            return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        delta = np.frombuffer(raw, dtype=utype)
        # cumsum in the same modular unsigned arithmetic inverts the delta.
        flat = np.cumsum(delta, dtype=utype)
        return flat.view(dtype).reshape(shape)


class TransposeZlibCodec(Codec):
    """Lossless: bitshuffle-style byte transpose (group the i-th byte of
    every element), then deflate."""

    def __init__(self, level: int = DEFAULT_LEVEL):
        self.level = _check_level(level)
        self.spec = (
            "transpose-zlib"
            if self.level == DEFAULT_LEVEL
            else f"transpose-zlib:{self.level}"
        )

    def encode(self, arr: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(arr)
        itemsize = arr.dtype.itemsize
        planes = arr.reshape(-1).view(np.uint8).reshape(-1, itemsize)
        return zlib.compress(np.ascontiguousarray(planes.T).tobytes(), self.level)

    def decode(
        self, payload: bytes, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        dtype = np.dtype(dtype)
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise FormatError(f"undecodable transpose-zlib chunk: {exc}") from exc
        n = _check_decoded_size(len(raw), shape, dtype)
        planes = np.frombuffer(raw, dtype=np.uint8).reshape(dtype.itemsize, n)
        flat = np.ascontiguousarray(planes.T).reshape(-1).view(dtype)
        return flat.reshape(shape)


class QuantizeCodec(Codec):
    """Controlled-loss: quantize to an absolute tolerance, then
    delta-encode the integer stream and deflate.

    The guarantee: for every finite input sample,
    ``|decoded - original| <= tol``.  Non-finite samples (NaN fills from
    degraded reads, infinities) are carried bit-exactly in a side list.
    Only floating dtypes are supported — integer data has nothing to
    gain from a float tolerance.
    """

    lossless = False

    def __init__(self, tol: float, level: int = DEFAULT_LEVEL):
        tol = float(tol)
        if not tol > 0:
            raise ConfigError(f"quantize tolerance must be > 0, got {tol}")
        self.tol = tol
        self.level = _check_level(level)
        self.spec = (
            f"quantize:{tol!r}"
            if self.level == DEFAULT_LEVEL
            else f"quantize:{tol!r}:{self.level}"
        )

    @property
    def _step(self) -> float:
        # round-to-nearest at step 2*tol keeps the error within +-tol.
        return 2.0 * self.tol

    def encode(self, arr: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(arr)
        if arr.dtype.kind != "f":
            raise FormatError(
                f"quantize codec requires a float dtype, got {arr.dtype}"
            )
        flat = arr.reshape(-1)
        values = flat.astype(np.float64, copy=False)
        finite = np.isfinite(values)
        bad_idx = np.flatnonzero(~finite).astype(np.int64)
        bad_raw = np.ascontiguousarray(flat[bad_idx]).tobytes()
        with np.errstate(over="ignore"):
            scaled = np.where(finite, values, 0.0) / self._step
        if scaled.size and np.abs(scaled).max() >= 2.0**62:
            raise FormatError(
                f"tolerance {self.tol} too small for data magnitude "
                f"(quantized values overflow int64)"
            )
        q = np.rint(scaled).astype(np.int64)
        delta = np.empty_like(q)
        if q.size:
            delta[0] = q[0]
            np.subtract(q[1:], q[:-1], out=delta[1:])
        head = struct.pack("<Q", bad_idx.size)
        return zlib.compress(
            head + bad_idx.tobytes() + bad_raw + delta.tobytes(), self.level
        )

    def decode(
        self, payload: bytes, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise FormatError(
                f"quantize codec requires a float dtype, got {dtype}"
            )
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise FormatError(f"undecodable quantize chunk: {exc}") from exc
        n = _element_count(shape)
        if len(raw) < 8:
            raise FormatError("quantize chunk too short for its header")
        (n_bad,) = struct.unpack_from("<Q", raw, 0)
        offset = 8
        expected = offset + n_bad * (8 + dtype.itemsize) + n * 8
        if len(raw) != expected:
            raise FormatError(
                f"quantize chunk holds {len(raw)} bytes, expected {expected}"
            )
        bad_idx = np.frombuffer(raw, dtype=np.int64, count=n_bad, offset=offset)
        offset += 8 * n_bad
        bad_raw = np.frombuffer(raw, dtype=dtype, count=n_bad, offset=offset)
        offset += dtype.itemsize * n_bad
        delta = np.frombuffer(raw, dtype=np.int64, count=n, offset=offset)
        q = np.cumsum(delta, dtype=np.int64)
        out = (q * self._step).astype(dtype)
        if n_bad:
            out[bad_idx] = bad_raw
        return out.reshape(shape)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[list[str]], Codec]] = {}


def register_codec(name: str, factory: Callable[[list[str]], Codec]) -> None:
    """Register ``factory(params) -> Codec`` under ``name``.

    ``params`` is the (possibly empty) list of ``:``-separated arguments
    following the name in a spec string.  Registration is global — a
    custom codec registered before files are opened makes their
    ``repro:codec`` attribute resolvable.
    """
    if not name or ":" in name:
        raise ConfigError(f"codec name must be non-empty and ':'-free, got {name!r}")
    _REGISTRY[name] = factory


def available_codecs() -> list[str]:
    """Registered codec names, sorted."""
    return sorted(_REGISTRY)


def resolve_codec(spec: object) -> Codec:
    """Resolve a spec string (or pass through a ready :class:`Codec`).

    Raises :class:`~repro.errors.FormatError` for unknown names or
    malformed parameters — the error a reader hits when a file was
    written with a codec this process does not know.
    """
    if isinstance(spec, Codec):
        return spec
    name, _, rest = str(spec).partition(":")
    params = rest.split(":") if rest else []
    factory = _REGISTRY.get(name)
    if factory is None:
        raise FormatError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        )
    try:
        return factory(params)
    except (ValueError, TypeError) as exc:
        raise FormatError(f"bad codec spec {spec!r}: {exc}") from exc


def _delta_factory(params: list[str]) -> Codec:
    if len(params) > 1:
        raise ConfigError("delta-zlib takes at most one parameter (level)")
    return DeltaZlibCodec(int(params[0])) if params else DeltaZlibCodec()


def _transpose_factory(params: list[str]) -> Codec:
    if len(params) > 1:
        raise ConfigError("transpose-zlib takes at most one parameter (level)")
    return TransposeZlibCodec(int(params[0])) if params else TransposeZlibCodec()


def _quantize_factory(params: list[str]) -> Codec:
    if not params or len(params) > 2:
        raise ConfigError(
            "quantize needs a tolerance (and optional level), e.g. 'quantize:1e-3'"
        )
    tol = float(params[0])
    return (
        QuantizeCodec(tol, int(params[1])) if len(params) == 2 else QuantizeCodec(tol)
    )


register_codec("delta-zlib", _delta_factory)
register_codec("transpose-zlib", _transpose_factory)
register_codec("quantize", _quantize_factory)
