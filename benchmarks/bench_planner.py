"""Query-planner benchmark: what the rewrites buy, measured end to end.

Runs the same analyses through the lazy planner (``optimize``/``execute``)
and through its eager reference (``naive=True``) on a synthetic VCA of
per-minute DAS files, and records in ``BENCH_planner.json``:

* **pushdown** — a decimate-by-8 STA/LTA query, naive vs optimized:
  backend bytes read (:class:`~repro.utils.iostats.IOStats`) and wall
  time.  Asserts the optimized plan reads *strictly fewer* backend bytes
  and produces *bit-identical* output.
* **cse** — a two-detector co-run (STA/LTA + local similarity behind a
  shared taper + filter-cascade prefix) vs two independent single runs.
  Asserts the co-run reads strictly fewer backend bytes than the two
  singles combined, records a positive ``cse_hits`` count, and asserts
  the co-run wall time beats the summed single-run times (the shared
  prefix dominates the chain, so sharing it is ~2x).
* the ``explain()`` dump of the co-run plan, for the record.

Usage::

    python benchmarks/bench_planner.py --smoke   # small sizes, CI-friendly
    python benchmarks/bench_planner.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np
from scipy.signal import butter

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.graph import Query  # noqa: E402
from repro.core.local_similarity import LocalSimilarityConfig, LocalSimilarityOp  # noqa: E402
from repro.core.operators import FiltFiltOp, TaperOp  # noqa: E402
from repro.core.optimizer import execute, explain, optimize  # noqa: E402
from repro.core.stalta import StaLtaOp  # noqa: E402
from repro.storage.chunks import open_stream  # noqa: E402
from repro.storage.dasfile import das_filename, write_das_file  # noqa: E402
from repro.storage.metadata import DASMetadata, timestamp_add_seconds  # noqa: E402
from repro.storage.vca import create_vca  # noqa: E402
from repro.utils.iostats import IOStats  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def build_vca(root: str, n_channels: int, minutes: int, spm: int, fs: float) -> str:
    """Per-minute files (unchecksummed, so strided reads pay only for the
    lattice) merged into one VCA."""
    rng = np.random.default_rng(3)
    stamp = "170620100545"
    paths = []
    for _ in range(minutes):
        block = rng.normal(size=(n_channels, spm)).astype(np.float32)
        path = os.path.join(root, das_filename(stamp))
        write_das_file(
            path,
            block,
            DASMetadata(
                sampling_frequency=fs,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=n_channels,
            ),
            channel_groups=False,
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    return create_vca(os.path.join(root, "bench.h5"), paths)


def run_plan(vca: str, queries, chunk: int, naive: bool):
    """Execute and return (outputs, seconds, backend bytes read).

    ``verify=False``: runtime geometry verification is a constant
    per-execute cost that would swamp the rewrite effects this benchmark
    measures (the planner test suite covers verification)."""
    stats = IOStats()
    with open_stream(vca, iostats=stats) as src:
        plan = optimize(queries, chunk_samples=chunk, verify=False)
        t0 = time.perf_counter()
        results = execute(plan, source=src, naive=naive, iostats=stats)
        seconds = time.perf_counter() - t0
    outs = [r.output for r in results]
    return outs, seconds, stats.full_snapshot()["bytes_read"], results


def bench_pushdown(vca: str, chunk: int) -> dict:
    q = Query.scan(None).decimate(8).then(StaLtaOp(4, 16))
    (opt_out,), opt_s, opt_bytes, _ = run_plan(vca, q, chunk, naive=False)
    (ref_out,), ref_s, ref_bytes, _ = run_plan(vca, q, chunk, naive=True)
    np.testing.assert_array_equal(opt_out, ref_out)
    assert opt_bytes < ref_bytes, (
        f"pushdown must read fewer backend bytes: {opt_bytes} >= {ref_bytes}"
    )
    return {
        "query": "decimate(8) | sta_lta(4,16)",
        "chunk_samples": chunk,
        "naive_bytes_read": ref_bytes,
        "optimized_bytes_read": opt_bytes,
        "bytes_ratio": round(opt_bytes / ref_bytes, 4),
        "naive_seconds": round(ref_s, 4),
        "optimized_seconds": round(opt_s, 4),
        "note": (
            "byte reduction is the asserted claim; strided reads issue many "
            "small requests, so wall time only wins on bandwidth-limited "
            "storage, not on a warm local page cache"
        ),
    }


def bench_cse(vca: str, chunk: int, fs: float) -> tuple[dict, str]:
    """The shared prefix (taper + three cascaded filtfilt stages)
    carries most of the chain's work, so computing it once per chunk for
    both detectors — instead of once per detector — is the dominant
    saving the wall-time assertion checks."""
    b, a = butter(4, [0.05 * fs, 0.2 * fs], btype="band", fs=fs)
    b2, a2 = butter(4, 0.3 * fs, btype="low", fs=fs)
    b3, a3 = butter(4, 0.02 * fs, btype="high", fs=fs)
    simi = LocalSimilarityConfig(half_window=10, half_lag=2, stride=300)

    def queries():
        base = (
            Query.scan(None)
            .then(TaperOp(0.05))
            .then(FiltFiltOp(b, a))
            .then(FiltFiltOp(b2, a2))
            .then(FiltFiltOp(b3, a3))
        )
        return [
            base.then(StaLtaOp(4, 16)).with_label("trigger"),
            base.then(LocalSimilarityOp(simi)).with_label("similarity"),
        ]

    co_outs, co_s, co_bytes, co_results = run_plan(
        vca, queries(), chunk, naive=False
    )
    single_s, single_bytes, single_outs = 0.0, 0, []
    for q in queries():
        (out,), s, nbytes, _ = run_plan(vca, q, chunk, naive=False)
        single_s += s
        single_bytes += nbytes
        single_outs.append(out)
    cse_hits = getattr(co_results[0].profile, "cse_hits", 0)
    assert cse_hits > 0, "co-run must record shared-prefix hits"
    assert co_bytes < single_bytes, (
        f"co-run must read fewer backend bytes than two singles: "
        f"{co_bytes} >= {single_bytes}"
    )
    assert co_s < single_s, (
        f"shared-prefix co-run must beat two single runs: "
        f"{co_s:.3f}s >= {single_s:.3f}s"
    )
    plan_text = explain(optimize(queries(), chunk_samples=chunk))
    return {
        "branches": ["trigger", "similarity"],
        "chunk_samples": chunk,
        "corun_seconds": round(co_s, 4),
        "two_singles_seconds": round(single_s, 4),
        "speedup": round(single_s / co_s, 3),
        "corun_bytes_read": co_bytes,
        "two_singles_bytes_read": single_bytes,
        "cse_hits": cse_hits,
    }, plan_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI run")
    args = parser.parse_args()

    if args.smoke:
        n_channels, minutes, spm, chunk = 32, 4, 12000, 9600
    else:
        n_channels, minutes, spm, chunk = 128, 10, 30000, 12000
    fs = float(spm) / 60.0

    with tempfile.TemporaryDirectory() as root:
        vca = build_vca(root, n_channels, minutes, spm, fs)
        pushdown = bench_pushdown(vca, chunk)
        cse, plan_text = bench_cse(vca, chunk, fs)

    doc = {
        "smoke": bool(args.smoke),
        "workload": {
            "n_channels": n_channels,
            "minutes": minutes,
            "samples_per_minute": spm,
            "fs": fs,
        },
        "pushdown": pushdown,
        "cse": cse,
        "explain": plan_text.splitlines(),
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_planner.json")
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(json.dumps(doc, indent=2))
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
