"""Remaining coverage: the storage cost-model helpers and composing the
Algorithm-3 pipeline from the generic Pipeline stages."""

import numpy as np
import pytest

from repro.cluster import cori_haswell
from repro.core.interferometry import InterferometryConfig, interferometry_block
from repro.core.pipeline import Pipeline
from repro.daslib import abscorr, detrend, fft, filtfilt, next_fast_len, resample, taper
from repro.storage.model import (
    ReadCost,
    files_per_rank,
    model_collective_per_file,
    model_communication_avoiding,
    model_rca_read,
    model_search,
)


class TestReadCost:
    def test_total_is_read_plus_comm(self):
        cost = ReadCost(read_time=2.0, comm_time=0.5, n_requests=10)
        assert cost.total == pytest.approx(2.5)

    def test_scaling_in_file_count(self):
        cluster = cori_haswell(16)
        small = model_collective_per_file(cluster, 16, 100, 10**6)
        large = model_collective_per_file(cluster, 16, 400, 10**6)
        assert large.total == pytest.approx(4 * small.total, rel=1e-6)

    def test_commavoid_improves_with_ranks(self):
        cluster = cori_haswell(256)
        few = model_communication_avoiding(cluster, 16, 512, 10**7)
        many = model_communication_avoiding(cluster, 128, 512, 10**7)
        assert many.total < few.total

    def test_commavoid_floor_is_ost_bound(self):
        """Beyond a point, more ranks cannot beat the OST service floor."""
        cluster = cori_haswell(2880)
        t1 = model_communication_avoiding(cluster, 720, 2880, 10**8).total
        t2 = model_communication_avoiding(cluster, 2880, 2880, 10**8).total
        assert t2 <= t1
        assert t2 > 0.5 * t1  # diminishing returns

    def test_rca_read_scales_with_stripes_not_ranks(self):
        cluster = cori_haswell(512)
        t_small_p = model_rca_read(cluster, 16, 10**12).total
        t_large_p = model_rca_read(cluster, 512, 10**12).total
        # stripe-bound: adding ranks barely helps
        assert t_large_p > 0.5 * t_small_p

    def test_model_search_linear(self):
        cluster = cori_haswell()
        assert model_search(cluster, 2000) == pytest.approx(
            2 * model_search(cluster, 1000)
        )

    def test_files_per_rank_sums(self):
        for n, p in ((2880, 90), (7, 3), (5, 8)):
            assert sum(files_per_rank(n, p, r) for r in range(p)) == n


class TestAlgorithm3AsPipeline:
    """Algorithm 3 expressed through the generic Pipeline abstraction
    gives the same answer as the fused kernel — the composability the
    UDF interface promises."""

    def test_staged_equals_kernel(self):
        config = InterferometryConfig(fs=100.0, band=(0.5, 10.0), resample_q=4)
        b, a = config.coefficients()
        rng = np.random.default_rng(0)
        data = rng.normal(size=(5, 800))

        nfft = next_fast_len(200)

        def correlate_with_master(spectra):
            return np.asarray(abscorr(spectra, spectra[config.master_channel][None, :], axis=-1))

        pipeline = (
            Pipeline()
            .add("detrend", lambda x: detrend(x, axis=-1))
            .add("taper", lambda x: taper(x, config.taper_fraction, axis=-1))
            .add("filtfilt", lambda x: filtfilt(b, a, x, axis=-1))
            .add("resample", lambda x: resample(x, 1, config.resample_q, axis=-1))
            .add("fft", lambda x: fft(x, n=nfft, axis=-1))
            .add("correlate", correlate_with_master)
        )
        staged = pipeline.run(data)
        kernel = interferometry_block(data, config)
        np.testing.assert_allclose(staged, kernel, atol=1e-9)

    def test_fused_pipeline_equals_staged(self):
        config = InterferometryConfig(fs=100.0, band=(0.5, 10.0), resample_q=4)
        b, a = config.coefficients()
        data = np.random.default_rng(1).normal(size=(3, 600))
        pipeline = (
            Pipeline()
            .add("detrend", lambda x: detrend(x, axis=-1))
            .add("filter", lambda x: filtfilt(b, a, x, axis=-1))
        )
        np.testing.assert_allclose(pipeline.fused()(data), pipeline.run(data))

    def test_stage_timing_accounts_everything(self):
        from repro.utils.timer import Timer

        timer = Timer()
        pipeline = Pipeline().add("a", lambda x: x + 1).add("b", lambda x: x * 2)
        pipeline.run(np.zeros(10), timer=timer)
        assert set(timer.phases) == {"a", "b"}
        assert timer.total >= 0.0
