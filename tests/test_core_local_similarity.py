"""Tests for the local-similarity case study (Algorithm 2)."""

import numpy as np
import pytest

from repro.arrayudf import apply
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    local_similarity_block,
    local_similarity_udf,
)
from repro.errors import ConfigError
from repro.synthetic import earthquake_signal, vehicle_signal
from repro.synthetic.noise import ambient_noise


class TestConfig:
    def test_derived_sizes(self):
        cfg = LocalSimilarityConfig(half_window=10, channel_offset=2, half_lag=3, stride=5)
        assert cfg.window_len == 21
        assert cfg.time_halo == 13
        assert cfg.channel_halo == 2

    def test_centers_inside_valid_range(self):
        cfg = LocalSimilarityConfig(half_window=10, half_lag=3, stride=7)
        centers = cfg.centers(100)
        assert centers[0] == 13
        assert centers[-1] + cfg.time_halo <= 100

    def test_centers_empty_for_short_series(self):
        cfg = LocalSimilarityConfig(half_window=30, half_lag=10)
        assert len(cfg.centers(50)) == 0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            LocalSimilarityConfig(half_window=0)
        with pytest.raises(ConfigError):
            LocalSimilarityConfig(channel_offset=0)
        with pytest.raises(ConfigError):
            LocalSimilarityConfig(stride=0)


class TestKernelEquivalence:
    """The vectorised kernel must equal the literal Algorithm 2 UDF."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_block_matches_udf(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(8, 120))
        cfg = LocalSimilarityConfig(half_window=5, channel_offset=1, half_lag=2, stride=9)

        simi, centers = local_similarity_block(data, cfg)

        udf = local_similarity_udf(cfg)
        reference = apply(
            data,
            udf,
            core_rows=(cfg.channel_offset, data.shape[0] - cfg.channel_offset),
            core_cols=(int(centers[0]), int(centers[-1]) + 1),
            col_stride=cfg.stride,
        )
        np.testing.assert_allclose(simi, reference, atol=1e-12)

    def test_block_matches_udf_wider_offsets(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(10, 150))
        cfg = LocalSimilarityConfig(half_window=7, channel_offset=3, half_lag=4, stride=11)
        simi, centers = local_similarity_block(data, cfg)
        udf = local_similarity_udf(cfg)
        reference = apply(
            data,
            udf,
            core_rows=(3, 7),
            core_cols=(int(centers[0]), int(centers[-1]) + 1),
            col_stride=cfg.stride,
        )
        np.testing.assert_allclose(simi, reference, atol=1e-12)


class TestProperties:
    def test_values_in_unit_interval(self):
        data = np.random.default_rng(3).normal(size=(8, 200))
        simi, _ = local_similarity_block(data, LocalSimilarityConfig(half_window=6, half_lag=2, stride=10))
        assert np.all(simi >= 0.0)
        assert np.all(simi <= 1.0 + 1e-12)

    def test_coherent_signal_scores_high(self):
        """A plane wave crossing all channels scores ~1; noise doesn't."""
        rng = np.random.default_rng(4)
        t = np.arange(400)
        coherent = np.tile(np.sin(2 * np.pi * t / 25.0), (6, 1))
        noise = rng.normal(size=(6, 400))
        cfg = LocalSimilarityConfig(half_window=20, half_lag=3, stride=40)
        simi_sig, _ = local_similarity_block(coherent + 0.05 * noise, cfg)
        simi_noise, _ = local_similarity_block(noise, cfg)
        assert simi_sig.mean() > 0.95
        assert simi_noise.mean() < 0.5

    def test_lag_search_recovers_moveout(self):
        """A wavefront with one-sample-per-channel moveout is matched once
        the lag search covers the shift."""
        n_ch, n_t = 8, 300
        base = np.sin(2 * np.pi * np.arange(n_t) / 30.0) * np.exp(
            -((np.arange(n_t) - 150) ** 2) / 800.0
        )
        data = np.stack([np.roll(base, 3 * c) for c in range(n_ch)])
        cfg_wide = LocalSimilarityConfig(half_window=15, half_lag=4, stride=30)
        cfg_narrow = LocalSimilarityConfig(half_window=15, half_lag=0, stride=30)
        wide, _ = local_similarity_block(data, cfg_wide)
        narrow, _ = local_similarity_block(data, cfg_narrow)
        assert wide.max() > narrow.max()

    def test_channel_range_argument(self):
        data = np.random.default_rng(5).normal(size=(10, 150))
        cfg = LocalSimilarityConfig(half_window=5, half_lag=1, stride=10)
        full, centers = local_similarity_block(data, cfg)
        partial, centers2 = local_similarity_block(data, cfg, channel_range=(3, 6))
        np.testing.assert_array_equal(centers, centers2)
        np.testing.assert_allclose(partial, full[2:5])

    def test_invalid_inputs(self):
        cfg = LocalSimilarityConfig()
        with pytest.raises(ConfigError):
            local_similarity_block(np.zeros(10), cfg)
        with pytest.raises(ConfigError):
            local_similarity_block(
                np.zeros((4, 200)), cfg, channel_range=(0, 4)
            )

    def test_short_series_empty_map(self):
        cfg = LocalSimilarityConfig(half_window=30, half_lag=10)
        simi, centers = local_similarity_block(np.zeros((4, 20)), cfg)
        assert simi.shape == (2, 0)
        assert len(centers) == 0


class TestOnSyntheticEvents:
    def test_earthquake_band_lights_up(self):
        rng = np.random.default_rng(6)
        fs = 50.0
        n_ch, n_t = 24, 3000
        noise = ambient_noise(n_ch, n_t, fs=fs, band=(0.5, 20), rng=rng)
        quake = earthquake_signal(
            n_ch, n_t, fs=fs, origin_time=30.0, apparent_velocity=3000.0,
            amplitude=6.0, rng=rng,
        )
        cfg = LocalSimilarityConfig(half_window=25, half_lag=5, stride=50)
        simi, centers = local_similarity_block(noise + quake, cfg)
        t_centers = centers / fs
        during = simi[:, (t_centers > 30) & (t_centers < 40)]
        before = simi[:, t_centers < 25]
        assert during.mean() > before.mean() + 0.15

    def test_vehicle_ridge_is_localised(self):
        rng = np.random.default_rng(7)
        fs = 50.0
        n_ch, n_t = 40, 3000
        noise = ambient_noise(n_ch, n_t, fs=fs, band=(0.5, 20), rng=rng)
        car = vehicle_signal(
            n_ch, n_t, fs=fs, start_time=5.0, start_channel=0.0,
            speed_mps=1.0, channel_spacing=2.0, width_channels=4.0, amplitude=6.0,
        )
        cfg = LocalSimilarityConfig(half_window=25, half_lag=5, stride=50)
        simi, centers = local_similarity_block(noise + car, cfg)
        # At t=20s the car is at channel 10: nearby channels bright,
        # distant channels not.
        col = np.argmin(np.abs(centers / fs - 20.0))
        near = simi[8:12, col].mean()
        far = simi[30:36, col].mean()
        assert near > far + 0.2
