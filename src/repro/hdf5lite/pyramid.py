"""Decimation-pyramid *format* support (the storage half).

A pyramid is a family of progressively coarser copies of one base
``(channels, time)`` record, stored as ordinary chunked datasets under a
``pyramid/`` group in the same hdf5lite file (so codecs, CRC sidecars,
the block cache, and ``das_inspect`` all apply unchanged).  Level ``k``
holds the base record decimated by ``factor**k`` with the phase-aligned
anti-aliasing semantics of :class:`repro.core.operators.DecimateOp`:
level sample ``j`` is centred on base sample ``j * factor**k``.

This module defines the on-disk *convention* only — the attribute names
a reader keys on, discovery (:func:`pyramid_levels`), and structural
validation (:func:`pyramid_problems`, folded into
:func:`repro.hdf5lite.inspect.verify`).  *Building* pyramids needs the
DSP operators and therefore lives up the stack in
:mod:`repro.serve.pyramid`; keeping the format spec here lets
``das_inspect`` describe and verify pyramid-carrying files without the
inspection layer reaching above its rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError
from repro.hdf5lite.codecs import CODEC_ATTR
from repro.hdf5lite.dataset import Dataset

__all__ = [
    "PYRAMID_GROUP",
    "LEVEL_ATTR",
    "FACTOR_ATTR",
    "BASE_SAMPLES_ATTR",
    "BASE_FACTOR_ATTR",
    "BASE_DATASET_ATTR",
    "FS_ATTR",
    "PyramidLevel",
    "pyramid_levels",
    "pyramid_problems",
]

#: Group under the file root that holds the level datasets.
PYRAMID_GROUP = "pyramid"
#: Per-level dataset attributes (flat keys, like the ``repro:crc32`` and
#: ``repro:codec`` sidecar conventions).
LEVEL_ATTR = "repro:pyramid level"          # int k >= 1
FACTOR_ATTR = "repro:pyramid factor"        # cumulative decimation, factor**k
BASE_SAMPLES_ATTR = "repro:pyramid base samples"  # base record length
BASE_DATASET_ATTR = "repro:pyramid of"      # path of the base dataset
FS_ATTR = "repro:pyramid fs"                # sampling rate *at this level*
#: Group attribute: the per-level decimation factor the chain multiplies.
BASE_FACTOR_ATTR = "repro:pyramid base factor"


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class PyramidLevel:
    """One discovered pyramid level (metadata only, no data read)."""

    level: int
    factor: int
    path: str
    shape: tuple[int, ...]
    dtype: str
    codec: str | None
    base_samples: int
    base_dataset: str | None
    fs: float

    @property
    def n_channels(self) -> int:
        return int(self.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.shape[1])


def is_pyramid_level(ds: Dataset) -> bool:
    """Whether ``ds`` carries the per-level pyramid attributes."""
    return LEVEL_ATTR in ds.attrs and FACTOR_ATTR in ds.attrs


def _level_of(ds: Dataset) -> PyramidLevel:
    spec = ds.attrs.get(CODEC_ATTR)
    return PyramidLevel(
        level=int(ds.attrs[LEVEL_ATTR]),
        factor=int(ds.attrs[FACTOR_ATTR]),
        path=ds.path,
        shape=tuple(int(s) for s in ds.shape),
        dtype=str(ds.dtype),
        codec=str(spec) if spec is not None else None,
        base_samples=int(ds.attrs.get(BASE_SAMPLES_ATTR, 0)),
        base_dataset=ds.attrs.get(BASE_DATASET_ATTR),
        fs=float(ds.attrs.get(FS_ATTR, 0.0)),
    )


def pyramid_levels(file) -> list[PyramidLevel]:
    """The pyramid levels a file carries, sorted by level (``[]`` if none).

    ``file`` is an open :class:`repro.hdf5lite.File`.  Raises
    :class:`~repro.errors.FormatError` when two datasets claim the same
    level — readers select by level, so duplicates are unserveable.
    """
    if PYRAMID_GROUP not in file:
        return []
    group = file[PYRAMID_GROUP]
    if isinstance(group, Dataset):
        raise FormatError(f"{PYRAMID_GROUP!r} is a dataset, expected a group")
    levels: list[PyramidLevel] = []
    for name in group.datasets():
        ds = group[name]
        if not is_pyramid_level(ds):
            continue
        if len(ds.shape) != 2:
            raise FormatError(
                f"pyramid level {ds.path} is {len(ds.shape)}-D, expected 2-D"
            )
        levels.append(_level_of(ds))
    levels.sort(key=lambda lvl: lvl.level)
    for a, b in zip(levels, levels[1:]):
        if a.level == b.level:
            raise FormatError(
                f"duplicate pyramid level {a.level}: {a.path} and {b.path}"
            )
    return levels


def pyramid_problems(file) -> list[tuple[str, str]]:
    """Structural problems with a file's pyramid, as ``(path, message)``.

    Checked invariants (the contract :mod:`repro.serve` relies on):

    * every dataset under ``pyramid/`` carries the level attributes and
      is 2-D;
    * ``factor >= 1``, ``level >= 1``, and — when the group declares a
      base factor — ``factor == base_factor ** level``;
    * level length is exactly ``ceil(base_samples / factor)`` (the
      :class:`~repro.core.operators.DecimateOp` output-length law);
    * all levels agree on channel count, base length, and base dataset;
    * the named base dataset exists and matches ``base_samples``.

    Byte-level integrity (chunk extents, codec spec, CRC sidecars) is the
    ordinary per-dataset machinery of :func:`repro.hdf5lite.inspect.verify`
    — pyramid levels are plain chunked datasets and get it for free.
    """
    problems: list[tuple[str, str]] = []
    if PYRAMID_GROUP not in file:
        return problems
    group = file[PYRAMID_GROUP]
    if isinstance(group, Dataset):
        return [(group.path, "pyramid is a dataset, expected a group")]
    base_factor = group.attrs.get(BASE_FACTOR_ATTR)
    levels: list[PyramidLevel] = []
    for name in group.datasets():
        ds = group[name]
        if not is_pyramid_level(ds):
            problems.append(
                (ds.path, "dataset under pyramid/ lacks the level attributes")
            )
            continue
        if len(ds.shape) != 2:
            problems.append(
                (ds.path, f"pyramid level must be 2-D, got shape {ds.shape}")
            )
            continue
        lvl = _level_of(ds)
        if lvl.level < 1:
            problems.append((ds.path, f"bad pyramid level {lvl.level} (must be >= 1)"))
            continue
        if lvl.factor < 1:
            problems.append((ds.path, f"bad decimation factor {lvl.factor}"))
            continue
        if base_factor is not None and lvl.factor != int(base_factor) ** lvl.level:
            problems.append(
                (
                    ds.path,
                    f"factor {lvl.factor} != base factor {base_factor} ** "
                    f"level {lvl.level}",
                )
            )
        if lvl.base_samples > 0:
            expected = _ceil_div(lvl.base_samples, lvl.factor)
            if lvl.n_samples != expected:
                problems.append(
                    (
                        ds.path,
                        f"level length {lvl.n_samples} != "
                        f"ceil({lvl.base_samples} / {lvl.factor}) = {expected}",
                    )
                )
        levels.append(lvl)

    seen: dict[int, str] = {}
    for lvl in levels:
        if lvl.level in seen:
            problems.append(
                (lvl.path, f"duplicate pyramid level {lvl.level} (also {seen[lvl.level]})")
            )
        seen[lvl.level] = lvl.path
    for key in ("n_channels", "base_samples", "base_dataset"):
        values = {getattr(lvl, key) for lvl in levels}
        values.discard(None)
        if len(values) > 1:
            problems.append(
                (
                    group.path,
                    f"levels disagree on {key.replace('_', ' ')}: {sorted(map(str, values))}",
                )
            )

    for lvl in levels:
        if not lvl.base_dataset:
            continue
        if lvl.base_dataset not in file:
            problems.append(
                (lvl.path, f"base dataset {lvl.base_dataset!r} not in this file")
            )
            continue
        base = file[lvl.base_dataset]
        if not isinstance(base, Dataset) or len(base.shape) != 2:
            problems.append(
                (lvl.path, f"base {lvl.base_dataset!r} is not a 2-D dataset")
            )
            continue
        if lvl.base_samples and int(base.shape[1]) != lvl.base_samples:
            problems.append(
                (
                    lvl.path,
                    f"base samples attr {lvl.base_samples} != base dataset "
                    f"length {base.shape[1]} (stale pyramid?)",
                )
            )
        if int(base.shape[0]) != lvl.n_channels:
            problems.append(
                (
                    lvl.path,
                    f"level has {lvl.n_channels} channels, base has {base.shape[0]}",
                )
            )
    return problems
