"""Trend removal (MATLAB ``detrend`` semantics)."""

from __future__ import annotations

import numpy as np


def demean(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Remove the mean along ``axis`` (MATLAB ``detrend(x, 'constant')``)."""
    x = np.asarray(x, dtype=np.float64)
    return x - x.mean(axis=axis, keepdims=True)


def detrend(x: np.ndarray, type: str = "linear", axis: int = -1) -> np.ndarray:
    """Remove the best straight-line fit (or the mean) along ``axis``.

    ``type="linear"`` subtracts the least-squares line fitted to each
    series; ``type="constant"`` subtracts the mean.  Matches MATLAB's
    ``detrend`` and the paper's ``Das_detrend``.
    """
    if type in ("constant", "c"):
        return demean(x, axis=axis)
    if type not in ("linear", "l"):
        raise ValueError(f"unknown detrend type {type!r}")

    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    if n < 2:
        return demean(x, axis=axis)

    moved = np.moveaxis(x, axis, -1)
    t = np.arange(n, dtype=np.float64)
    t_mean = t.mean()
    t_centred = t - t_mean
    denom = np.dot(t_centred, t_centred)
    x_mean = moved.mean(axis=-1, keepdims=True)
    # slope per series: <t - t̄, x - x̄> / <t - t̄, t - t̄>
    slope = (moved - x_mean) @ t_centred / denom
    fitted = x_mean + slope[..., None] * t_centred
    return np.moveaxis(moved - fitted, -1, axis)
