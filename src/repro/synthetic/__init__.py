"""Synthetic DAS data (substitute for the paper's West Sacramento array).

The paper's recording is 11 648 channels at 500 Hz along a 25 km dark
fiber, stored as one file per minute (~700 MB each; 1440 files/day).  We
cannot ship that data, so this package synthesises recordings with the
same structure and the same *detectable content*:

* band-limited ambient noise on every channel,
* moving-vehicle signals — localised wave packets travelling along the
  fiber at road speed (the diagonal streaks of Fig. 1b),
* an earthquake — a coherent wavefront sweeping the whole array with a
  hyperbolic moveout (the M4.4 Berkeley event of Fig. 1b/10),
* a persistently vibrating channel region (machinery near the cable).

Benchmarks use scaled-down channel/sample counts with the same file
structure; the signal models keep local similarity and interferometry
meaningful (events are recoverable, noise correlations carry lag
structure).
"""

from repro.synthetic.events import earthquake_signal, ricker, vehicle_signal
from repro.synthetic.generator import (
    SceneSpec,
    drip_feed_dataset,
    fig1b_scene,
    generate_dataset,
    synthesize_scene,
)
from repro.synthetic.noise import ambient_noise, persistent_vibration

__all__ = [
    "ricker",
    "earthquake_signal",
    "vehicle_signal",
    "ambient_noise",
    "persistent_vibration",
    "SceneSpec",
    "fig1b_scene",
    "synthesize_scene",
    "generate_dataset",
    "drip_feed_dataset",
]
