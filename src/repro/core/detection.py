"""Event picking on local-similarity maps (the Fig. 10 analysis).

The similarity map (channels × window centres) highlights coherent
energy.  Detection thresholds it (robust z-score), groups the hits into
connected components, and classifies each component by its geometry:

* an **earthquake** spans most of the array nearly simultaneously,
* a **vehicle** is channel-local at any instant but *moves* — a diagonal
  ridge with a finite channels-per-second slope,
* a **persistent** source stays at fixed channels for most of the record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class DetectedEvent:
    """One connected high-similarity region."""

    label: int
    kind: str  # "earthquake" | "vehicle" | "persistent" | "unclassified"
    channel_lo: int
    channel_hi: int  # inclusive
    t_start: float  # seconds
    t_end: float
    peak_similarity: float
    n_cells: int
    speed_channels_per_s: float  # fitted ridge slope (0 for stationary)

    @property
    def channel_span(self) -> int:
        return self.channel_hi - self.channel_lo + 1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def _connected_components(mask: np.ndarray) -> np.ndarray:
    """4-connected component labelling (BFS, pure numpy/stdlib).

    Returns an int array: 0 = background, 1..n = component ids.
    """
    labels = np.zeros(mask.shape, dtype=np.int32)
    current = 0
    rows, cols = mask.shape
    for r in range(rows):
        for c in range(cols):
            if mask[r, c] and labels[r, c] == 0:
                current += 1
                queue = deque([(r, c)])
                labels[r, c] = current
                while queue:
                    rr, cc = queue.popleft()
                    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        nr, nc = rr + dr, cc + dc
                        if (
                            0 <= nr < rows
                            and 0 <= nc < cols
                            and mask[nr, nc]
                            and labels[nr, nc] == 0
                        ):
                            labels[nr, nc] = current
                            queue.append((nr, nc))
    return labels


def detect_events(
    similarity: np.ndarray,
    centers: np.ndarray,
    fs: float,
    threshold_sigmas: float = 3.0,
    min_cells: int = 6,
    earthquake_span_fraction: float = 0.6,
    persistent_duration_fraction: float = 0.7,
    min_vehicle_speed: float = 0.5,
    remove_channel_bias: bool = False,
    split_array_wide: bool = False,
) -> list[DetectedEvent]:
    """Pick and classify events from a similarity map.

    ``similarity`` is (channels, n_centers); ``centers`` are the window-
    centre sample indices; ``fs`` converts samples to seconds.  The
    threshold is ``median + threshold_sigmas * MAD_sigma`` (robust to the
    events themselves).

    With ``remove_channel_bias`` each channel's median over time is
    subtracted before thresholding — standard practice to keep
    stationary sources (machinery hum) from bridging transient events
    into one component; the persistent channels are then detected from
    the removed bias and reported as their own events.

    With ``split_array_wide`` instants where most of the array exceeds
    the threshold at once (earthquake wavefronts) are extracted as
    earthquake events *before* component labelling, so a quake crossing
    a vehicle's ridge does not fuse the two detections — the situation
    of Fig. 1b, where the M4.4 arrival overprints the car signals.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    if similarity.ndim != 2:
        raise ConfigError("similarity map must be 2-D (channels, centers)")
    if similarity.shape[1] != len(centers):
        raise ConfigError(
            f"{similarity.shape[1]} map columns but {len(centers)} centers"
        )
    if fs <= 0:
        raise ConfigError("fs must be positive")
    if similarity.size == 0:
        return []

    persistent_events: list[DetectedEvent] = []
    work = similarity
    if remove_channel_bias:
        row_bias = np.median(similarity, axis=1, keepdims=True)
        work = similarity - row_bias
        bias = row_bias[:, 0]
        bias_median = float(np.median(bias))
        bias_mad = float(np.median(np.abs(bias - bias_median)))
        bias_sigma = 1.4826 * bias_mad if bias_mad > 0 else float(np.std(bias)) or 1.0
        hot = bias > bias_median + threshold_sigmas * bias_sigma
        # Group contiguous hot channels into persistent events.
        channel = 0
        label = -1
        while channel < len(hot):
            if hot[channel]:
                lo = channel
                while channel < len(hot) and hot[channel]:
                    channel += 1
                persistent_events.append(
                    DetectedEvent(
                        label=label,
                        kind="persistent",
                        channel_lo=lo,
                        channel_hi=channel - 1,
                        t_start=float(centers[0] / fs),
                        t_end=float(centers[-1] / fs),
                        peak_similarity=float(similarity[lo:channel].max()),
                        n_cells=(channel - lo) * similarity.shape[1],
                        speed_channels_per_s=0.0,
                    )
                )
                label -= 1
            else:
                channel += 1

    median = float(np.median(work))
    mad = float(np.median(np.abs(work - median)))
    sigma = 1.4826 * mad if mad > 0 else float(np.std(work)) or 1.0
    threshold = median + threshold_sigmas * sigma
    mask = work > threshold

    earthquake_events: list[DetectedEvent] = []
    if split_array_wide and mask.size:
        col_coverage = mask.mean(axis=0)
        eq_cols = col_coverage >= earthquake_span_fraction
        # Group contiguous array-wide columns into earthquake events.
        col = 0
        label = 10000
        while col < len(eq_cols):
            if eq_cols[col]:
                lo = col
                while col < len(eq_cols) and eq_cols[col]:
                    col += 1
                region = mask[:, lo:col]
                hit_channels = np.where(region.any(axis=1))[0]
                earthquake_events.append(
                    DetectedEvent(
                        label=label,
                        kind="earthquake",
                        channel_lo=int(hit_channels.min()),
                        channel_hi=int(hit_channels.max()),
                        t_start=float(centers[lo] / fs),
                        t_end=float(centers[col - 1] / fs),
                        peak_similarity=float(work[:, lo:col].max()),
                        n_cells=int(region.sum()),
                        speed_channels_per_s=0.0,
                    )
                )
                label += 1
            else:
                col += 1
        mask = mask.copy()
        mask[:, eq_cols] = False

    labels = _connected_components(mask)
    similarity = work if remove_channel_bias else similarity

    n_channels, n_centers = similarity.shape
    total_duration = (
        (centers[-1] - centers[0]) / fs if len(centers) > 1 else 1.0 / fs
    )
    events: list[DetectedEvent] = []
    for label in range(1, labels.max() + 1):
        cells = np.argwhere(labels == label)
        if len(cells) < min_cells:
            continue
        ch = cells[:, 0]
        ct = cells[:, 1]
        t_cells = centers[ct] / fs
        ch_lo, ch_hi = int(ch.min()), int(ch.max())
        t0, t1 = float(t_cells.min()), float(t_cells.max())
        peak = float(similarity[labels == label].max())

        # Ridge slope: channels per second, fitted over the component.
        if t1 > t0:
            slope = float(np.polyfit(t_cells, ch.astype(float), 1)[0])
        else:
            slope = 0.0

        span_fraction = (ch_hi - ch_lo + 1) / n_channels
        duration_fraction = (t1 - t0) / max(total_duration, 1e-12)
        if span_fraction >= earthquake_span_fraction and abs(slope) * (t1 - t0) < (
            0.5 * n_channels
        ):
            kind = "earthquake"
        elif duration_fraction >= persistent_duration_fraction and abs(slope) < min_vehicle_speed:
            kind = "persistent"
        elif abs(slope) >= min_vehicle_speed:
            kind = "vehicle"
        else:
            kind = "unclassified"
        events.append(
            DetectedEvent(
                label=label,
                kind=kind,
                channel_lo=ch_lo,
                channel_hi=ch_hi,
                t_start=t0,
                t_end=t1,
                peak_similarity=peak,
                n_cells=len(cells),
                speed_channels_per_s=slope,
            )
        )
    events.extend(persistent_events)
    events.extend(earthquake_events)
    events.sort(key=lambda e: e.t_start)
    return events
