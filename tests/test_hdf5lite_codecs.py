"""Codec layer: registry, roundtrips, and integration with the file API."""

import numpy as np
import pytest

from repro.errors import ConfigError, FormatError
from repro.hdf5lite import (
    BlockCache,
    CacheConfig,
    Codec,
    File,
    available_codecs,
    register_codec,
    resolve_codec,
)
from repro.hdf5lite.codecs import (
    CODEC_ATTR,
    DeltaZlibCodec,
    QuantizeCodec,
    TransposeZlibCodec,
)
from repro.hdf5lite.inspect import describe, verify
from repro.utils.iostats import IOStats


@pytest.fixture
def tmpfile(tmp_path):
    return str(tmp_path / "t.h5")


def _signal(shape=(16, 300), dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=shape), axis=-1).astype(dtype)


LOSSLESS = [DeltaZlibCodec(), TransposeZlibCodec()]


class TestRegistry:
    def test_builtin_names(self):
        assert {"delta-zlib", "transpose-zlib", "quantize"} <= set(
            available_codecs()
        )

    def test_spec_roundtrip(self):
        for spec in ["delta-zlib", "transpose-zlib:9", "quantize:0.001"]:
            assert resolve_codec(resolve_codec(spec).spec).spec == resolve_codec(spec).spec

    def test_unknown_codec_is_format_error(self):
        with pytest.raises(FormatError, match="unknown codec"):
            resolve_codec("lz77-nope")

    def test_malformed_params_are_format_errors(self):
        for spec in ["quantize", "quantize:a:b:c", "delta-zlib:x", "delta-zlib:1:2"]:
            with pytest.raises((FormatError, ConfigError)):
                resolve_codec(spec)

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigError):
            DeltaZlibCodec(level=11)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigError):
            QuantizeCodec(0.0)

    def test_register_custom_codec(self):
        class Raw(Codec):
            spec = "unit-raw"

            def encode(self, arr):
                return np.ascontiguousarray(arr).tobytes()

            def decode(self, payload, shape, dtype):
                return np.frombuffer(payload, dtype=dtype).reshape(shape)

        register_codec("unit-raw", lambda params: Raw())
        assert resolve_codec("unit-raw").spec == "unit-raw"
        with pytest.raises(ConfigError):
            register_codec("bad:name", lambda params: Raw())

    def test_codec_instance_passthrough(self):
        c = DeltaZlibCodec()
        assert resolve_codec(c) is c


class TestLosslessRoundtrip:
    @pytest.mark.parametrize("codec", LOSSLESS, ids=lambda c: c.spec)
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int16, np.int32, np.uint8]
    )
    def test_bit_exact(self, codec, dtype):
        arr = (_signal(dtype=np.float64) * 50).astype(dtype)
        out = codec.decode(codec.encode(arr), arr.shape, arr.dtype)
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)

    @pytest.mark.parametrize("codec", LOSSLESS, ids=lambda c: c.spec)
    def test_preserves_nan_inf_bits(self, codec):
        arr = _signal()
        arr[1, 3] = np.nan
        arr[2, 7] = np.inf
        arr[3, 9] = -np.inf
        out = codec.decode(codec.encode(arr), arr.shape, arr.dtype)
        np.testing.assert_array_equal(
            out.view(np.uint32), arr.view(np.uint32)
        )

    @pytest.mark.parametrize("codec", LOSSLESS, ids=lambda c: c.spec)
    def test_empty_and_single(self, codec):
        for arr in [np.zeros((0,), np.float32), np.array([3.5], np.float32)]:
            out = codec.decode(codec.encode(arr), arr.shape, arr.dtype)
            np.testing.assert_array_equal(out, arr)

    @pytest.mark.parametrize("codec", LOSSLESS, ids=lambda c: c.spec)
    def test_truncated_payload_is_format_error(self, codec):
        arr = _signal()
        payload = codec.encode(arr)
        with pytest.raises(FormatError):
            codec.decode(payload[: len(payload) // 2], arr.shape, arr.dtype)
        with pytest.raises(FormatError):
            codec.decode(payload, (arr.shape[0], arr.shape[1] + 1), arr.dtype)

    def test_compresses_smooth_data(self):
        # The point of the layer: fewer stored bytes than raw on real-ish
        # (band-limited, spatially coherent) signals.
        arr = _signal(shape=(64, 2000))
        raw = arr.nbytes
        assert len(TransposeZlibCodec().encode(arr)) < raw


class TestQuantize:
    def test_tolerance_bound_holds(self):
        arr = _signal(dtype=np.float64)
        for tol in [1e-1, 1e-3, 1e-6]:
            c = QuantizeCodec(tol)
            out = c.decode(c.encode(arr), arr.shape, arr.dtype)
            assert np.max(np.abs(out - arr)) <= tol

    def test_non_finite_preserved_exactly(self):
        arr = _signal()
        arr[0, 0] = np.nan
        arr[5, 5] = np.inf
        arr[9, 9] = -np.inf
        c = QuantizeCodec(1e-2)
        out = c.decode(c.encode(arr), arr.shape, arr.dtype)
        assert np.isnan(out[0, 0])
        assert out[5, 5] == np.inf and out[9, 9] == -np.inf
        finite = np.isfinite(arr)
        assert np.max(np.abs(out[finite] - arr[finite])) <= 1e-2

    def test_integer_dtype_rejected(self):
        c = QuantizeCodec(0.5)
        with pytest.raises(FormatError, match="float"):
            c.encode(np.arange(10, dtype=np.int32))
        with pytest.raises(FormatError, match="float"):
            c.decode(b"x", (1,), np.int32)

    def test_overflowing_tolerance_rejected(self):
        c = QuantizeCodec(1e-300)
        with pytest.raises(FormatError, match="overflow"):
            c.encode(np.array([1e30], dtype=np.float64))

    def test_not_lossless_flag(self):
        assert QuantizeCodec(1e-3).lossless is False
        assert DeltaZlibCodec().lossless is True

    def test_beats_lossless_on_noisy_floats(self):
        arr = _signal(shape=(64, 2000))
        q = len(QuantizeCodec(1e-2).encode(arr))
        ll = len(TransposeZlibCodec().encode(arr))
        assert q < ll


class TestFileIntegration:
    @pytest.mark.parametrize(
        "spec", ["delta-zlib", "transpose-zlib", "quantize:0.001"]
    )
    def test_roundtrip_through_file(self, tmpfile, spec):
        data = _signal()
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(8, 128), codec=spec)
        with File(tmpfile, "r") as f:
            ds = f.dataset("d")
            assert ds.attrs[CODEC_ATTR] == resolve_codec(spec).spec
            out = ds.read()
            if resolve_codec(spec).lossless:
                np.testing.assert_array_equal(out, data)
            else:
                assert np.max(np.abs(out - data)) <= 0.001
            # Partial and strided reads decode only what they need but
            # agree with the full read.
            np.testing.assert_array_equal(
                ds[3:11, 50:250:3], out[3:11, 50:250:3]
            )

    def test_codec_requires_chunked_layout(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError, match="chunked"):
                f.create_dataset("d", data=_signal(), codec="delta-zlib")
            with pytest.raises(FormatError, match="chunked"):
                f.create_dataset(
                    "v", shape=(4, 4), virtual_sources=[], codec="delta-zlib"
                )

    def test_uncompressed_files_unaffected(self, tmpfile):
        data = _signal()
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(8, 128))
        with File(tmpfile, "r") as f:
            ds = f.dataset("d")
            assert ds.codec is None
            assert CODEC_ATTR not in ds.attrs
            np.testing.assert_array_equal(ds.read(), data)

    def test_stored_bytes_shrink(self, tmpfile, tmp_path):
        data = _signal(shape=(64, 2000))
        raw = str(tmp_path / "raw.h5")
        with File(raw, "w") as f:
            f.create_dataset("d", data=data, chunks=(64, 512))
        with File(tmpfile, "w") as f:
            f.create_dataset(
                "d", data=data, chunks=(64, 512), codec="transpose-zlib"
            )
        import os

        assert os.path.getsize(tmpfile) < os.path.getsize(raw)

    def test_unknown_codec_fails_at_read_not_open(self, tmpfile):
        data = _signal()
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", data=data, chunks=(8, 128))
            ds.attrs[CODEC_ATTR] = "from-the-future"
        with File(tmpfile, "r") as f:
            ds = f.dataset("d")  # open + metadata access are fine
            assert ds.shape == data.shape
            with pytest.raises(FormatError, match="unknown codec"):
                ds.read()

    def test_write_hyperslab_into_compressed_chunks(self, tmpfile):
        data = _signal()
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(8, 128), codec="delta-zlib")
        with File(tmpfile, "r+") as f:
            ds = f.dataset("d")
            ds[4:12, 100:200] = 0.25
            ds[0, ::7] = -1.0
        expected = data.copy()
        expected[4:12, 100:200] = 0.25
        expected[0, ::7] = -1.0
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d").read(), expected)

    def test_write_that_grows_chunk_repoints_index(self, tmpfile):
        # Constant data encodes tiny; random data won't fit the old slot,
        # forcing the append-and-repoint path.
        data = np.zeros((8, 256), dtype=np.float32)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(8, 128), codec="delta-zlib")
        noise = np.random.default_rng(1).normal(size=(8, 128)).astype(np.float32)
        with File(tmpfile, "r+") as f:
            ds = f.dataset("d")
            old_offsets = dict(ds._meta["chunk_index"])
            ds[:, 0:128] = noise
            assert ds._meta["chunk_index"]["0,0"] != old_offsets["0,0"]
            assert ds._meta["chunk_index"]["0,1"] == old_offsets["0,1"]
        expected = data.copy()
        expected[:, 0:128] = noise
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d").read(), expected)
            assert verify(f) == []

    def test_cache_admits_decoded_chunks_once(self, tmpfile):
        data = _signal(shape=(16, 512))
        with File(tmpfile, "w") as f:
            f.create_dataset(
                "d", data=data, chunks=(16, 128), codec="transpose-zlib"
            )
        stats = IOStats()
        cache = BlockCache(CacheConfig(byte_budget=1 << 22))
        with File(tmpfile, "r", iostats=stats, cache=cache) as f:
            ds = f.dataset("d")
            np.testing.assert_array_equal(ds.read(), data)
            cold_reads = stats.reads
            cold_bytes = stats.bytes_read
            np.testing.assert_array_equal(ds.read(), data)
            # Warm pass: every chunk decoded already, zero backend I/O.
            assert stats.reads == cold_reads
            assert stats.bytes_read == cold_bytes
        # The cold pass read the *encoded* bytes, strictly less than raw.
        assert cold_bytes < data.nbytes

    def test_inspect_describe_and_verify(self, tmpfile):
        data = _signal()
        with File(tmpfile, "w") as f:
            f.create_dataset(
                "d", data=data, chunks=(8, 128), codec="quantize:0.001",
                checksum=True,
            )
        with File(tmpfile, "r") as f:
            text = describe(f)
            assert "codec=quantize:0.001" in text and "(lossy)" in text
            assert verify(f) == []

    def test_verify_flags_missing_enc_sizes(self, tmpfile):
        data = _signal()
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", data=data, chunks=(8, 128))
            ds.attrs[CODEC_ATTR] = "delta-zlib"
        with File(tmpfile, "r") as f:
            problems = [p.message for p in verify(f)]
            assert any("chunk_enc" in m for m in problems)
