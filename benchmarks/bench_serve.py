"""Serving-layer benchmark: pyramids, exactness, and tenant isolation.

Drives a :class:`~repro.serve.DataServer` over a synthetic VCA archive
with simulated concurrent viewers and records in ``BENCH_serve.json``:

* **preview_reduction** — the same whole-record preview served from a
  stored pyramid level vs computed from raw by the streaming planner.
  Asserts the pyramid path reads *strictly fewer* backend bytes and
  (at an aligned pixel pitch) returns the *identical* pixels.
* **window_exactness** — ``read_window`` answers vs a direct planner
  query over the same :class:`~repro.storage.chunks.WindowSource` and vs
  slicing the raw record.  Asserts bit-exact on both.
* **viewers** — a closed-loop fleet of tenant threads mixing zoomed-out
  previews (40%), panning previews (40%), and follow-live window+event
  reads (20%); per-tenant p50/p95 latency and admission counters from
  the controller's reservoirs.
* **isolation** — a polite tenant's p95 latency measured solo, then
  again while a greedy tenant saturates its own quota.  Asserts the
  contended p95 stays within ``ServeConfig.isolation_p95_bound`` of the
  solo p95 (floored at 5 ms so an idle-machine solo run cannot make the
  bound vacuously tight).

Usage::

    python benchmarks/bench_serve.py --smoke   # small sizes, CI-friendly
    python benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.detection import DetectedEvent  # noqa: E402
from repro.core.graph import Query  # noqa: E402
from repro.core.optimizer import execute, optimize  # noqa: E402
from repro.errors import AdmissionQueueFullError, QuotaExceededError  # noqa: E402
from repro.hdf5lite import File  # noqa: E402
from repro.rt.events import EventSink, SeamEvent  # noqa: E402
from repro.serve import (  # noqa: E402
    DataServer,
    PyramidConfig,
    ServeConfig,
    TenantQuota,
    build_pyramid,
)
from repro.storage.chunks import WindowSource, open_stream  # noqa: E402
from repro.storage.dasfile import das_filename, write_das_file  # noqa: E402
from repro.storage.metadata import DASMetadata, timestamp_add_seconds  # noqa: E402
from repro.utils.iostats import IOStats  # noqa: E402
from repro.storage.vca import create_vca  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def build_archive(
    root: str, n_channels: int, minutes: int, spm: int, fs: float
) -> tuple[str, str]:
    """Per-minute files merged into a VCA, pyramid built in place, plus a
    synthetic event catalog covering the record."""
    rng = np.random.default_rng(11)
    stamp = "170620100545"
    paths = []
    for _ in range(minutes):
        block = rng.normal(size=(n_channels, spm)).astype(np.float32)
        path = os.path.join(root, das_filename(stamp))
        write_das_file(
            path,
            block,
            DASMetadata(
                sampling_frequency=fs,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=n_channels,
            ),
            channel_groups=False,
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    vca = create_vca(os.path.join(root, "bench.h5"), paths)
    build_pyramid(vca, PyramidConfig(factor=4, min_samples=64))

    duration_s = minutes * 60.0
    events_path = os.path.join(root, "events.jsonl")
    EventSink(events_path).emit([
        SeamEvent(
            event=DetectedEvent(
                label=k + 1,
                kind="unclassified",
                channel_lo=0,
                channel_hi=min(3, n_channels - 1),
                t_start=t,
                t_end=t + 2.0,
                peak_similarity=0.9,
                n_cells=24,
                speed_channels_per_s=0.0,
            ),
            j_start=100 * k,
            j_end=100 * k + 5,
        )
        for k, t in enumerate(np.linspace(5.0, duration_s - 10.0, 6))
    ])
    return vca, events_path


# -- pyramid vs raw ----------------------------------------------------------

def bench_preview_reduction(vca: str) -> dict:
    """Whole-record preview at an aligned pixel pitch, both paths, each
    on a fresh server so the byte counts are cold-cache and comparable."""

    def measure(use_pyramid: bool):
        stats = IOStats()
        with DataServer(vca, iostats=stats) as server:
            n = server.n_samples
            # the coarsest stored factor that divides the record keeps the
            # raw path's span // width on the same lattice (identical pixels)
            factor = max(
                lvl.factor for lvl in server.levels if n % lvl.factor == 0
            )
            width = n // factor
            before = stats.full_snapshot()["bytes_read"]
            preview = server.session("probe").preview(
                0, n, width, use_pyramid=use_pyramid
            )
            nbytes = stats.full_snapshot()["bytes_read"] - before
        return preview, nbytes, factor

    via_pyramid, pyramid_bytes, factor = measure(use_pyramid=True)
    via_raw, raw_bytes, _ = measure(use_pyramid=False)
    assert via_pyramid.level is not None and via_pyramid.factor == factor
    assert via_raw.level is None and via_raw.factor == factor
    np.testing.assert_array_equal(via_pyramid.data, via_raw.data)
    assert pyramid_bytes < raw_bytes, (
        f"pyramid preview must read fewer backend bytes: "
        f"{pyramid_bytes} >= {raw_bytes}"
    )
    return {
        "preview": f"whole record at factor {factor}",
        "output_pixels": int(via_pyramid.data.size),
        "pyramid_level": via_pyramid.level,
        "pyramid_bytes_read": pyramid_bytes,
        "raw_bytes_read": raw_bytes,
        "bytes_ratio": round(pyramid_bytes / raw_bytes, 4),
        "pixels_identical": True,
    }


# -- window exactness --------------------------------------------------------

def bench_window_exactness(vca: str) -> dict:
    """Served windows vs a direct planner query and vs the raw record."""
    checked = []
    with File(vca, "r") as f:
        raw = np.asarray(f["VCA"][:, :], dtype=np.float64)
    with DataServer(vca) as server:
        session = server.session("probe")
        n, nch = server.n_samples, server.n_channels
        cases = [
            (0, n, (0, nch), 1),
            (n // 7, n - n // 5, (1, nch - 1), 3),
            (n // 2 - 100, n // 2 + 100, (0, 2), 1),
        ]
        for t0, t1, (lo, hi), step in cases:
            result = session.read_window(t0, t1, channels=(lo, hi), step=step)
            np.testing.assert_array_equal(
                result.data, raw[lo:hi, t0:t1][:, ::step]
            )
            with open_stream(vca) as src:
                query = Query.scan(None).select_channels(lo, hi)
                if step > 1:
                    query = query.decimate(step)
                plan = optimize(query, verify=False)
                (ref,) = execute(plan, source=WindowSource(src, t0, t1))
            np.testing.assert_array_equal(result.data, ref.output)
            checked.append(
                {"t0": t0, "t1": t1, "channels": [lo, hi], "step": step}
            )
    return {"cases": checked, "bit_exact": True}


# -- closed-loop viewers -----------------------------------------------------

def bench_viewers(
    vca: str, events_path: str, n_viewers: int, requests: int
) -> dict:
    """Each tenant thread is a closed-loop viewer: issue, await, repeat —
    40% zoomed-out previews, 40% panning previews, 20% follow-live."""
    config = ServeConfig(admit_timeout=0.5)
    totals = {"admitted": 0, "rejected": 0}
    totals_lock = threading.Lock()
    with DataServer(vca, config=config, events_path=events_path) as server:
        n = server.n_samples
        live_span = max(64, n // 16)

        def viewer(idx: int) -> None:
            rng = np.random.default_rng(1000 + idx)
            session = server.session(f"viewer-{idx}")
            admitted = rejected = 0
            for _ in range(requests):
                roll = rng.random()
                try:
                    if roll < 0.4:  # zoom out: wide span, coarse pixels
                        t0 = int(rng.integers(0, n // 4))
                        t1 = int(rng.integers(3 * n // 4, n)) + 1
                        session.preview(t0, t1, int(rng.integers(80, 200)))
                    elif roll < 0.8:  # pan: fixed zoom, sliding window
                        span = n // 8
                        t0 = int(rng.integers(0, n - span))
                        session.preview(t0, t0 + span, 120)
                    else:  # follow-live: tail window + event overlay
                        session.read_window(n - live_span, n, step=2)
                        session.events(n - live_span, n)
                    admitted += 1
                except (QuotaExceededError, AdmissionQueueFullError):
                    rejected += 1
            with totals_lock:
                totals["admitted"] += admitted
                totals["rejected"] += rejected

        threads = [
            threading.Thread(target=viewer, args=(i,))
            for i in range(n_viewers)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - started
        snapshot = server.admission.snapshot()

    assert totals["admitted"] > 0
    per_tenant = {
        tenant: {
            "admitted": stats["admitted"],
            "rejected_quota": stats["rejected_quota"],
            "rejected_queue": stats["rejected_queue"],
            "latency_p50_ms": round(stats["latency"]["p50_s"] * 1e3, 3),
            "latency_p95_ms": round(stats["latency"]["p95_s"] * 1e3, 3),
        }
        for tenant, stats in snapshot.items()
    }
    return {
        "n_viewers": n_viewers,
        "requests_per_viewer": requests,
        "mix": {"zoom": 0.4, "pan": 0.4, "follow_live": 0.2},
        "wall_seconds": round(wall_s, 3),
        "total_admitted": totals["admitted"],
        "total_rejected": totals["rejected"],
        "per_tenant": per_tenant,
    }


# -- quota isolation ---------------------------------------------------------

def bench_isolation(vca: str, polite_requests: int) -> dict:
    """The published promise: a greedy tenant saturating its own quota
    cannot push a polite tenant's p95 beyond the configured bound."""
    polite_quota = TenantQuota(requests_per_s=500.0, request_burst=50.0)
    config = ServeConfig(
        quotas={
            "greedy": TenantQuota(
                requests_per_s=40.0, request_burst=4.0, max_queue=4
            ),
            "polite-solo": polite_quota,
            "polite-contended": polite_quota,
        },
        admit_timeout=0.2,
    )
    with DataServer(vca, config=config) as server:
        n = server.n_samples

        def polite_run(tenant: str) -> float:
            session = server.session(tenant)
            for _ in range(polite_requests):
                session.preview(0, n, 120)  # small, pyramid-served
                time.sleep(0.002)  # a human-paced viewer
            return server.admission.metrics(tenant)["latency"]["p95_s"]

        p95_solo = polite_run("polite-solo")

        stop = threading.Event()
        greedy_counts = {"admitted": 0, "rejected": 0}

        def greedy() -> None:
            session = server.session("greedy")
            rng = np.random.default_rng(5)
            while not stop.is_set():
                try:
                    t0 = int(rng.integers(0, n // 2))
                    # no waiting room for this client: hammer, get the
                    # typed rejection, shave the back-off hint, repeat
                    session.preview(t0, n, 200, wait=False)
                    greedy_counts["admitted"] += 1
                except QuotaExceededError as err:
                    greedy_counts["rejected"] += 1
                    # a well-behaved client backs off by the hint; a
                    # greedy one shaves it — either way the bucket gates
                    time.sleep(min(err.retry_after, 0.01))
                except AdmissionQueueFullError:
                    greedy_counts["rejected"] += 1
                    time.sleep(0.005)

        thread = threading.Thread(target=greedy)
        thread.start()
        try:
            p95_contended = polite_run("polite-contended")
        finally:
            stop.set()
            thread.join()

        bound = server.config.isolation_p95_bound
    # 5 ms floor: on a quiet machine the solo p95 is microseconds and a
    # multiplicative bound on it would assert scheduler noise
    limit = bound * max(p95_solo, 0.005)
    assert p95_contended <= limit, (
        f"polite tenant p95 {p95_contended * 1e3:.2f}ms exceeds "
        f"{bound}x isolation bound ({limit * 1e3:.2f}ms; "
        f"solo {p95_solo * 1e3:.2f}ms)"
    )
    assert greedy_counts["rejected"] > 0, "greedy tenant never hit its quota"
    return {
        "polite_requests": polite_requests,
        "polite_p95_solo_ms": round(p95_solo * 1e3, 3),
        "polite_p95_contended_ms": round(p95_contended * 1e3, 3),
        "isolation_p95_bound": bound,
        "greedy_admitted": greedy_counts["admitted"],
        "greedy_rejected": greedy_counts["rejected"],
        "within_bound": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI run")
    args = parser.parse_args()

    if args.smoke:
        n_channels, minutes, spm = 24, 4, 6000
        n_viewers, requests, polite_requests = 4, 20, 40
    else:
        n_channels, minutes, spm = 64, 8, 12000
        n_viewers, requests, polite_requests = 8, 50, 100
    fs = float(spm) / 60.0

    with tempfile.TemporaryDirectory() as root:
        vca, events_path = build_archive(root, n_channels, minutes, spm, fs)
        preview_reduction = bench_preview_reduction(vca)
        window_exactness = bench_window_exactness(vca)
        viewers = bench_viewers(vca, events_path, n_viewers, requests)
        isolation = bench_isolation(vca, polite_requests)

    doc = {
        "smoke": bool(args.smoke),
        "workload": {
            "n_channels": n_channels,
            "minutes": minutes,
            "samples_per_minute": spm,
            "fs": fs,
        },
        "preview_reduction": preview_reduction,
        "window_exactness": window_exactness,
        "viewers": viewers,
        "isolation": isolation,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_serve.json")
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(json.dumps(doc, indent=2))
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
