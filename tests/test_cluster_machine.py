"""Tests for ClusterSpec / NodeSpec / MemoryTracker / presets."""

import pytest

from repro.cluster import (
    ClusterSpec,
    MemoryTracker,
    NodeSpec,
    burst_buffer_cori,
    cori_haswell,
    laptop,
)
from repro.errors import ConfigError, OutOfMemoryError


class TestNodeSpec:
    def test_defaults(self):
        node = NodeSpec()
        assert node.cores == 32
        assert node.memory == 128 * 2**30

    def test_create_parses_memory(self):
        node = NodeSpec.create(16, "64GB")
        assert node.memory == 64 * 2**30

    def test_invalid(self):
        with pytest.raises(ConfigError):
            NodeSpec(cores=0)
        with pytest.raises(ConfigError):
            NodeSpec(memory=0)


class TestClusterSpec:
    def test_totals(self):
        spec = ClusterSpec(nodes=4, node=NodeSpec(cores=8, memory=2**30))
        assert spec.total_cores == 32
        assert spec.total_memory == 4 * 2**30

    def test_rank_to_node_mapping(self):
        spec = ClusterSpec(nodes=4)
        assert spec.node_of_rank(0, ranks_per_node=16) == 0
        assert spec.node_of_rank(15, ranks_per_node=16) == 0
        assert spec.node_of_rank(16, ranks_per_node=16) == 1
        assert spec.same_node(0, 15, 16)
        assert not spec.same_node(15, 16, 16)

    def test_rank_overflow_rejected(self):
        spec = ClusterSpec(nodes=2)
        with pytest.raises(ConfigError):
            spec.node_of_rank(64, ranks_per_node=32)

    def test_with_nodes(self):
        small = cori_haswell(91)
        big = small.with_nodes(1456)
        assert big.nodes == 1456
        assert big.node == small.node
        assert big.name == small.name

    def test_invalid(self):
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=0)


class TestPresets:
    def test_cori_shape(self):
        cori = cori_haswell()
        assert cori.nodes == 2880
        assert cori.node.cores == 32
        # Paper: 1456 nodes x 8 cores = 11648 used cores fit easily
        assert cori.with_nodes(1456).total_cores >= 11648

    def test_burst_buffer_has_higher_iops(self):
        assert burst_buffer_cori().storage.iops > cori_haswell().storage.iops

    def test_laptop_is_small(self):
        assert laptop().total_cores <= 8


class TestMemoryTracker:
    def test_allocate_and_free(self):
        mem = MemoryTracker(node_memory=1000, nodes=2)
        mem.allocate(0, 600, "block")
        assert mem.used(0) == 600
        assert mem.available(0) == 400
        mem.free(0, 100, "block")
        assert mem.used(0) == 500

    def test_oom_raised(self):
        mem = MemoryTracker(node_memory=1000, nodes=1)
        mem.allocate(0, 900)
        with pytest.raises(OutOfMemoryError) as exc:
            mem.allocate(0, 200)
        assert exc.value.node == 0

    def test_allocate_all(self):
        mem = MemoryTracker(node_memory=1000, nodes=3)
        mem.allocate_all(250, "ghost")
        assert all(mem.used(n) == 250 for n in range(3))

    def test_breakdown(self):
        mem = MemoryTracker(node_memory=1000, nodes=1)
        mem.allocate(0, 100, "data")
        mem.allocate(0, 200, "master")
        mem.allocate(0, 50, "master")
        assert mem.breakdown(0) == {"data": 100, "master": 250}

    def test_peak_node(self):
        mem = MemoryTracker(node_memory=1000, nodes=3)
        assert mem.peak_node() == (0, 0)
        mem.allocate(1, 700)
        mem.allocate(2, 300)
        assert mem.peak_node() == (1, 700)

    def test_over_free_rejected(self):
        mem = MemoryTracker(node_memory=1000, nodes=1)
        with pytest.raises(ConfigError):
            mem.free(0, 10)

    def test_bad_node_rejected(self):
        mem = MemoryTracker(node_memory=1000, nodes=1)
        with pytest.raises(ConfigError):
            mem.allocate(5, 10)

    def test_fig8_oom_scenario(self):
        """91 Cori nodes, 16 ranks/node, pure MPI: the 1.9 TB input plus
        per-rank working copies (float64 intermediates + FFT scratch, ~6x
        the float32 input block) plus a 16x-duplicated master channel
        exceeds 128 GB/node; one rank/node (HAEE) threads over one channel
        at a time and fits."""
        cori = cori_haswell(91)
        data_per_node = int(1.9 * 2**40) // 91
        # master channel: one channel x 2 days of samples, float64 working set
        master = 30000 * 60 * 24 * 2 * 8
        mpi = MemoryTracker(cori.node.memory, 1)
        with pytest.raises(OutOfMemoryError):
            mpi.allocate(0, data_per_node, "input")
            mpi.allocate(0, 16 * master, "master-copies")
            mpi.allocate(0, 6 * data_per_node, "working")
        haee = MemoryTracker(cori.node.memory, 1)
        haee.allocate(0, data_per_node, "input")
        haee.allocate(0, master, "master")
        haee.allocate(0, 16 * 6 * master, "thread-working")
        assert haee.available(0) > 0
