"""Low-level binary backend for hdf5lite files.

``FileBackend`` wraps an OS-level file handle, counts every operation in an
:class:`repro.utils.IOStats`, and exposes exactly the primitives the format
needs: header read/write, positioned reads/writes of raw element runs, and
appends.

Header layout (32 bytes, little-endian)::

    bytes  0..7   magic  b"DASH5LT\\0"
    bytes  8..11  format version (u32)
    bytes 12..19  metadata offset (u64)
    bytes 20..27  metadata length (u64)
    bytes 28..31  reserved (zero)
"""

from __future__ import annotations

import os
import struct
import threading
from dataclasses import dataclass

from repro.errors import ConfigError, FormatError
from repro.utils.iostats import IOStats

MAGIC = b"DASH5LT\x00"
FORMAT_VERSION = 1
HEADER_SIZE = 32
_HEADER_STRUCT = struct.Struct("<8sIQQ4x")


@dataclass
class Header:
    version: int
    meta_offset: int
    meta_len: int

    def pack(self) -> bytes:
        return _HEADER_STRUCT.pack(MAGIC, self.version, self.meta_offset, self.meta_len)

    @classmethod
    def unpack(cls, raw: bytes) -> "Header":
        if len(raw) < HEADER_SIZE:
            raise FormatError("file too short to contain an hdf5lite header")
        magic, version, meta_offset, meta_len = _HEADER_STRUCT.unpack(raw[:HEADER_SIZE])
        if magic != MAGIC:
            raise FormatError(f"bad magic {magic!r}; not an hdf5lite file")
        if version != FORMAT_VERSION:
            raise FormatError(f"unsupported format version {version}")
        return cls(version=version, meta_offset=meta_offset, meta_len=meta_len)


class FileBackend:
    """Instrumented positioned-I/O wrapper around a binary file."""

    #: Optional fault-injection hook ``hook(path, offset, nbytes)`` called
    #: before every positioned read.  ``None`` (the default) costs one
    #: attribute load per read; :mod:`repro.faults.inject` installs a
    #: dispatcher here to simulate slow and transiently-failing devices.
    read_fault_hook = None

    def __init__(self, path: str | os.PathLike, mode: str, iostats: IOStats | None = None):
        if mode not in ("rb", "r+b", "w+b"):
            raise ConfigError(f"unsupported backend mode {mode!r}")
        self.path = os.fspath(path)
        self.mode = mode
        self.iostats = iostats if iostats is not None else IOStats()
        self._fh = open(self.path, mode)
        self.iostats.record_open()
        self._pos = 0
        # Positioned ops are seek+read/write pairs; handles shared via a
        # FilePool are hit from several simmpi rank-threads at once, so
        # each pair must be atomic.
        self._io_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
            self.iostats.record_close()

    def __enter__(self) -> "FileBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- primitives ----------------------------------------------------------
    def _seek(self, offset: int) -> None:
        if offset != self._pos:
            self._fh.seek(offset)
            self.iostats.record_seek()
        self._pos = offset

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """One positioned read == one I/O request."""
        hook = FileBackend.read_fault_hook
        if hook is not None:
            hook(self.path, offset, nbytes)
        with self._io_lock:
            self._seek(offset)
            data = self._fh.read(nbytes)
            if len(data) != nbytes:
                raise FormatError(
                    f"short read at offset {offset}: wanted {nbytes}, got {len(data)}"
                )
            self._pos = offset + nbytes
        self.iostats.record_read(nbytes)
        return data

    def readinto_at(self, offset: int, buffer: memoryview) -> None:
        """Positioned read directly into a writable buffer (no copy)."""
        hook = FileBackend.read_fault_hook
        if hook is not None:
            hook(self.path, offset, len(buffer))
        with self._io_lock:
            self._seek(offset)
            got = self._fh.readinto(buffer)
            if got != len(buffer):
                raise FormatError(
                    f"short read at offset {offset}: wanted {len(buffer)}, got {got}"
                )
            self._pos = offset + len(buffer)
        self.iostats.record_read(len(buffer))

    def write_at(self, offset: int, data: bytes | memoryview) -> None:
        with self._io_lock:
            self._seek(offset)
            self._fh.write(data)
            self._pos = offset + len(data)
        self.iostats.record_write(len(data))

    def append(self, data: bytes | memoryview) -> int:
        """Append at end of file; returns the offset the data landed at."""
        with self._io_lock:
            self._fh.seek(0, os.SEEK_END)
            offset = self._fh.tell()
            self._fh.write(data)
            self._pos = offset + len(data)
        self.iostats.record_write(len(data))
        return offset

    def truncate(self, size: int) -> None:
        with self._io_lock:
            self._fh.truncate(size)
            if self._pos > size:
                self._pos = size

    def flush(self) -> None:
        self._fh.flush()

    def size(self) -> int:
        return os.fstat(self._fh.fileno()).st_size

    # -- header helpers ------------------------------------------------------
    def read_header(self) -> Header:
        return Header.unpack(self.read_at(0, HEADER_SIZE))

    def write_header(self, header: Header) -> None:
        self.write_at(0, header.pack())
