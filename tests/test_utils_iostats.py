"""Tests for repro.utils.iostats."""

import threading

from repro.utils.iostats import IOStats


class TestIOStats:
    def test_initial_state(self):
        s = IOStats()
        assert s.opens == 0
        assert s.requests == 0
        assert s.bytes_read == 0

    def test_record_read(self):
        s = IOStats()
        s.record_read(100)
        s.record_read(50)
        assert s.reads == 2
        assert s.bytes_read == 150

    def test_record_write(self):
        s = IOStats()
        s.record_write(64)
        assert s.writes == 1
        assert s.bytes_written == 64

    def test_requests_is_reads_plus_writes(self):
        s = IOStats()
        s.record_read(1)
        s.record_write(1)
        s.record_write(1)
        assert s.requests == 3

    def test_open_close_seek(self):
        s = IOStats()
        s.record_open()
        s.record_seek()
        s.record_close()
        assert (s.opens, s.seeks, s.closes) == (1, 1, 1)

    def test_merge(self):
        a = IOStats()
        a.record_read(10)
        b = IOStats()
        b.record_read(5)
        b.record_open()
        a.merge(b)
        assert a.reads == 2
        assert a.bytes_read == 15
        assert a.opens == 1

    def test_reset(self):
        s = IOStats()
        s.record_read(10)
        s.record_open()
        s.reset()
        assert s.snapshot() == {
            "opens": 0,
            "closes": 0,
            "seeks": 0,
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }

    def test_snapshot_keys(self):
        snap = IOStats().snapshot()
        assert set(snap) == {
            "opens",
            "closes",
            "seeks",
            "reads",
            "writes",
            "bytes_read",
            "bytes_written",
        }

    def test_thread_safety(self):
        s = IOStats()
        n = 200

        def worker():
            for _ in range(n):
                s.record_read(1)
                s.record_write(2)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.reads == 8 * n
        assert s.writes == 8 * n
        assert s.bytes_read == 8 * n
        assert s.bytes_written == 16 * n
