"""Tests for das_search (type-1 range and type-2 regex queries) and the CLI."""

import pytest

from repro.errors import StorageError
from repro.storage.cli import main as das_search_main
from repro.storage.search import (
    das_search,
    scan_directory,
    timestamp_from_filename,
)


class TestScanDirectory:
    def test_catalog_sorted_by_timestamp(self, das_dir):
        catalog = scan_directory(das_dir["dir"])
        assert [c.timestamp for c in catalog] == das_dir["stamps"]

    def test_read_shapes(self, das_dir):
        catalog = scan_directory(das_dir["dir"], read_shapes=True)
        assert all(c.n_channels == 16 and c.n_samples == 120 for c in catalog)

    def test_name_only_scan_does_no_data_io(self, das_dir):
        from repro.utils.iostats import IOStats

        stats = IOStats()
        scan_directory(das_dir["dir"], iostats=stats)
        assert stats.opens == 0  # stamps come from file names

    def test_non_directory_rejected(self):
        with pytest.raises(StorageError):
            scan_directory("/definitely/not/a/dir")

    def test_ignores_non_h5(self, das_dir, tmp_path):
        import os

        with open(os.path.join(das_dir["dir"], "README.txt"), "w") as fh:
            fh.write("not data")
        catalog = scan_directory(das_dir["dir"])
        assert len(catalog) == 6

    def test_timestamp_from_filename(self):
        assert timestamp_from_filename("westSac_170728224510.h5") == "170728224510"
        assert timestamp_from_filename("no_stamp_here.h5") is None


class TestType1RangeQuery:
    def test_paper_example(self, das_dir):
        # das_search -s <stamp> -c 2
        hits = das_search(das_dir["dir"], start="170620100645", count=2)
        assert [h.timestamp for h in hits] == ["170620100645", "170620100745"]

    def test_start_between_files(self, das_dir):
        hits = das_search(das_dir["dir"], start="170620100600", count=1)
        assert hits[0].timestamp == "170620100645"

    def test_count_larger_than_available(self, das_dir):
        hits = das_search(das_dir["dir"], start="170620100545", count=100)
        assert len(hits) == 6

    def test_no_count_returns_all_after(self, das_dir):
        hits = das_search(das_dir["dir"], start="170620100845")
        assert len(hits) == 3

    def test_start_after_everything(self, das_dir):
        assert das_search(das_dir["dir"], start="180101000000", count=5) == []

    def test_negative_count_rejected(self, das_dir):
        with pytest.raises(StorageError):
            das_search(das_dir["dir"], start="170620100545", count=-1)

    def test_invalid_start_rejected(self, das_dir):
        with pytest.raises(StorageError):
            das_search(das_dir["dir"], start="not-a-stamp", count=1)


class TestType2RegexQuery:
    def test_paper_style_character_class(self, das_dir):
        # like the paper's: das_search -e 170728224[567]10
        hits = das_search(das_dir["dir"], pattern="1706201008.5|1706201009.5")
        assert [h.timestamp for h in hits] == ["170620100845", "170620100945"]

    def test_regex_all(self, das_dir):
        assert len(das_search(das_dir["dir"], pattern=r"\d{12}")) == 6

    def test_regex_none(self, das_dir):
        assert das_search(das_dir["dir"], pattern="190101") == []

    def test_bad_regex(self, das_dir):
        with pytest.raises(StorageError, match="bad regex"):
            das_search(das_dir["dir"], pattern="[unclosed")


class TestQueryValidation:
    def test_both_query_types_rejected(self, das_dir):
        with pytest.raises(StorageError):
            das_search(das_dir["dir"], start="170620100545", pattern="x")

    def test_neither_query_type_rejected(self, das_dir):
        with pytest.raises(StorageError):
            das_search(das_dir["dir"])

    def test_catalog_input(self, das_dir):
        catalog = scan_directory(das_dir["dir"])
        hits = das_search(catalog, start="170620100745", count=2)
        assert [h.timestamp for h in hits] == ["170620100745", "170620100845"]


class TestCLI:
    def test_range_query(self, das_dir, capsys):
        rc = das_search_main(["-d", das_dir["dir"], "-s", "170620100645", "-c", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "170620100645" in out
        assert "170620100745" in out
        assert "2 file(s)" in out

    def test_regex_query_quiet(self, das_dir, capsys):
        rc = das_search_main(["-d", das_dir["dir"], "-e", "100545", "-q"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].endswith(".h5")

    def test_merge_vca(self, das_dir, tmp_path, capsys):
        vca_path = str(tmp_path / "merged.h5")
        rc = das_search_main(
            ["-d", das_dir["dir"], "-s", "170620100545", "-c", "3", "--vca", vca_path]
        )
        assert rc == 0
        from repro.storage.vca import open_vca

        with open_vca(vca_path) as vca:
            assert vca.shape == (16, 360)

    def test_error_exit_code(self, tmp_path, capsys):
        rc = das_search_main(["-d", str(tmp_path), "-s", "x", "-c", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
